//! Differential and property tests for the CDCL backend (`swp-sat`) and
//! the portfolio scheduler.
//!
//! The headline obligations, per the roadmap:
//! - SAT achieves the **same II as MOST** on every loop both solve within
//!   budget (they search the same horizon, so their per-II verdicts must
//!   coincide), and every SAT schedule is audit-clean at zero findings;
//! - the portfolio is **deterministic**: the winner is chosen by fixed
//!   backend priority at join, never by wall clock, so any thread count
//!   produces the bit-identical compiled loop.

use proptest::prelude::*;
use showdown::{
    compile_loop, CompileOptions, Driver, OptLevel, PortfolioOptions, Rung, SchedulerChoice,
    Telemetry, VerifyLevel,
};
use std::time::Duration;
use swp_ir::{Ddg, Loop};
use swp_kernels::{random_loop, GenParams};
use swp_machine::Machine;
use swp_sat::{pipeline_sat, SatOptions};
use swp_verify::audit;

fn quick_sat() -> SatOptions {
    SatOptions {
        conflict_limit: 20_000,
        propagation_limit: 2_000_000,
        time_limit: Some(Duration::from_secs(2)),
        loop_time_limit: Some(Duration::from_secs(6)),
        fallback: false,
        ..SatOptions::default()
    }
}

fn quick_most() -> swp_most::MostOptions {
    swp_most::MostOptions {
        node_limit: 20_000,
        pivot_limit: 400_000,
        time_limit: None,
        loop_time_limit: None,
        loop_pivot_limit: Some(1_200_000),
        max_ops: 64,
        fallback: false,
        ..swp_most::MostOptions::default()
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "MOST's counted pivot budgets are sized for release builds (this test grinds \
              ~6 min unoptimized); the release-mode `experiments portfolio -D` CI job \
              enforces the same 24/24 Livermore parity"
)]
fn sat_matches_most_ii_on_livermore() {
    let m = Machine::r8000();
    let mut solved = 0usize;
    let mut total = 0usize;
    for k in swp_kernels::livermore() {
        total += 1;
        let sat = pipeline_sat(&k.body, &m, &quick_sat());
        let most = swp_most::pipeline_most(&k.body, &m, &quick_most());
        match (&sat, &most) {
            (Ok(s), Ok(o)) => {
                assert_eq!(
                    s.ii(),
                    o.ii(),
                    "kernel {}: SAT II {} != MOST II {}",
                    k.number,
                    s.ii(),
                    o.ii()
                );
                solved += 1;
            }
            _ => {
                eprintln!(
                    "kernel {}: sat={} most={}",
                    k.number,
                    sat.as_ref().map(|s| s.ii() as i64).unwrap_or(-1),
                    most.as_ref().map(|o| o.ii() as i64).unwrap_or(-1),
                );
            }
        }
    }
    eprintln!("livermore parity: {solved}/{total}");
    assert!(solved >= 20, "only {solved}/{total} kernels solved by both");
}

#[test]
fn sat_schedules_validate_on_livermore() {
    let m = Machine::r8000();
    for k in swp_kernels::livermore() {
        if let Ok(s) = pipeline_sat(&k.body, &m, &quick_sat()) {
            let ddg = Ddg::build(&s.body, &m);
            assert_eq!(
                s.schedule.validate(&s.body, &ddg, &m),
                Ok(()),
                "kernel {}",
                k.number
            );
        }
    }
}

fn params_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (
        4usize..32,
        0.1f64..0.5,
        0usize..3,
        prop_oneof![Just(0.0f64), Just(0.05f64)],
        0u64..500,
    )
        .prop_map(|(ops, mem, rec, div, seed)| {
            (
                GenParams {
                    ops,
                    mem_fraction: mem,
                    recurrences: rec,
                    div_fraction: div,
                },
                seed,
            )
        })
}

// Deterministic work-counted budgets: no wall clocks, so the proptests
// below reproduce exactly on any host (and minimize cleanly).
fn counted_sat() -> SatOptions {
    SatOptions {
        conflict_limit: 20_000,
        propagation_limit: 2_000_000,
        time_limit: None,
        loop_time_limit: None,
        loop_conflict_limit: Some(60_000),
        fallback: false,
        ..SatOptions::default()
    }
}

// Debug builds grind MOST's counted pivot budgets an order of magnitude
// slower than release, so the differential proptest leashes MOST tighter
// and runs fewer cases there. The budgets are still pure work counts:
// any case that runs behaves identically in both profiles.
const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 40 };

fn counted_most() -> swp_most::MostOptions {
    swp_most::MostOptions {
        pivot_limit: if cfg!(debug_assertions) {
            50_000
        } else {
            100_000
        },
        loop_pivot_limit: Some(if cfg!(debug_assertions) {
            100_000
        } else {
            1_200_000
        }),
        ..quick_most()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// SAT and MOST search the same scheduling box (MOST's horizon), so
    /// their certificates must agree on random lint-clean loops:
    /// - a certified SAT result (`optimal_ii`: every lower II carries a
    ///   real UNSAT proof) is a floor MOST can never beat;
    /// - when both certify, the IIs are identical.
    /// Uncertified results (allocation-failure bumps, budget timeouts)
    /// may diverge — SAT has no spilling, so a schedulable-but-
    /// unallocatable II forfeits its certificate by design.
    #[test]
    fn sat_matches_most_ii_on_random_loops((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        prop_assert!(lp.validate() == Ok(()));
        let sat = pipeline_sat(&lp, &m, &counted_sat());
        let most = swp_most::pipeline_most(&lp, &m, &counted_most());
        if let (Ok(s), Ok(o)) = (&sat, &most) {
            if s.stats.optimal_ii {
                prop_assert!(
                    o.ii() >= s.ii(),
                    "loop {}: MOST II {} beats SAT's certified floor {}",
                    lp.name(), o.ii(), s.ii()
                );
            }
            if s.stats.optimal_ii && o.stats.optimal_ii {
                prop_assert_eq!(
                    s.ii(), o.ii(),
                    "loop {}: certified SAT II {} != certified MOST II {}",
                    lp.name(), s.ii(), o.ii()
                );
            }
        }
    }

    /// Every SAT compile that ships is audit-clean at full verification:
    /// schedule legality, register limits, expansion correctness.
    #[test]
    fn sat_compiles_are_audit_clean((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        prop_assert!(lp.validate() == Ok(()));
        let choice = SchedulerChoice::SatWith(counted_sat());
        if let Ok(c) = compile_loop(&lp, &m, &choice) {
            let report = audit(&c.code, &m, VerifyLevel::Full);
            prop_assert!(report.findings.is_empty(), "{}", report.render_human());
        }
    }
}

/// The portfolio race on one driver: the fixed set of loops below is
/// chosen so every backend wins at least once (ILP on the easy kernels,
/// SAT when ILP is handicapped to `max_ops: 0`, the heuristic when both
/// optimal backends are).
fn portfolio_fleet(threads: usize) -> Vec<(Option<Rung>, u32, swp_codegen::PipelinedLoop)> {
    let m = Machine::r8000();
    let driver = Driver::uncached(threads);
    let quick = PortfolioOptions {
        most: swp_most::MostOptions {
            fallback: true,
            ..quick_most()
        },
        sat: SatOptions {
            fallback: true,
            ..counted_sat()
        },
        ..PortfolioOptions::default()
    };
    let no_ilp = PortfolioOptions {
        most: swp_most::MostOptions {
            max_ops: 0,
            ..quick.most.clone()
        },
        ..quick.clone()
    };
    let heur_only = PortfolioOptions {
        use_ilp: false,
        use_sat: false,
        ..quick.clone()
    };
    let kernels: Vec<Loop> = swp_kernels::livermore()
        .into_iter()
        .take(6)
        .map(|k| k.body)
        .collect();
    let mut jobs: Vec<(Loop, PortfolioOptions)> = Vec::new();
    for k in &kernels {
        jobs.push((k.clone(), quick.clone()));
        jobs.push((k.clone(), no_ilp.clone()));
        jobs.push((k.clone(), heur_only.clone()));
    }
    let compiled = driver.run_indexed(jobs.len(), |i| {
        let (lp, opts) = &jobs[i];
        let options = CompileOptions {
            choice: SchedulerChoice::PortfolioWith(Box::new(opts.clone())),
            verify: VerifyLevel::Off,
            opt: OptLevel::Off,
            telemetry: Telemetry::disabled(),
        };
        let inner = driver.sequential_view();
        inner
            .compile_with(lp, &m, &options)
            .expect("quick portfolio compiles the easy kernels")
    });
    compiled
        .into_iter()
        .map(|c| (c.rung, c.stats.ii, c.code.clone()))
        .collect()
}

/// The race's winner is decided by fixed backend priority at join, never
/// by wall clock: any driver thread count must produce the bit-identical
/// winner rung, II, and expanded code for every loop.
#[test]
fn portfolio_is_deterministic_across_thread_counts() {
    let baseline = portfolio_fleet(1);
    let rungs: Vec<Option<Rung>> = baseline.iter().map(|(r, _, _)| *r).collect();
    assert!(
        rungs.contains(&Some(Rung::Ilp))
            && rungs.contains(&Some(Rung::Sat))
            && rungs.contains(&Some(Rung::Heuristic)),
        "fleet must exercise every backend as winner, got {rungs:?}"
    );
    for threads in [2usize, 8] {
        let run = portfolio_fleet(threads);
        assert_eq!(
            baseline, run,
            "portfolio outcome changed between 1 and {threads} driver threads"
        );
    }
}
