//! Property tests for the translation-validation pass: the auditor must
//! accept every schedule either pipeliner produces over random loops, and
//! each of the four analyzers must reject its own class of injected fault
//! (a perturbed op time, a clobbered register, a tampered expanded op, a
//! flipped bank claim).

use proptest::prelude::*;
use showdown::{compile_loop, SchedulerChoice};
use swp_codegen::CodeSection;
use swp_heur::bankopt::{relative_bank_at, RelBank};
use swp_ir::Schedule;
use swp_kernels::{random_loop, GenParams};
use swp_machine::Machine;
use swp_verify::{
    audit, audit_expansion, audit_registers, audit_schedule, check_bank_claim, VerifyLevel,
};

fn params_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (
        4usize..40,
        0.1f64..0.6,
        0usize..3,
        prop_oneof![Just(0.0f64), Just(0.05f64)],
        0u64..1000,
    )
        .prop_map(|(ops, mem, rec, div, seed)| {
            (
                GenParams {
                    ops,
                    mem_fraction: mem,
                    recurrences: rec,
                    div_fraction: div,
                },
                seed,
            )
        })
}

/// Budgeted ILP configuration. A wall-clock budget makes *which* path
/// produced the schedule (solved vs heuristic fallback) depend on machine
/// speed, but the property quantifies over whatever artifact comes out —
/// fallback schedules must pass the audit too — so that nondeterminism
/// costs nothing, and it keeps debug-build solves bounded.
fn ilp_choice() -> SchedulerChoice {
    SchedulerChoice::IlpWith(swp_most::MostOptions {
        node_limit: 5_000,
        time_limit: Some(std::time::Duration::from_millis(500)),
        loop_time_limit: None,
        ..swp_most::MostOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn auditor_accepts_every_heuristic_schedule((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let report = audit(&c.code, &m, VerifyLevel::Full);
            prop_assert!(report.findings.is_empty(), "{}", report.render_human());
        }
    }

    // Analyzer 1 (schedule): moving one op to a negative cycle must be
    // caught — no modulo schedule issues before cycle 0.
    #[test]
    fn schedule_analyzer_rejects_a_perturbed_op_time(
        (p, seed) in params_strategy(),
        pick in 0usize..64,
    ) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let body = c.code.body();
            let s = c.code.schedule();
            let mut times = s.times().to_vec();
            let victim = pick % times.len();
            times[victim] = -1;
            let bad = Schedule::new(s.ii(), times);
            let fs = audit_schedule(body, &bad, &m);
            prop_assert!(
                fs.iter().any(|f| f.code.starts_with("SWP-V1")),
                "negative time went unflagged: {fs:?}"
            );
        }
    }

    // Analyzer 2 (registers): rewriting one value's assignment to a
    // register beyond the file must be caught.
    #[test]
    fn register_analyzer_rejects_a_clobbered_assignment((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let body = c.code.body();
            let v = body.ops().iter().find_map(|o| o.result).expect("loads define values");
            let bad = c.code.allocation().with_assignment(v, 0, 999);
            let fs = audit_registers(body, c.code.schedule(), &bad, &m);
            prop_assert!(
                fs.iter().any(|f| f.code.starts_with("SWP-V2")),
                "out-of-file register went unflagged: {fs:?}"
            );
        }
    }

    // Analyzer 3 (expansion): shifting one kernel op off its cycle must
    // break the op-for-op correspondence with the schedule.
    #[test]
    fn expansion_analyzer_rejects_a_tampered_kernel_op(
        (p, seed) in params_strategy(),
        pick in 0usize..64,
    ) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let idx = pick % c.code.kernel().len();
            let mut op = c.code.kernel()[idx];
            op.cycle += 1;
            let bad = c.code.with_tampered_op(CodeSection::Kernel, idx, op);
            let fs = audit_expansion(&bad);
            prop_assert!(
                fs.iter().any(|f| f.code.starts_with("SWP-V3")),
                "tampered kernel op went unflagged: {fs:?}"
            );
        }
    }

    // Analyzer 4 (banks): wherever the classifier makes a definite claim
    // that the brute-force walk certifies, the *opposite* claim must be
    // refuted by the same walk.
    #[test]
    fn bank_analyzer_rejects_a_flipped_claim((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let denser = GenParams { mem_fraction: p.mem_fraction.max(0.3), ..p };
        let lp = random_loop(&denser, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let body = c.code.body();
            let s = c.code.schedule();
            let mem: Vec<&swp_ir::Op> = body.mem_ops().collect();
            for (n, &a) in mem.iter().enumerate() {
                for &b in &mem[n + 1..] {
                    if s.row(a.id) != s.row(b.id) {
                        continue;
                    }
                    let (t_a, t_b) = (s.time(a.id), s.time(b.id));
                    let claim = relative_bank_at(
                        body, &a.mem.unwrap(), t_a, &b.mem.unwrap(), t_b, s.ii(),
                    );
                    let flipped = match claim {
                        RelBank::KnownSame => RelBank::KnownOpposite,
                        RelBank::KnownOpposite => RelBank::KnownSame,
                        RelBank::Unknown => continue,
                    };
                    if check_bank_claim(body, a, t_a, b, t_b, s.ii(), &m, claim).is_none() {
                        let f = check_bank_claim(body, a, t_a, b, t_b, s.ii(), &m, flipped);
                        prop_assert!(
                            f.is_some(),
                            "flipped {claim:?} claim about ops {}/{} was not refuted",
                            a.id.0,
                            b.id.0
                        );
                    }
                }
            }
        }
    }
}

/// The warm dual-simplex path must produce audit-clean schedules: a loop
/// big enough that branch-and-bound performs thousands of warm node
/// re-solves, solved under deterministic budgets with the fallback
/// disabled (success therefore certifies the ILP path produced the
/// artifact), then pushed through the full audit.
#[test]
fn warm_path_most_schedule_audits_clean() {
    let m = Machine::r8000();
    let lp = random_loop(
        &GenParams {
            ops: 20,
            ..GenParams::default()
        },
        42,
    );
    let choice = SchedulerChoice::IlpWith(swp_most::MostOptions {
        node_limit: 2_000,
        pivot_limit: 20_000,
        time_limit: None,
        loop_time_limit: None,
        fallback: false,
        ..swp_most::MostOptions::default()
    });
    let c = compile_loop(&lp, &m, &choice).expect("MOST schedules a 20-op loop");
    assert!(!c.stats.fell_back, "fallback disabled yet taken");
    let report = audit(&c.code, &m, VerifyLevel::Full);
    assert!(report.findings.is_empty(), "{}", report.render_human());
}

proptest! {
    // ILP solves are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn auditor_accepts_every_ilp_schedule((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let small = GenParams { ops: p.ops.min(10), ..p };
        let lp = random_loop(&small, seed);
        if let Ok(c) = compile_loop(&lp, &m, &ilp_choice()) {
            let report = audit(&c.code, &m, VerifyLevel::Full);
            prop_assert!(report.findings.is_empty(), "{}", report.render_human());
        }
    }
}
