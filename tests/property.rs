//! Property-based tests over randomly generated loops: the invariants
//! every layer of the system must uphold regardless of loop shape.

use proptest::prelude::*;
use showdown::{compile_loop, ScheduleCache, SchedulerChoice};
use std::sync::Arc;
use swp_ir::{passes, Ddg, LongestPaths};
use swp_kernels::{random_loop, GenParams};
use swp_machine::Machine;
use swp_regalloc::{allocate, max_live, AllocOutcome};
use swp_sim::interp::{run_pipelined, run_sequential};

fn params_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (
        4usize..40,
        0.1f64..0.6,
        0usize..3,
        prop_oneof![Just(0.0f64), Just(0.05f64)],
        0u64..1000,
    )
        .prop_map(|(ops, mem, rec, div, seed)| {
            (
                GenParams {
                    ops,
                    mem_fraction: mem,
                    recurrences: rec,
                    div_fraction: div,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_loops_always_validate((p, seed) in params_strategy()) {
        let lp = random_loop(&p, seed);
        prop_assert_eq!(lp.validate(), Ok(()));
    }

    #[test]
    fn heuristic_schedules_are_always_valid((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        let c = compile_loop(&lp, &m, &SchedulerChoice::Heuristic);
        if let Ok(c) = c {
            let ddg = Ddg::build(c.code.body(), &m);
            prop_assert_eq!(c.code.schedule().validate(c.code.body(), &ddg, &m), Ok(()));
            prop_assert!(c.stats.ii >= c.stats.min_ii);
            // The achieved II never exceeds the MaxII circuit breaker.
            prop_assert!(c.stats.ii <= 2 * Ddg::build(c.code.body(), &m).min_ii());
        }
    }

    #[test]
    fn pipelined_semantics_match_sequential((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            // Compare against the original body when nothing was spilled;
            // with spills, against the compiled body (the spill test in
            // end_to_end.rs covers original-vs-spilled).
            let body = c.code.body();
            let seq = run_sequential(body, 12);
            let pip = run_pipelined(&c.code, 12).expect("schedule preserves dependences");
            prop_assert!(seq.approx_eq(&pip, 0.0), "issue-order execution diverged");
        }
    }

    #[test]
    fn allocation_respects_register_files((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            for class in swp_machine::RegClass::ALL {
                prop_assert!(c.code.regs_used(class) <= m.allocatable(class));
            }
        }
    }

    #[test]
    fn max_live_lower_bounds_allocation((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        if let Ok(c) = compile_loop(&lp, &m, &SchedulerChoice::Heuristic) {
            let body = c.code.body();
            let ml = max_live(body, c.code.schedule());
            match allocate(body, c.code.schedule(), &m) {
                AllocOutcome::Allocated(a) => {
                    prop_assert!(a.regs_used(swp_machine::RegClass::Float) >= ml[0]);
                    prop_assert!(a.regs_used(swp_machine::RegClass::Int) >= ml[1]);
                }
                AllocOutcome::Failed { .. } => prop_assert!(false, "compile succeeded but re-allocation failed"),
            }
        }
    }

    #[test]
    fn longest_paths_feasibility_matches_rec_mii((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        let ddg = Ddg::build(&lp, &m);
        let rec = ddg.rec_mii();
        prop_assert!(LongestPaths::compute(&ddg, rec).is_some());
        if rec > 1 {
            prop_assert!(LongestPaths::compute(&ddg, rec - 1).is_none());
        }
    }

    #[test]
    fn unroll_preserves_semantics_prop((p, seed) in params_strategy(), k in 2u32..4) {
        let lp = random_loop(&p, seed);
        let unrolled = passes::unroll(&lp, k, &[]);
        prop_assert_eq!(unrolled.validate(), Ok(()));
        let n = 12u64;
        let a = run_sequential(&lp, n * u64::from(k));
        let b = run_sequential(&unrolled, n);
        prop_assert!(a.approx_eq(&b, 0.0), "unroll by {} changed semantics", k);
    }

    #[test]
    fn cse_preserves_semantics_prop((p, seed) in params_strategy()) {
        let lp = random_loop(&p, seed);
        let mut optimized = lp.clone();
        let _removed = passes::cse(&mut optimized);
        prop_assert_eq!(optimized.validate(), Ok(()));
        let a = run_sequential(&lp, 10);
        let b = run_sequential(&optimized, 10);
        prop_assert!(a.approx_eq(&b, 0.0), "CSE changed semantics");
    }

    #[test]
    fn spill_preserves_semantics_prop((p, seed) in params_strategy()) {
        let lp = random_loop(&p, seed);
        // Spill the first spillable (defined and used) value.
        let uses = lp.uses();
        let victim = lp.values().iter().enumerate().find_map(|(i, info)| {
            let v = swp_ir::ValueId(i as u32);
            (info.def.is_some() && !uses[i].is_empty()).then_some(v)
        });
        if let Some(v) = victim {
            let n_arrays = lp.arrays().len() as u32;
            let spilled = passes::spill_to_memory(&lp, &[v]);
            prop_assert_eq!(spilled.validate(), Ok(()));
            let a = run_sequential(&lp, 10);
            let b = run_sequential(&spilled, 10);
            let aw = a.written();
            let bw: Vec<_> = b.written().into_iter().filter(|((arr, _), _)| *arr < n_arrays).collect();
            let same = aw.len() == bw.len()
                && aw.iter().zip(&bw).all(|((ka, va), (kb, vb))| ka == kb && va.to_bits() == vb.to_bits());
            prop_assert!(same, "spill changed visible memory");
        }
    }
}

proptest! {
    // ILP solves are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ilp_never_reports_ii_below_min((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let small = GenParams { ops: p.ops.min(12), ..p };
        let lp = random_loop(&small, seed);
        let opts = swp_most::MostOptions {
            node_limit: 5_000,
            time_limit: Some(std::time::Duration::from_millis(500)),
            fallback: false,
            ..swp_most::MostOptions::default()
        };
        if let Ok(r) = swp_most::pipeline_most(&lp, &m, &opts) {
            let ddg = Ddg::build(&lp, &m);
            prop_assert!(r.ii() >= ddg.min_ii());
            prop_assert_eq!(r.schedule.validate(&lp, &ddg, &m), Ok(()));
        }
    }

    #[test]
    fn cache_hit_is_identical_to_fresh_compile((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let small = GenParams { ops: p.ops.min(16), ..p };
        let lp = random_loop(&small, seed);
        // Node-budgeted ILP only: a wall-clock budget would make the
        // fresh reference compile nondeterministic, and this test is
        // about the cache, not solver timing. The fallback path (budget
        // exhausted -> heuristic) is deterministic and stays enabled.
        let ilp = SchedulerChoice::IlpWith(swp_most::MostOptions {
            node_limit: 5_000,
            time_limit: None,
            loop_time_limit: None,
            ..swp_most::MostOptions::default()
        });
        for choice in [SchedulerChoice::Heuristic, ilp] {
            let cache = ScheduleCache::new();
            let first = cache.get_or_compile(&lp, &m, &choice);
            let hit = cache.get_or_compile(&lp, &m, &choice);
            let fresh = compile_loop(&lp, &m, &choice);
            prop_assert_eq!(cache.stats().hits, 1, "second lookup must hit");
            match (first, hit, fresh) {
                (Ok(first), Ok(hit), Ok(fresh)) => {
                    // The hit shares the memoized object outright…
                    prop_assert!(Arc::ptr_eq(&first, &hit), "hit must share the memoized compile");
                    // …and that object matches a from-scratch compile:
                    // same II, same op cycles, same register assignment,
                    // same expanded code wholesale.
                    prop_assert_eq!(hit.stats.ii, fresh.stats.ii);
                    prop_assert_eq!(hit.code.schedule(), fresh.code.schedule());
                    for class in swp_machine::RegClass::ALL {
                        prop_assert_eq!(hit.code.regs_used(class), fresh.code.regs_used(class));
                    }
                    prop_assert_eq!(&hit.code, &fresh.code);
                }
                (Err(first), Err(hit), Err(fresh)) => {
                    prop_assert_eq!(&first, &hit, "memoized error must replay");
                    prop_assert_eq!(&hit, &fresh);
                }
                _ => prop_assert!(false, "cache changed the compile outcome"),
            }
        }
    }
}
