//! Differential lockdown of the parallel driver: `run_suite_with` must
//! produce **bit-identical** results to the plain sequential `run_suite`
//! on every SPEC-like suite, at several thread counts, with and without
//! the schedule cache. The parallel driver is only allowed to change
//! wall-clock, never results.
//!
//! The heuristic scheduler is used throughout: its search is budgeted in
//! backtracks, not wall-clock, so a fresh compile is deterministic and
//! the sequential result is a fixed reference point. (ILP compiles with
//! wall-clock budgets are deterministic only *through the cache* — the
//! in-flight dedup in `ScheduleCache` hands every concurrent requester
//! the same result object — which `tests/property.rs` covers.)

use showdown::{
    run_suite, run_suite_baseline, run_suite_baseline_with, run_suite_with, Driver, SchedulerChoice,
};
use swp_machine::Machine;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn parallel_run_suite_is_bit_identical_to_sequential_on_every_suite() {
    let m = Machine::r8000();
    let choice = SchedulerChoice::Heuristic;
    for suite in swp_kernels::spec_suites() {
        let reference = run_suite(&suite, &m, &choice)
            .unwrap_or_else(|e| panic!("{}: sequential compile failed: {e}", suite.name));
        for threads in THREAD_COUNTS {
            // A fresh driver per (suite, thread count): every compile
            // really runs under this thread configuration instead of
            // being replayed from a previous round's cache.
            let driver = Driver::new(threads);
            let parallel = run_suite_with(&driver, &suite, &m, &choice).unwrap_or_else(|e| {
                panic!("{}@{threads}: parallel compile failed: {e}", suite.name)
            });
            assert_eq!(
                reference, parallel,
                "{} at {threads} threads: parallel result diverged from sequential",
                suite.name
            );
        }
    }
}

#[test]
fn uncached_parallel_driver_is_also_deterministic() {
    // Same lockdown without the cache's in-flight dedup smoothing
    // anything over: raw thread fan-out must already be deterministic.
    let m = Machine::r8000();
    let choice = SchedulerChoice::Heuristic;
    for suite in swp_kernels::spec_suites() {
        let reference = run_suite(&suite, &m, &choice).expect("sequential compiles");
        for threads in THREAD_COUNTS {
            let driver = Driver::uncached(threads);
            let parallel = run_suite_with(&driver, &suite, &m, &choice).expect("parallel compiles");
            assert_eq!(
                reference, parallel,
                "{} at {threads} threads (uncached)",
                suite.name
            );
        }
    }
}

#[test]
fn parallel_baseline_is_bit_identical_to_sequential() {
    let m = Machine::r8000();
    for suite in swp_kernels::spec_suites() {
        let reference = run_suite_baseline(&suite, &m);
        for threads in THREAD_COUNTS {
            let driver = Driver::new(threads);
            let parallel = run_suite_baseline_with(&driver, &suite, &m);
            assert_eq!(
                reference, parallel,
                "{} baseline at {threads} threads",
                suite.name
            );
        }
    }
}

#[test]
fn warm_cache_replays_are_bit_identical_too() {
    // One shared driver across repeated runs of the same suite: the
    // second and third runs are served almost entirely from the cache
    // and must still match the cold sequential reference bit for bit.
    let m = Machine::r8000();
    let choice = SchedulerChoice::Heuristic;
    let driver = Driver::new(4);
    for suite in swp_kernels::spec_suites().into_iter().take(4) {
        let reference = run_suite(&suite, &m, &choice).expect("sequential compiles");
        for round in 0..3 {
            let replay = run_suite_with(&driver, &suite, &m, &choice).expect("compiles");
            assert_eq!(reference, replay, "{} round {round}", suite.name);
        }
    }
    let stats = driver.cache_stats();
    assert!(stats.hits > 0, "replays must actually hit the cache");
}
