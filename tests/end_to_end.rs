//! Cross-crate integration: compile every workload loop with both
//! pipeliners, validate the schedules, and cross-check functional
//! semantics between sequential and pipelined-issue-order execution.

use showdown::{compile_loop, SchedulerChoice};
use std::time::Duration;
use swp_ir::Ddg;
use swp_machine::Machine;
use swp_most::MostOptions;
use swp_sim::interp::{run_pipelined, run_sequential};
use swp_sim::simulate;

fn quick_most() -> SchedulerChoice {
    SchedulerChoice::IlpWith(MostOptions {
        node_limit: 10_000,
        time_limit: Some(Duration::from_millis(400)),
        loop_time_limit: Some(Duration::from_secs(3)),
        max_ops: 50,
        ..MostOptions::default()
    })
}

#[test]
fn every_livermore_kernel_compiles_and_validates_heuristic() {
    let m = Machine::r8000();
    for k in swp_kernels::livermore() {
        let c = compile_loop(&k.body, &m, &SchedulerChoice::Heuristic)
            .unwrap_or_else(|e| panic!("kernel {}: {e}", k.number));
        let ddg = Ddg::build(c.code.body(), &m);
        assert_eq!(
            c.code.schedule().validate(c.code.body(), &ddg, &m),
            Ok(()),
            "kernel {}",
            k.number
        );
        assert!(
            c.stats.ii >= c.stats.min_ii,
            "kernel {}: II below MinII",
            k.number
        );
    }
}

#[test]
fn every_livermore_kernel_compiles_with_ilp_and_fallback() {
    let m = Machine::r8000();
    let most = quick_most();
    for k in swp_kernels::livermore() {
        let c =
            compile_loop(&k.body, &m, &most).unwrap_or_else(|e| panic!("kernel {}: {e}", k.number));
        let ddg = Ddg::build(c.code.body(), &m);
        assert_eq!(
            c.code.schedule().validate(c.code.body(), &ddg, &m),
            Ok(()),
            "kernel {}",
            k.number
        );
    }
}

#[test]
fn pipelined_execution_is_functionally_sequential() {
    // The scheduler may reorder aggressively, but issuing instances in
    // schedule order must produce the same memory image as sequential
    // iteration — on every Livermore kernel with affine accesses.
    let m = Machine::r8000();
    for k in swp_kernels::livermore() {
        // Indirect kernels (13, 14) compute addresses from loaded data;
        // the interpreter handles them, but address collisions across
        // iterations make the comparison depend on seed data layout, so
        // they are covered by their own test below.
        if k.body
            .mem_ops()
            .any(|o| o.mem.is_some_and(|mm| mm.indirect))
        {
            continue;
        }
        let c = compile_loop(&k.body, &m, &SchedulerChoice::Heuristic)
            .unwrap_or_else(|e| panic!("kernel {}: {e}", k.number));
        let trips = 24;
        let seq = run_sequential(c.code.body(), trips);
        let pip = run_pipelined(&c.code, trips).expect("schedule preserves dependences");
        assert!(
            seq.approx_eq(&pip, 0.0),
            "kernel {} ({}) pipelined execution diverged",
            k.number,
            k.name
        );
    }
}

#[test]
fn ilp_scheduled_execution_is_functionally_sequential() {
    // Same differential lockdown for the ILP pipeliner: MOST explores
    // schedules the greedy heuristic never proposes (and may fall back),
    // yet issuing its code in schedule order must reproduce sequential
    // semantics bit for bit on every affine Livermore kernel.
    let m = Machine::r8000();
    let most = quick_most();
    for k in swp_kernels::livermore() {
        if k.body
            .mem_ops()
            .any(|o| o.mem.is_some_and(|mm| mm.indirect))
        {
            continue;
        }
        let c =
            compile_loop(&k.body, &m, &most).unwrap_or_else(|e| panic!("kernel {}: {e}", k.number));
        let trips = 24;
        let seq = run_sequential(c.code.body(), trips);
        let pip = run_pipelined(&c.code, trips).expect("schedule preserves dependences");
        assert!(
            seq.approx_eq(&pip, 0.0),
            "kernel {} ({}) ILP-pipelined execution diverged (fell_back={})",
            k.number,
            k.name,
            c.stats.fell_back
        );
    }
}

#[test]
fn indirect_kernels_still_validate_and_simulate() {
    let m = Machine::r8000();
    for k in swp_kernels::livermore()
        .into_iter()
        .filter(|k| [13, 14].contains(&k.number))
    {
        let c = compile_loop(&k.body, &m, &SchedulerChoice::Heuristic).expect("compiles");
        let r = simulate(&c.code, 100, &m);
        assert!(r.cycles >= c.code.static_cycles(100));
        assert_eq!(r.iterations, 100);
    }
}

#[test]
fn spec_suites_compile_and_simulate_both_ways() {
    let m = Machine::r8000();
    let most = quick_most();
    for s in swp_kernels::spec_suites() {
        for wl in &s.loops {
            let h = compile_loop(&wl.body, &m, &SchedulerChoice::Heuristic)
                .unwrap_or_else(|e| panic!("{}::{}: {e}", s.name, wl.name));
            let i = compile_loop(&wl.body, &m, &most)
                .unwrap_or_else(|e| panic!("{}::{}: {e}", s.name, wl.name));
            assert!(i.stats.ii >= i.stats.min_ii);
            let rh = simulate(&h.code, 64, &m);
            let ri = simulate(&i.code, 64, &m);
            assert!(rh.cycles > 0 && ri.cycles > 0);
        }
    }
}

#[test]
fn unbanked_machine_runs_at_static_speed() {
    let m = Machine::r8000_unbanked();
    for k in swp_kernels::livermore().into_iter().take(6) {
        let c = compile_loop(&k.body, &m, &SchedulerChoice::Heuristic).expect("compiles");
        let r = simulate(&c.code, 200, &m);
        assert_eq!(
            r.stall_cycles, 0,
            "kernel {}: ideal memory never stalls",
            k.number
        );
        assert_eq!(r.cycles, c.code.static_cycles(200));
    }
}

#[test]
fn spilling_round_trips_semantics_end_to_end() {
    // Force spills with a tiny register file; the spilled loop must still
    // compute the same values.
    let tiny = swp_machine::MachineBuilder::new("tiny")
        .allocatable(swp_machine::RegClass::Float, 10)
        .build();
    let k7 = swp_kernels::livermore()
        .into_iter()
        .find(|k| k.number == 7)
        .expect("k7");
    let c = compile_loop(&k7.body, &tiny, &SchedulerChoice::Heuristic).expect("spills rescue");
    let trips = 16;
    // Compare against the *original* body's sequential execution, ignoring
    // the spill arrays the transformed body introduces.
    let original_arrays = k7.body.arrays().len() as u32;
    let seq = run_sequential(&k7.body, trips);
    let pip = run_pipelined(&c.code, trips).expect("schedule preserves dependences");
    let sw: Vec<_> = seq.written();
    let pw: Vec<_> = pip
        .written()
        .into_iter()
        .filter(|((a, _), _)| *a < original_arrays)
        .collect();
    assert_eq!(sw.len(), pw.len());
    for ((ka, va), (kb, vb)) in sw.iter().zip(&pw) {
        assert_eq!(ka, kb);
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "spilled code changed cell {ka:?}"
        );
    }
}
