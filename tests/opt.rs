//! Property-based lockdown of the mid-end pass pipeline: every pass —
//! individually and composed to a fixpoint — must preserve the simulated
//! memory image of random loops bit-for-bit, and an optimized compile
//! must still certify cleanly under the full `swp-verify` audit for both
//! schedulers.

use proptest::prelude::*;
use showdown::{compile_loop_with, CompileOptions, OptLevel, PassManager, SchedulerChoice};
use swp_ir::opt::{pass_names, run_pass};
use swp_kernels::{random_loop, GenParams};
use swp_machine::Machine;
use swp_sim::check_loops_equivalent;
use swp_verify::VerifyLevel;

fn params_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (
        4usize..40,
        0.1f64..0.6,
        0usize..3,
        prop_oneof![Just(0.0f64), Just(0.05f64)],
        0u64..1000,
    )
        .prop_map(|(ops, mem, rec, div, seed)| {
            (
                GenParams {
                    ops,
                    mem_fraction: mem,
                    recurrences: rec,
                    div_fraction: div,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each pass, run alone over fresh analyses, keeps the loop valid and
    /// the 12-iteration memory image bit-identical. (Re-association may
    /// change a *pure* accumulator's value; the differential simulation
    /// compares stores, which is exactly the observable contract.)
    #[test]
    fn each_pass_preserves_semantics((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        for &name in pass_names(OptLevel::Full) {
            let mut optimized = lp.clone();
            if run_pass(name, &mut optimized, &m) {
                prop_assert_eq!(optimized.validate(), Ok(()), "{} broke validate()", name);
                if let Err(e) = check_loops_equivalent(&lp, &optimized, 12, 0.0) {
                    prop_assert!(false, "{} changed semantics: {}", name, e);
                }
            }
        }
    }

    /// The full fixpoint pipeline preserves semantics, never grows the
    /// loop, and reports zero structural-audit findings on its own work.
    #[test]
    fn full_pipeline_preserves_semantics((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        let mut optimized = lp.clone();
        let outcome = PassManager::new(OptLevel::Full).run(&mut optimized, &m);
        prop_assert_eq!(optimized.validate(), Ok(()));
        prop_assert!(optimized.len() <= lp.len(), "pipeline grew the loop");
        prop_assert!(
            outcome.findings.is_empty(),
            "structural audit flagged the pipeline: {:?}",
            outcome.findings
        );
        if let Err(e) = check_loops_equivalent(&lp, &optimized, 12, 0.0) {
            prop_assert!(false, "pipeline changed semantics: {}", e);
        }
        // A second run must be a fixpoint: nothing left to do.
        let mut again = optimized.clone();
        let second = PassManager::new(OptLevel::Full).run(&mut again, &m);
        prop_assert_eq!(second.total_applications(), 0, "pipeline is not idempotent");
    }
}

proptest! {
    // ILP solves are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pipeline-then-schedule on lint-clean inputs certifies at zero
    /// findings — not merely zero errors — under the full audit, for
    /// both schedulers, with every pass application sim-validated.
    #[test]
    fn optimized_compiles_audit_clean_for_both_schedulers((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let small = GenParams { ops: p.ops.min(16), ..p };
        let lp = random_loop(&small, seed);
        // Only lint-clean inputs: a pre-existing lint would land in the
        // audit report and has nothing to do with the pipeline.
        if !swp_ir::lint::lint_loop(&lp, &m).is_empty() {
            return Ok(());
        }
        let ilp = SchedulerChoice::IlpWith(swp_most::MostOptions {
            node_limit: 5_000,
            time_limit: None,
            loop_time_limit: None,
            ..swp_most::MostOptions::default()
        });
        for choice in [SchedulerChoice::Heuristic, ilp] {
            let options = CompileOptions {
                choice,
                verify: VerifyLevel::Full,
                opt: OptLevel::Full,
                ..CompileOptions::default()
            };
            if let Ok(c) = compile_loop_with(&lp, &m, &options) {
                let report = c.audit.expect("verify on");
                prop_assert!(
                    report.findings.is_empty(),
                    "optimized compile not clean:\n{}",
                    report.render_human()
                );
            }
        }
    }
}
