//! Chaos-engineering lockdown of the degradation ladder: injected
//! faults at every upper rung must be contained, the sequential anchor
//! must make compilation total on lint-clean loops, and a panic that
//! escapes rung isolation on purpose must die as a *structured* error
//! without taking the driver pool or the schedule cache with it.

use proptest::prelude::*;
use showdown::{
    compile_ladder, hush_injected_panics, render_attempts, ChaosFault, ChaosOptions, CompileError,
    CompileOptions, Corruption, Driver, LadderOptions, Rung, SchedulerChoice, VerifyLevel,
};
use swp_kernels::{random_loop, GenParams};
use swp_machine::Machine;
use swp_most::MostOptions;
use swp_sat::SatOptions;
use swp_sim::interp::{run_pipelined, run_sequential};

/// Small, fully deterministic ladder budgets: node/pivot/conflict counts
/// only, no wall clocks, and a 12-op ceiling on rungs 0–1 so large
/// random loops demote instantly instead of grinding the optimal
/// solvers in debug builds.
fn quick_ladder() -> LadderOptions {
    LadderOptions {
        most: MostOptions {
            node_limit: 2_000,
            pivot_limit: 20_000,
            time_limit: None,
            loop_time_limit: None,
            loop_pivot_limit: Some(60_000),
            max_ops: 12,
            ..MostOptions::default()
        },
        sat: SatOptions {
            conflict_limit: 2_000,
            propagation_limit: 200_000,
            time_limit: None,
            loop_time_limit: None,
            loop_conflict_limit: Some(6_000),
            max_ops: 12,
            ..SatOptions::default()
        },
        escalation_rounds: 2,
        ..LadderOptions::default()
    }
}

fn params_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (
        4usize..40,
        0.1f64..0.6,
        0usize..3,
        prop_oneof![Just(0.0f64), Just(0.05f64)],
        0u64..1000,
    )
        .prop_map(|(ops, mem, rec, div, seed)| {
            (
                GenParams {
                    ops,
                    mem_fraction: mem,
                    recurrences: rec,
                    div_fraction: div,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite: total compilation. Every random lint-clean loop must
    /// compile to a sim-validated schedule from *some* rung.
    #[test]
    fn every_lint_clean_loop_compiles_on_some_rung((p, seed) in params_strategy()) {
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        let has_error_lint = swp_verify::lint_findings(&lp, &m)
            .iter()
            .any(|f| f.severity == showdown::Severity::Error);
        if !has_error_lint {
            let c = compile_ladder(&lp, &m, &quick_ladder()).unwrap_or_else(|e| {
                panic!("ladder must be total on a lint-clean loop (seed {seed}): {e}")
            });
            let rung = c.rung.expect("ladder results carry their rung");
            // The shipped schedule computes what the loop computes.
            let seq = run_sequential(c.code.body(), 12);
            let pip = run_pipelined(&c.code, 12).expect("gated schedule preserves dependences");
            prop_assert!(
                seq.approx_eq(&pip, 0.0),
                "rung {rung} shipped a wrong schedule; trace:\n{}",
                render_attempts(&c.attempts)
            );
        }
    }

    /// Under chaos at every upper rung, the same loops still compile —
    /// via the sequential anchor — and no injected fault escapes.
    #[test]
    fn chaos_at_every_upper_rung_still_compiles((p, seed) in params_strategy()) {
        hush_injected_panics();
        let m = Machine::r8000();
        let lp = random_loop(&p, seed);
        let has_error_lint = swp_verify::lint_findings(&lp, &m)
            .iter()
            .any(|f| f.severity == showdown::Severity::Error);
        if !has_error_lint {
            let mut opts = quick_ladder();
            opts.chaos = ChaosOptions::default()
                .with_fault(Rung::Ilp, ChaosFault::Panic)
                .with_fault(Rung::Sat, ChaosFault::Exhaust)
                .with_fault(Rung::Heuristic, ChaosFault::Corrupt(Corruption::NegativeTime))
                .with_fault(Rung::Escalated, ChaosFault::Exhaust);
            let c = compile_ladder(&lp, &m, &opts)
                .unwrap_or_else(|e| panic!("anchor rung must rescue (seed {seed}): {e}"));
            prop_assert_eq!(c.rung, Some(Rung::Sequential));
            prop_assert!(
                !c.attempts.iter().any(|a| a.escaped()),
                "an injected fault escaped; trace:\n{}",
                render_attempts(&c.attempts)
            );
            let seq = run_sequential(c.code.body(), 12);
            let pip = run_pipelined(&c.code, 12).expect("anchor schedule is valid");
            prop_assert!(seq.approx_eq(&pip, 0.0), "anchor schedule diverged");
        }
    }
}

fn saxpy(name: &str) -> swp_ir::Loop {
    let mut b = swp_ir::LoopBuilder::new(name);
    let a = b.invariant_f("a");
    let x = b.array("x", 8);
    let y = b.array("y", 8);
    let xv = b.load(x, 0, 8);
    let yv = b.load(y, 0, 8);
    let r = b.fmadd(a, xv, yv);
    b.store(y, 0, 8, r);
    b.finish()
}

/// A corrupted schedule is rejected by the verify gate and the loop is
/// demoted — the tampered artifact is never shipped.
#[test]
fn corruption_is_caught_by_the_gate_through_the_public_api() {
    hush_injected_panics();
    let m = Machine::r8000();
    for how in [
        Corruption::NegativeTime,
        Corruption::ClobberedRegister,
        Corruption::TamperedExpansion,
    ] {
        let mut opts = quick_ladder();
        opts.chaos = ChaosOptions::default().with_fault(Rung::Ilp, ChaosFault::Corrupt(how));
        let c = compile_ladder(&saxpy("s"), &m, &opts).expect("lower rung rescues");
        assert!(
            c.rung > Some(Rung::Ilp),
            "{how:?}: corrupted rung 0 must not ship"
        );
        let report = c.audit.as_ref().expect("gate audits the shipped rung");
        assert!(report.is_clean(), "{how:?}: shipped schedule is clean");
        assert!(!c.attempts.iter().any(|a| a.escaped()), "{how:?} escaped");
    }
}

/// The in-flight panic escapes rung isolation by design; the driver pool
/// must convert every one into a structured internal error, finish the
/// whole run, and stay usable afterwards.
#[test]
fn driver_pool_survives_in_flight_panics() {
    hush_injected_panics();
    let m = Machine::r8000();
    let chaotic = CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(LadderOptions {
            chaos: ChaosOptions {
                panic_in_flight: true,
                ..ChaosOptions::default()
            },
            ..quick_ladder()
        })),
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    for threads in [1, 2, 8] {
        let driver = Driver::new(threads);
        let loops: Vec<_> = (0..6).map(|i| saxpy(&format!("l{i}"))).collect();
        let outcomes = driver.run_indexed(loops.len(), |i| {
            driver.compile_with(&loops[i], &m, &chaotic)
        });
        assert_eq!(outcomes.len(), loops.len(), "every job completed");
        for out in &outcomes {
            match out {
                Err(CompileError::Internal {
                    rung: None,
                    message,
                }) => {
                    assert!(message.contains("chaos:"), "panic message preserved")
                }
                other => panic!("expected a structured internal error, got {other:?}"),
            }
        }
        // The pool and the cache both survived: a quiet ladder compile
        // on the same driver succeeds and is audit-clean.
        let quiet = CompileOptions {
            choice: SchedulerChoice::LadderWith(Box::new(quick_ladder())),
            verify: VerifyLevel::Off,
            ..CompileOptions::default()
        };
        let c = driver
            .compile_with(&loops[0], &m, &quiet)
            .expect("pool survives chaos");
        assert!(c.audit.as_ref().expect("gated").is_clean());
    }
}

/// `run_indexed_catching` reports planted panics per job without
/// aborting the rest of the batch.
#[test]
fn catching_fanout_reports_planted_panics() {
    hush_injected_panics();
    let driver = Driver::new(4);
    let out = driver.run_indexed_catching(16, |i| {
        assert!(i != 9, "chaos: planted panic in job {i}");
        i * 2
    });
    for (i, r) in out.iter().enumerate() {
        match r {
            Ok(v) => {
                assert_eq!(*v, i * 2);
                assert_ne!(i, 9);
            }
            Err(p) => {
                assert_eq!((p.job, i), (9, 9), "only the planted job fails");
                assert!(p.message.contains("chaos: planted panic in job 9"));
            }
        }
    }
}

/// Regression (satellite): a cache leader that panics mid-compile must
/// neither strand its waiters nor poison the slot — later requests for
/// the same key compile fresh and succeed.
#[test]
fn cache_recovers_after_a_panicking_leader() {
    hush_injected_panics();
    let m = Machine::r8000();
    let driver = Driver::new(4);
    let lp = saxpy("shared");
    let chaotic = CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(LadderOptions {
            chaos: ChaosOptions {
                panic_in_flight: true,
                ..ChaosOptions::default()
            },
            ..quick_ladder()
        })),
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    // Many concurrent requests for the SAME key: each round's leader
    // panics, waiters must be woken and promoted until all have failed
    // structurally. If the guard misbehaved this would hang (caught by
    // the test harness timeout) or poison the cache.
    let outcomes = driver.run_indexed(12, |_| driver.compile_with(&lp, &m, &chaotic));
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, Err(CompileError::Internal { rung: None, .. }))));
    // The slot is clean: a quiet compile of the same loop succeeds.
    let quiet = CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(quick_ladder())),
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    let c = driver
        .compile_with(&lp, &m, &quiet)
        .expect("slot not poisoned");
    assert_eq!(c.rung, Some(Rung::Ilp), "quiet saxpy ships from rung 0");
}
