//! Lockdown of the `swp-obs` telemetry subsystem at the public API:
//!
//! - every `Exact` counter must aggregate **bit-identically** at any
//!   thread count (the whole point of the class — a metric you can gate
//!   CI on is one that parallelism cannot smear);
//! - a traced compile must record a span for every phase it went
//!   through, and the exported Chrome trace must pass the same schema
//!   validation the CI profile job applies;
//! - an explicitly *disabled* handle must cost the same as the default
//!   options (the <2% acceptance bound, enforced with min-of-N wall
//!   clocks plus an absolute slack so scheduler noise cannot flake it).

use proptest::prelude::*;
use showdown::{
    compile_loop_with, CompileOptions, CounterSnapshot, Driver, LadderOptions, OptLevel,
    SchedulerChoice, Telemetry, VerifyLevel,
};
use std::time::{Duration, Instant};
use swp_kernels::{livermore, random_loop, GenParams};
use swp_machine::Machine;
use swp_most::MostOptions;

/// Tight, fully deterministic ILP budgets: node/pivot counts only, no
/// wall clocks, and a 12-op ceiling so large random loops fall back to
/// the heuristic instantly instead of grinding in debug builds. Any
/// wall-clock budget here would break the cross-thread determinism this
/// file exists to prove.
fn tight_most() -> MostOptions {
    MostOptions {
        node_limit: 2_000,
        pivot_limit: 20_000,
        time_limit: None,
        loop_time_limit: None,
        loop_pivot_limit: Some(60_000),
        max_ops: 12,
        ..MostOptions::default()
    }
}

/// Compile every loop under both schedulers through a fresh driver at
/// `threads` workers, reporting into a fresh telemetry handle; return
/// the final counter totals.
fn counters_at(loops: &[swp_ir::Loop], machine: &Machine, threads: usize) -> CounterSnapshot {
    let telemetry = Telemetry::new();
    let options = [
        CompileOptions {
            choice: SchedulerChoice::Heuristic,
            verify: VerifyLevel::Full,
            // Full opt so the mid-end's Exact counters are covered by
            // the cross-thread determinism proof too.
            opt: OptLevel::Full,
            telemetry: telemetry.clone(),
        },
        CompileOptions {
            choice: SchedulerChoice::IlpWith(tight_most()),
            verify: VerifyLevel::Off,
            opt: OptLevel::Off,
            telemetry: telemetry.clone(),
        },
    ];
    let driver = Driver::new(threads);
    let _ = driver.run_indexed(loops.len() * options.len(), |j| {
        driver
            .compile_with(
                &loops[j / options.len()],
                machine,
                &options[j % options.len()],
            )
            .is_ok()
    });
    telemetry.counters()
}

fn suite_strategy() -> impl Strategy<Value = (GenParams, u64)> {
    (4usize..20, 0.1f64..0.5, 0usize..2, 0u64..1000).prop_map(|(ops, mem, rec, seed)| {
        (
            GenParams {
                ops,
                mem_fraction: mem,
                recurrences: rec,
                div_fraction: 0.0,
            },
            seed,
        )
    })
}

/// Derive a small suite of distinct loops from one sampled point: vary
/// both the op count and the seed so the loops are structurally
/// different (distinct schedule-cache keys).
fn suite_loops(p: &GenParams, seed: u64) -> Vec<swp_ir::Loop> {
    (0..4u64)
        .map(|i| {
            let params = GenParams {
                ops: p.ops + i as usize,
                ..*p
            };
            random_loop(&params, seed.wrapping_add(i))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: registered counters are bit-identical across
    /// `--threads 1/2/8` on random loop suites. `exact_eq` compares the
    /// `Exact` class only — `Timing` metrics such as in-flight cache
    /// waits legitimately depend on scheduling and are exempt.
    #[test]
    fn exact_counters_are_bit_identical_across_thread_counts((p, seed) in suite_strategy()) {
        let m = Machine::r8000();
        let loops = suite_loops(&p, seed);
        let reference = counters_at(&loops, &m, 1);
        for threads in [2usize, 8] {
            let parallel = counters_at(&loops, &m, threads);
            prop_assert!(
                reference.exact_eq(&parallel),
                "Exact counters diverged at {threads} threads:\n 1: {:?}\n{threads}: {:?}",
                reference.iter().collect::<Vec<_>>(),
                parallel.iter().collect::<Vec<_>>()
            );
        }
    }
}

/// A traced ladder compile through the driver records a span for every
/// phase it went through, and the exported Chrome trace validates.
#[test]
fn traced_compile_records_every_phase_and_exports_a_valid_trace() {
    let m = Machine::r8000();
    let telemetry = Telemetry::with_tracing();
    let driver = Driver::new(2);

    // Rung 0 of the ladder solves the ILP (ii steps + solves), allocates
    // registers, expands the kernel, and runs the verify gate.
    let ladder = CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(LadderOptions {
            most: tight_most(),
            ..LadderOptions::default()
        })),
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    // A plain heuristic compile adds the heuristic scheduler spans.
    let heur = CompileOptions {
        choice: SchedulerChoice::Heuristic,
        verify: VerifyLevel::Full,
        opt: OptLevel::Full,
        telemetry: telemetry.clone(),
    };
    let lp = &livermore()[0].body;
    driver
        .compile_with(lp, &m, &ladder)
        .expect("ladder compiles");
    driver
        .compile_with(lp, &m, &heur)
        .expect("heuristic compiles");

    let names = telemetry.span_names();
    for expected in [
        "cache.lookup",
        "compile",
        "ladder.rung",
        "most.ii_step",
        "ilp.solve",
        "heur.attempt",
        "sched.heur",
        "regalloc.attempt",
        "expand",
        "verify.audit",
    ] {
        assert!(
            names.contains(&expected),
            "no {expected:?} span recorded; got {names:?}"
        );
    }
    let trace = telemetry.chrome_trace_json();
    let events = showdown::swp_obs::validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("exported trace is invalid: {e}"));
    assert_eq!(events, telemetry.span_count(), "every span is exported");
}

/// Satellite: a disabled `Telemetry` handle adds <2% overhead on the
/// Livermore sweep. An explicitly disabled handle and the default
/// options run the identical code path, so this is a regression tripwire
/// against the disabled path ever growing real work — measured as
/// min-of-N so one scheduler hiccup cannot flake it, with an absolute
/// slack floor for when the sweep itself is only milliseconds long.
#[test]
fn disabled_telemetry_stays_under_two_percent_on_the_livermore_sweep() {
    let m = Machine::r8000();
    let kernels = livermore();
    let baseline = CompileOptions::default();
    let disabled = CompileOptions {
        telemetry: Telemetry::disabled(),
        ..CompileOptions::default()
    };
    let sweep = |options: &CompileOptions| {
        let start = Instant::now();
        for k in &kernels {
            compile_loop_with(&k.body, &m, options).expect("livermore compiles");
        }
        start.elapsed()
    };
    // Warm-up, then interleaved min-of-5 for each configuration.
    let _ = (sweep(&baseline), sweep(&disabled));
    let mut base_min = Duration::MAX;
    let mut off_min = Duration::MAX;
    for _ in 0..5 {
        base_min = base_min.min(sweep(&baseline));
        off_min = off_min.min(sweep(&disabled));
    }
    let slack = (base_min / 50).max(Duration::from_millis(10));
    assert!(
        off_min <= base_min + slack,
        "disabled telemetry sweep {off_min:?} exceeds baseline {base_min:?} + {slack:?}"
    );
}
