//! The paper's Figure 6/7 in miniature: run both pipeliners over the 24
//! Livermore loops and print per-kernel IIs, registers, overhead, and
//! short/long-trip performance ratios.
//!
//! ```text
//! cargo run --release --example livermore_showdown
//! ```

use showdown::{compare, SchedulerChoice};
use std::time::Duration;
use swp_machine::Machine;
use swp_most::MostOptions;

fn main() {
    let machine = Machine::r8000();
    let most = SchedulerChoice::IlpWith(MostOptions {
        node_limit: 50_000,
        time_limit: Some(Duration::from_secs(5)),
        ..MostOptions::default()
    });

    println!(
        "{:<4} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}",
        "k", "kernel", "II(h)", "II(i)", "reg(h)", "reg(i)", "rel-shrt", "rel-long"
    );
    let mut ilp_ii_wins = 0;
    for k in swp_kernels::livermore() {
        let c = compare(
            &k.body,
            &machine,
            &SchedulerChoice::Heuristic,
            &most,
            k.short_trip,
            k.long_trip,
        )
        .expect("livermore pipelines");
        if c.ilp.ii < c.heuristic.ii {
            ilp_ii_wins += 1;
        }
        println!(
            "{:<4} {:<28} {:>6} {:>6} {:>6} {:>6} {:>8.3} {:>8.3}",
            k.number,
            k.name,
            c.heuristic.ii,
            c.ilp.ii,
            c.heuristic.total_regs,
            c.ilp.total_regs,
            c.relative_short(),
            c.relative_long()
        );
    }
    println!(
        "\nloops where the \"optimal\" method beat the heuristic II: {ilp_ii_wins} \
         (the paper found exactly one across its whole study)"
    );
}
