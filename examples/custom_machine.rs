//! Retargeting: the pipeliners are machine-parameterized. Build a wider
//! hypothetical machine and watch MinII and achieved II drop.
//!
//! ```text
//! cargo run --example custom_machine
//! ```

use showdown::{compile_loop, SchedulerChoice};
use swp_ir::{Ddg, LoopBuilder};
use swp_machine::{Machine, MachineBuilder, OpClass, ResourceClass};

fn main() {
    // An 8-issue machine with 4 memory pipes, 4 FP pipes, and a pipelined
    // divider — roughly "what if the R8000 grew up".
    let wide = MachineBuilder::new("wide8")
        .issue_width(8)
        .units(ResourceClass::Memory, 4)
        .units(ResourceClass::Float, 4)
        .units(ResourceClass::Integer, 4)
        .latency(OpClass::FDiv, 8)
        .occupancy(OpClass::FDiv, 1)
        .build();
    let r8000 = Machine::r8000();

    // Livermore kernel 22-style body: divides plus a polynomial ladder.
    let mut b = LoopBuilder::new("planck");
    let u = b.array("u", 8);
    let v = b.array("v", 8);
    let w = b.array("w", 8);
    let c1 = b.invariant_f("c1");
    let uk = b.load(u, 0, 8);
    let vk = b.load(v, 0, 8);
    let q = b.fdiv(uk, vk);
    let p = b.fmadd(q, c1, uk);
    let r = b.fdiv(p, q);
    b.store(w, 0, 8, r);
    let lp = b.finish();

    for m in [&r8000, &wide] {
        let ddg = Ddg::build(&lp, m);
        let c = compile_loop(&lp, m, &SchedulerChoice::Heuristic).expect("pipelines");
        println!(
            "{:<8} MinII={:<3} achieved II={:<3} stages={} regs={}",
            m.name(),
            ddg.min_ii(),
            c.stats.ii,
            c.code.stage_count(),
            c.code.total_regs()
        );
    }
    println!("\nUnpipelined divides dominate the R8000's MinII; the wide machine erases them.");
}
