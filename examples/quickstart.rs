//! Quickstart: software-pipeline a SAXPY loop with both schedulers and
//! watch it run on the simulated R8000.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use showdown::{compare, compile_baseline, SchedulerChoice};
use swp_ir::{Ddg, LoopBuilder};
use swp_machine::Machine;
use swp_sim::simulate_baseline;

fn main() {
    let machine = Machine::r8000();

    // y[i] = a*x[i] + y[i] — the canonical inner loop.
    let mut b = LoopBuilder::new("saxpy");
    let a = b.invariant_f("a");
    let x = b.array("x", 8);
    let y = b.array("y", 8);
    let xv = b.load(x, 0, 8);
    let yv = b.load(y, 0, 8);
    let r = b.fmadd(a, xv, yv);
    b.store(y, 0, 8, r);
    let lp = b.finish();

    println!("{lp}\n");
    let ddg = Ddg::build(&lp, &machine);
    println!(
        "MinII = {} (resources {}, recurrences {})\n",
        ddg.min_ii(),
        ddg.res_mii(),
        ddg.rec_mii()
    );

    // The showdown: heuristic vs ILP on the same loop.
    let c = compare(
        &lp,
        &machine,
        &SchedulerChoice::Heuristic,
        &SchedulerChoice::Ilp,
        10,
        10_000,
    )
    .expect("saxpy pipelines");
    println!("                     heuristic      ILP");
    println!("achieved II        {:>9}  {:>9}", c.heuristic.ii, c.ilp.ii);
    println!(
        "registers used     {:>9}  {:>9}",
        c.heuristic.total_regs, c.ilp.total_regs
    );
    println!(
        "entry/exit cycles  {:>9}  {:>9}",
        c.heuristic.overhead_cycles, c.ilp.overhead_cycles
    );
    println!(
        "cycles, 10k trips  {:>9}  {:>9}",
        c.heuristic.long.cycles, c.ilp.long.cycles
    );

    // And what life looks like without software pipelining (§4.1).
    let base = compile_baseline(&lp, &machine);
    let br = simulate_baseline(&base, 10_000, &machine);
    println!(
        "\nwithout pipelining: {} cycles ({:.1}x slower)",
        br.cycles,
        br.cycles as f64 / c.heuristic.long.cycles as f64
    );
}
