//! §2.9 and Figure 4 in action: the alvinn-style single-precision dot
//! product whose natural memory pairings hit the same cache bank. Shows
//! the stall behaviour with the pairing heuristic on and off.
//!
//! ```text
//! cargo run --example bank_conflicts
//! ```

use showdown::{compile_loop, SchedulerChoice};
use swp_heur::HeurOptions;
use swp_ir::{Loop, LoopBuilder};
use swp_machine::Machine;
use swp_sim::simulate;

/// §4.3: "one of the two critical loops is a dot product of two single
/// precision vectors" — v[i], v[i+1] are 4 bytes apart (same double-word),
/// so the natural pattern batches same-bank references.
fn alvinn_dot() -> Loop {
    let mut b = LoopBuilder::new("alvinn_dot");
    let v = b.array("v", 4);
    let u = b.array("u", 4);
    let s = b.carried_f("s");
    let v0 = b.load(v, 0, 8);
    let v1 = b.load(v, 4, 8);
    let u0 = b.load(u, 0, 8);
    let u1 = b.load(u, 4, 8);
    let m0 = b.fmadd(v0, u0, s.value());
    let m1 = b.fmadd(v1, u1, m0);
    b.close(s, m1, 1);
    b.finish()
}

fn main() {
    let machine = Machine::r8000();
    let lp = alvinn_dot();
    println!("{lp}\n");

    let trips = 10_000;
    for (label, choice) in [
        ("bank pairing ON ", SchedulerChoice::Heuristic),
        (
            "bank pairing OFF",
            SchedulerChoice::HeuristicWith(HeurOptions {
                bank_pairing: false,
                explore_stalls: false,
                ..HeurOptions::default()
            }),
        ),
    ] {
        let c = compile_loop(&lp, &machine, &choice).expect("pipelines");
        let r = simulate(&c.code, trips, &machine);
        println!(
            "{label}: II={} cycles={} stalls={} ({:.1}% of cycles)",
            c.stats.ii,
            r.cycles,
            r.stall_cycles,
            100.0 * r.stall_cycles as f64 / r.cycles as f64
        );
    }
    println!(
        "\nThe worst case (paper §2.9): two same-bank references per cycle run at half speed."
    );
}
