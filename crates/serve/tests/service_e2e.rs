//! End-to-end service tests over a real Unix socket: basic batch
//! compilation, the kill-and-restart warm-hit guarantee, and overload
//! behavior (degrade, never reject). Scheduler choice is mostly the
//! heuristic so the suite stays fast in debug builds; the chaos sweep
//! (`experiments serve-chaos`) exercises the full ladder in release.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Duration;

use showdown::{OptLevel, VerifyLevel};
use swp_machine::Machine;
use swp_serve::{
    AdmissionOptions, Client, LoopOk, RequestBatch, Server, ServerHandle, ServerOptions, WireChoice,
};

fn fresh_root(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "swp-e2e-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(tag: &str, root: &Path, admission: AdmissionOptions) -> ServerHandle {
    let mut opts = ServerOptions::at(
        std::env::temp_dir().join(format!("swp-e2e-{}-{tag}.sock", std::process::id())),
    );
    opts.store_dir = Some(root.join("store"));
    opts.admission = admission;
    Server::start(Machine::r8000(), opts).expect("server start")
}

fn heur_request(batch_id: u64, client: &str, n_loops: usize) -> RequestBatch {
    RequestBatch {
        batch_id,
        client: client.to_owned(),
        deadline_ms: 0,
        choice: WireChoice::Heuristic,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops: swp_kernels::livermore()
            .into_iter()
            .take(n_loops)
            .map(|k| k.body)
            .collect(),
    }
}

fn compile(server: &ServerHandle, req: &RequestBatch) -> Vec<(String, LoopOk)> {
    let mut client = Client::connect(server.socket()).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(120))
        .expect("timeout");
    let resp = client.compile_batch(req).expect("batch");
    assert_eq!(resp.batch_id, req.batch_id);
    resp.results
        .into_iter()
        .map(|r| {
            let name = r.name.clone();
            (
                name,
                r.outcome.unwrap_or_else(|e| panic!("{}: {e}", r.name)),
            )
        })
        .collect()
}

#[test]
fn batch_compile_end_to_end() {
    let root = fresh_root("basic");
    let server = start_server("basic", &root, AdmissionOptions::default());
    let req = heur_request(77, "it", 3);
    let results = compile(&server, &req);
    assert_eq!(results.len(), 3);
    for ((name, ok), lp) in results.iter().zip(&req.loops) {
        assert_eq!(name, lp.name());
        assert!(ok.ii >= 1, "ii is populated");
        assert!(ok.code_fp != 0);
        assert_eq!(ok.demotion, 0);
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.demoted, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_and_restart_serves_warm_from_disk_bit_identically() {
    let root = fresh_root("restart");
    let req = heur_request(1, "it", 3);
    let cold = {
        let server = start_server("restart", &root, AdmissionOptions::default());
        let results = compile(&server, &req);
        let stats = server.stats();
        assert!(stats.store.persisted >= 3, "{stats:?}");
        assert_eq!(stats.store.hits, 0);
        results
        // Server dropped here: the "kill".
    };
    // A new server on the same store: the memory cache is empty, so
    // every answer must come from disk — and be bit-identical.
    let server = start_server("restart", &root, AdmissionOptions::default());
    let warm = compile(&server, &req);
    let stats = server.stats();
    assert_eq!(cold, warm, "disk-served results differ from cold compiles");
    assert!(
        stats.store.hits >= 3,
        "no disk hits after restart: {stats:?}"
    );
    assert_eq!(
        stats.cache.misses, 0,
        "restart recompiled instead of loading"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn overload_demotes_but_never_rejects() {
    let root = fresh_root("overload");
    // soft_inflight 0 is a standing-degradation policy: every admission
    // sees load at or above the soft threshold and demotes. That makes
    // the demote-don't-reject plumbing deterministic here regardless of
    // how the client threads interleave; the genuinely concurrent burst
    // (timing-dependent by nature) lives in the chaos sweep.
    let server = start_server(
        "overload",
        &root,
        AdmissionOptions {
            max_inflight: 2,
            soft_inflight: 0,
            heavy_inflight: 2,
            ..AdmissionOptions::default()
        },
    );
    let clients = 6;
    let per_client = 3;
    let answered: usize = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let req = heur_request(c as u64, &format!("c{c}"), per_client);
                    compile(server, &req).len()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .sum()
    });
    assert_eq!(answered, clients * per_client, "a request was dropped");
    let stats = server.stats();
    assert_eq!(stats.admitted as usize, clients * per_client);
    assert!(stats.demoted > 0, "burst produced no demotions: {stats:?}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn ladder_replies_carry_rung_and_diagnostics() {
    // One tiny loop through the full ladder (quick deterministic
    // budgets), checking the service surfaces rung + attempt trace.
    let root = fresh_root("ladder");
    let server = start_server("ladder", &root, AdmissionOptions::default());
    let req = RequestBatch {
        batch_id: 9,
        client: "it".into(),
        deadline_ms: 0,
        choice: WireChoice::Ladder,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops: vec![swp_kernels::random_loop(
            &swp_kernels::GenParams {
                ops: 6,
                mem_fraction: 0.3,
                recurrences: 1,
                div_fraction: 0.0,
            },
            11,
        )],
    };
    let results = compile(&server, &req);
    let (_, ok) = &results[0];
    assert!(ok.rung.is_some(), "ladder compile reported no rung");
    assert!(
        !ok.diagnostics.is_empty(),
        "ladder compile carried no attempt trace"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn demoted_requests_never_alias_full_effort_store_entries() {
    // Compile the same loop once demoted (tiny budget client) and once
    // at full effort: the disk store must hold two distinct records.
    let root = fresh_root("alias");
    let server = start_server(
        "alias",
        &root,
        AdmissionOptions {
            // Exactly one full-effort compile's worth of tokens, never
            // refilled: request 1 runs at full effort, request 2 demotes.
            bucket_capacity: 4,
            full_cost: 4,
            demoted_cost: 1,
            refill_per_completion: 0,
            ..AdmissionOptions::default()
        },
    );
    let lp = swp_kernels::random_loop(
        &swp_kernels::GenParams {
            ops: 6,
            mem_fraction: 0.3,
            recurrences: 1,
            div_fraction: 0.0,
        },
        13,
    );
    let mk = |id: u64| RequestBatch {
        batch_id: id,
        client: "alias".into(),
        deadline_ms: 0,
        choice: WireChoice::Ladder,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops: vec![lp.clone()],
    };
    let first = compile(&server, &mk(1));
    assert_eq!(first[0].1.demotion, 0, "first request was demoted");
    let second = compile(&server, &mk(2));
    assert!(second[0].1.demotion > 0, "drained bucket did not demote");
    let stats = server.stats();
    assert!(
        stats.store.persisted >= 2,
        "demoted and full-effort compiles shared a store record: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
