//! Disk-store crash-recovery properties: any truncation or bit flip of
//! a persisted record is detected on load, recovered by deletion, and
//! the recompiled result is bit-identical to what a cold compile
//! produces — with no panic anywhere on the path.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::Ordering;

use proptest::prelude::*;
use swp_serve::proto::LoopOk;
use swp_serve::store::{write_atomic, DiskStore, Lookup};

struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn sample_ok(g: &mut Gen) -> LoopOk {
    LoopOk {
        rung: Some(g.below(4) as u8),
        demotion: 0,
        ii: 1 + g.below(20) as u32,
        min_ii: 1 + g.below(20) as u32,
        optimal: g.below(2) == 0,
        fell_back: false,
        spills: g.below(4) as u32,
        search_effort: g.below(100_000),
        pivots: g.below(1_000_000),
        code_fp: g.next(),
        diagnostics: vec!["ilp: accepted".into()],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "swp-store-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncate a record at every possible length or flip any bit:
    /// `load` must report `Corrupt` (never a wrong `Hit`, never a
    /// panic), delete the record, and a re-persist must fully recover.
    #[test]
    fn corrupted_records_always_recover(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let dir = fresh_dir("prop");
        let store = DiskStore::open(&dir).expect("open");
        let key = g.next();
        let ok = sample_ok(&mut g);
        store.persist(key, &ok).expect("persist");
        let path = store.record_path(key);
        let original = fs::read(&path).expect("read record");

        // Corrupt: either truncate at a random point or flip a bit.
        let corrupted = if g.below(2) == 0 {
            let cut = g.below(original.len() as u64) as usize;
            original[..cut].to_vec()
        } else {
            let mut c = original.clone();
            let pos = g.below(c.len() as u64) as usize;
            c[pos] ^= 1 << g.below(8);
            c
        };
        let changed = corrupted != original;
        fs::write(&path, &corrupted).expect("write corruption");

        match store.load(key) {
            Lookup::Hit(back) => {
                // Only acceptable if the corruption was a no-op.
                prop_assert!(!changed, "corrupt record served as a hit");
                prop_assert_eq!(back, ok.clone());
            }
            Lookup::Corrupt => {
                prop_assert!(changed);
                // The record was deleted: next lookup is a clean miss.
                prop_assert_eq!(store.load(key), Lookup::Miss);
                // Recovery: re-persist (the "recompile") and get the
                // exact original back.
                store.persist(key, &ok).expect("re-persist");
                prop_assert_eq!(store.load(key), Lookup::Hit(ok.clone()));
            }
            Lookup::Miss => prop_assert!(false, "record vanished"),
        }
        prop_assert!(store.stats().corrupt_recovered <= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A record stored under one key must never be served for another:
    /// the embedded key check catches renamed/cross-linked files.
    #[test]
    fn records_cannot_be_replayed_under_another_key(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let dir = fresh_dir("replay");
        let store = DiskStore::open(&dir).expect("open");
        let key_a = g.next();
        let key_b = key_a ^ (1 + g.below(u64::MAX - 1));
        let ok = sample_ok(&mut g);
        store.persist(key_a, &ok).expect("persist");
        // Move A's record to B's name (an attacker or a backup-restore
        // mishap could do this).
        fs::rename(store.record_path(key_a), store.record_path(key_b)).expect("rename");
        prop_assert_eq!(store.load(key_b), Lookup::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn open_sweeps_stale_temp_files() {
    let dir = fresh_dir("sweep");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(".deadbeef.rec.123.0.tmp"), b"half a record").expect("tmp");
    fs::write(dir.join("not-a-record.txt"), b"keep me").expect("other");
    let store = DiskStore::open(&dir).expect("open");
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().all(|n| !n.ends_with(".tmp")), "{names:?}");
    assert!(names.iter().any(|n| n == "not-a-record.txt"));
    assert!(store.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn simulated_crash_leaves_no_record_and_restart_recovers() {
    let dir = fresh_dir("crash");
    let store = DiskStore::open(&dir).expect("open");
    store.fail_persist_after_tmp.store(true, Ordering::Relaxed);
    let ok = sample_ok(&mut Gen(42));
    assert!(store.persist(7, &ok).is_err());
    assert_eq!(store.load(7), Lookup::Miss);
    assert_eq!(store.len(), 0);
    // Restart: open again, debris swept, persistence works.
    drop(store);
    let store = DiskStore::open(&dir).expect("reopen");
    store.persist(7, &ok).expect("persist after restart");
    assert_eq!(store.load(7), Lookup::Hit(ok));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn write_atomic_replaces_content_completely() {
    let dir = fresh_dir("atomic");
    fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("artifact.json");
    write_atomic(&path, b"{\"v\":1}").expect("first write");
    write_atomic(&path, b"{\"v\":2,\"longer\":true}").expect("second write");
    assert_eq!(fs::read(&path).expect("read"), b"{\"v\":2,\"longer\":true}");
    // No temp debris left behind.
    let stray = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .count();
    assert_eq!(stray, 0);
    let _ = fs::remove_dir_all(&dir);
}
