//! Wire-protocol properties: random request/response batches survive an
//! encode → frame → read → decode round trip bit-exactly, and the
//! decoder answers adversarial bytes with structured errors, never a
//! panic.

use proptest::prelude::*;
use swp_serve::proto::{
    decode_payload, decode_result, encode_message, encode_result, read_message, LoopOk, LoopReply,
    Message, ProtoError, RequestBatch, ResponseBatch, WireChoice, MAGIC, MAX_FRAME,
};

use showdown::{OptLevel, VerifyLevel};

/// SplitMix64 — the workspace's test-local deterministic generator
/// (same pattern as the ILP warm-start proptests).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_request(g: &mut Gen) -> RequestBatch {
    let n_loops = 1 + g.below(3) as usize;
    let loops = (0..n_loops)
        .map(|_| {
            let params = swp_kernels::GenParams {
                ops: 4 + g.below(12) as usize,
                mem_fraction: 0.3,
                recurrences: g.below(2) as usize,
                div_fraction: 0.0,
            };
            swp_kernels::random_loop(&params, g.next())
        })
        .collect();
    RequestBatch {
        batch_id: g.next(),
        client: format!("client-{}", g.below(10)),
        deadline_ms: (g.below(2) * g.below(5000)) as u32,
        choice: [WireChoice::Ladder, WireChoice::Heuristic, WireChoice::Ilp][g.below(3) as usize],
        opt: [OptLevel::Off, OptLevel::Basic, OptLevel::Full][g.below(3) as usize],
        verify: [VerifyLevel::Off, VerifyLevel::Schedule, VerifyLevel::Full][g.below(3) as usize],
        loops,
    }
}

fn random_loop_ok(g: &mut Gen) -> LoopOk {
    LoopOk {
        rung: if g.below(2) == 0 {
            None
        } else {
            Some(g.below(4) as u8)
        },
        demotion: g.below(3) as u8,
        ii: 1 + g.below(40) as u32,
        min_ii: 1 + g.below(40) as u32,
        optimal: g.below(2) == 0,
        fell_back: g.below(2) == 0,
        spills: g.below(8) as u32,
        search_effort: g.next() >> 20,
        pivots: g.next() >> 20,
        code_fp: g.next(),
        diagnostics: (0..g.below(4))
            .map(|i| format!("rung {i}: accepted [detail {}]", g.below(100)))
            .collect(),
    }
}

fn random_response(g: &mut Gen) -> ResponseBatch {
    let n = 1 + g.below(4) as usize;
    ResponseBatch {
        batch_id: g.next(),
        results: (0..n)
            .map(|i| LoopReply {
                name: format!("loop-{i}"),
                outcome: if g.below(4) == 0 {
                    Err(format!("no schedule within budget ({})", g.below(100)))
                } else {
                    Ok(random_loop_ok(g))
                },
            })
            .collect(),
    }
}

/// Frame + decode through the reader used by real connections.
fn round_trip(msg: &Message) -> Message {
    let frame = encode_message(msg);
    let mut cursor = std::io::Cursor::new(frame);
    read_message(&mut cursor)
        .expect("round trip decode")
        .expect("one message")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_batches_round_trip(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let req = random_request(&mut g);
        let back = round_trip(&Message::Request(req.clone()));
        prop_assert_eq!(back, Message::Request(req));
    }

    #[test]
    fn response_batches_round_trip(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let resp = random_response(&mut g);
        let back = round_trip(&Message::Response(resp.clone()));
        prop_assert_eq!(back, Message::Response(resp));
    }

    #[test]
    fn store_payloads_round_trip(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let ok = random_loop_ok(&mut g);
        let bytes = encode_result(&ok);
        prop_assert_eq!(decode_result(&bytes).expect("decode"), ok);
    }

    /// Fuzz the payload decoder with arbitrary bytes: any outcome is
    /// fine except a panic, and truncating a valid payload anywhere
    /// must produce a structured error, not garbage data.
    #[test]
    fn decoder_never_panics_and_rejects_truncation(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        // Arbitrary garbage bytes.
        let len = g.below(200) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        let _ = decode_payload(&garbage);
        // Every strict prefix of a valid request payload must error.
        let req = random_request(&mut g);
        let frame = encode_message(&Message::Request(req));
        let payload = &frame[8..];
        let cut = g.below(payload.len() as u64) as usize;
        prop_assert!(decode_payload(&payload[..cut]).is_err());
    }

    /// Flipping any single byte of a framed message must never panic
    /// the reader, and must never be silently accepted as a *different*
    /// well-formed message of the same length... unless the flip landed
    /// in a value field, in which case decoding may succeed — so the
    /// only hard property is "no panic, structured result".
    #[test]
    fn bit_flips_never_panic(seed in 0u64..1_000_000) {
        let mut g = Gen(seed);
        let resp = random_response(&mut g);
        let mut frame = encode_message(&Message::Response(resp));
        let pos = g.below(frame.len() as u64) as usize;
        frame[pos] ^= 1 << g.below(8);
        let mut cursor = std::io::Cursor::new(frame);
        let _ = read_message(&mut cursor);
    }
}

#[test]
fn clean_eof_is_none_mid_frame_eof_is_error() {
    let mut empty = std::io::Cursor::new(Vec::<u8>::new());
    assert!(matches!(read_message(&mut empty), Ok(None)));

    let frame = encode_message(&Message::Error("x".into()));
    // Cut inside the header.
    let mut cut = std::io::Cursor::new(frame[..5].to_vec());
    assert!(matches!(
        read_message(&mut cut),
        Err(ProtoError::MidFrameEof { .. })
    ));
    // Cut inside the payload.
    let mut cut = std::io::Cursor::new(frame[..frame.len() - 1].to_vec());
    assert!(matches!(
        read_message(&mut cut),
        Err(ProtoError::MidFrameEof { .. })
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(u32::MAX).to_le_bytes());
    // No payload follows; if the reader tried to allocate 4 GiB this
    // test would fail very differently.
    let mut cursor = std::io::Cursor::new(frame);
    match read_message(&mut cursor) {
        Err(ProtoError::Oversized(n)) => assert!(n > MAX_FRAME),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(b"NOPE");
    frame.extend_from_slice(&4u32.to_le_bytes());
    frame.extend_from_slice(&[0; 4]);
    let mut cursor = std::io::Cursor::new(frame);
    assert!(matches!(
        read_message(&mut cursor),
        Err(ProtoError::BadMagic(_))
    ));
}

#[test]
fn forged_count_cannot_force_a_huge_allocation() {
    // A request payload claiming u32::MAX loops with no bytes behind
    // the claim must fail on the count check, not in the allocator.
    let valid = encode_message(&Message::Request(RequestBatch {
        batch_id: 1,
        client: "c".into(),
        deadline_ms: 0,
        choice: WireChoice::Ladder,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops: vec![],
    }));
    let mut payload = valid[8..].to_vec();
    let len = payload.len();
    // The loop count is the last u32 of this empty-batch payload.
    payload[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_payload(&payload) {
        Err(ProtoError::Malformed(m)) => assert!(m.contains("count"), "{m}"),
        other => panic!("expected Malformed count error, got {other:?}"),
    }
}

#[test]
fn structurally_invalid_loops_are_rejected_by_the_validator() {
    // Encode a valid one-loop request, then corrupt an operand's value
    // id to point past the value table. The decoder's byte-level checks
    // cannot see this; Loop::from_raw_parts must.
    let lp = swp_kernels::random_loop(&swp_kernels::GenParams::default(), 7);
    let req = RequestBatch {
        batch_id: 1,
        client: "c".into(),
        deadline_ms: 0,
        choice: WireChoice::Ladder,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops: vec![lp],
    };
    let frame = encode_message(&Message::Request(req));
    let payload = &frame[8..];
    let mut broke_one = false;
    // Flip high bits of u32s throughout the payload until one decodes
    // to a structural rejection (message mentions the validator's
    // vocabulary rather than a truncation).
    for pos in (30..payload.len().saturating_sub(4)).step_by(7) {
        let mut p = payload.to_vec();
        p[pos] |= 0x80;
        p[pos + 1] |= 0x80;
        match decode_payload(&p) {
            Err(ProtoError::Malformed(_)) => {
                broke_one = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(broke_one, "no corruption produced a Malformed rejection");
}
