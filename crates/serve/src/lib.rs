//! `swp-serve` — the fault-tolerant compile service.
//!
//! A production compiler built around an expensive optimal scheduler
//! (the paper's MOST configuration) wants to pay for each schedule
//! once. This crate turns the workspace's compile pipeline into a
//! long-lived daemon with three defensive layers:
//!
//! 1. **Protocol** ([`proto`]): length-prefixed binary frames over a
//!    Unix socket, with a decoder written for adversarial input. A bad
//!    client gets a structured error; the server never dies for it.
//! 2. **Persistence** ([`store`]): a content-addressed on-disk record
//!    per compile key, written atomically (temp file + rename) and
//!    checksummed on read, so warm state survives restarts and any
//!    corruption is detected, deleted, and silently recompiled.
//! 3. **Admission** ([`admission`]): per-client token buckets and a
//!    global in-flight gate that *demote* overloaded requests down the
//!    degradation ladder instead of rejecting them.
//!
//! [`chaos`] proves the containment story end to end and
//! [`bench`] measures what the layers cost and buy. See DESIGN.md §11.

pub mod admission;
pub mod bench;
pub mod chaos;
pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use admission::{Admission, AdmissionOptions, Permit};
pub use bench::{saturate, shard_compare, PhaseLatency, SaturationReport, ShardCompare};
pub use chaos::{service_chaos, ServiceChaosReport};
pub use client::Client;
pub use proto::{
    decode_payload, encode_message, fnv1a, read_message, write_message, LoopOk, LoopReply, Message,
    ProtoError, RequestBatch, ResponseBatch, WireChoice, MAGIC, MAX_FRAME, VERSION,
};
pub use server::{
    code_fingerprint, quick_ladder_options, quick_most_options, ServeStats, Server, ServerHandle,
    ServerOptions,
};
pub use store::{write_atomic, DiskStore, Lookup, StoreStats};
