//! The compile server: a thread-per-connection Unix-socket daemon
//! layered over the schedule cache and the disk store.
//!
//! Per-loop flow: admit (possibly demoting) → memory cache peek → disk
//! store lookup → compile through [`showdown::ScheduleCache`] (which
//! dedups concurrent identical requests) → persist the reply if it is
//! deterministic. The compile key [`showdown::cache_key_with`] covers
//! the loop, the machine, and *every* option that can change the result
//! — including the demotion level via `start_rung` and any deadline —
//! so a demoted or deadline-truncated compile can never alias a
//! full-effort record on disk or in memory.
//!
//! Fault posture: a client that sends garbage gets a structured error
//! frame and its connection closed; a client that vanishes mid-frame
//! costs its handler thread and nothing else; a persist failure costs
//! the persistence, not the reply. The accept loop and every handler
//! check a shared shutdown flag, so [`ServerHandle::shutdown`] (or
//! dropping the handle) quiesces the whole tree without leaking
//! threads.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use showdown::swp_most::MostOptions;
use showdown::swp_sat::SatOptions;
use showdown::{
    cache_key_with, CacheStats, CompileOptions, CompiledLoop, LadderOptions, PortfolioOptions,
    ScheduleCache, SchedulerChoice, Telemetry,
};
use swp_ir::Loop;
use swp_machine::{Machine, RegClass};

use crate::admission::{Admission, AdmissionOptions};
use crate::proto::{
    self, fnv1a, Enc, LoopOk, LoopReply, Message, ProtoError, RequestBatch, ResponseBatch,
    WireChoice,
};
use crate::store::{DiskStore, Lookup, StoreStats};

/// Deterministic quick-effort MOST budgets: the service's rung-0
/// configuration. No wall-clock limit appears here — a served result
/// must be reproducible on any host, or the disk store could never
/// return it. Per-request deadlines are layered on top (and those
/// results are then transient by the cache's own rules).
pub fn quick_most_options() -> MostOptions {
    MostOptions {
        node_limit: 20_000,
        pivot_limit: 400_000,
        time_limit: None,
        loop_time_limit: None,
        loop_pivot_limit: Some(1_200_000),
        max_ops: 64,
        ..MostOptions::default()
    }
}

/// Deterministic quick-effort SAT budgets, mirroring
/// [`quick_most_options`]: conflict/propagation caps only, no wall
/// clocks, so a served SAT schedule replays bit-identically anywhere.
pub fn quick_sat_options() -> SatOptions {
    SatOptions {
        conflict_limit: 20_000,
        propagation_limit: 2_000_000,
        time_limit: None,
        loop_time_limit: None,
        loop_conflict_limit: Some(60_000),
        max_ops: 64,
        ..SatOptions::default()
    }
}

/// The service's base ladder: quick deterministic budgets, full gate.
pub fn quick_ladder_options() -> LadderOptions {
    LadderOptions {
        most: quick_most_options(),
        sat: quick_sat_options(),
        ..LadderOptions::default()
    }
}

/// The service's portfolio: every backend on quick deterministic
/// budgets, so the fixed-priority race outcome is host-independent.
pub fn quick_portfolio_options() -> PortfolioOptions {
    PortfolioOptions {
        most: quick_most_options(),
        sat: quick_sat_options(),
        ..PortfolioOptions::default()
    }
}

/// Server configuration.
pub struct ServerOptions {
    /// Unix socket path to bind. An existing file at this path is
    /// replaced.
    pub socket: PathBuf,
    /// Root of the persistent store; `None` disables persistence.
    pub store_dir: Option<PathBuf>,
    /// Shard count for the in-memory cache; 0 = default.
    pub cache_shards: usize,
    /// Admission tunables.
    pub admission: AdmissionOptions,
    /// Telemetry collector handler threads install; disabled by default.
    pub telemetry: Telemetry,
    /// Chaos hook: make every persist crash after writing its temp file.
    pub fail_persist_after_tmp: bool,
}

impl ServerOptions {
    /// Defaults with an explicit socket path.
    pub fn at(socket: PathBuf) -> ServerOptions {
        ServerOptions {
            socket,
            store_dir: None,
            cache_shards: 0,
            admission: AdmissionOptions::default(),
            telemetry: Telemetry::disabled(),
            fail_persist_after_tmp: false,
        }
    }
}

/// Point-in-time service counters, for reports and gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Loops admitted.
    pub admitted: u64,
    /// Admissions demoted by load or budget.
    pub demoted: u64,
    /// Arrivals that blocked on the hard in-flight cap.
    pub inflight_waits: u64,
    /// In-memory cache counters.
    pub cache: CacheStats,
    /// Disk store counters (zeroes when persistence is off).
    pub store: StoreStats,
}

struct Shared {
    machine: Machine,
    cache: ScheduleCache,
    store: Option<DiskStore>,
    admission: Admission,
    telemetry: Telemetry,
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down and joins
/// every thread it spawned.
pub struct ServerHandle {
    shared: Arc<Shared>,
    socket: PathBuf,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Current service counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            admitted: self.shared.admission.admitted(),
            demoted: self.shared.admission.demoted(),
            inflight_waits: self.shared.admission.waits(),
            cache: self.shared.cache.stats(),
            store: self
                .shared
                .store
                .as_ref()
                .map(DiskStore::stats)
                .unwrap_or_default(),
        }
    }

    /// Stop accepting, drain handlers, join all threads, remove the
    /// socket file. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.socket);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The server itself — constructors only; the running state lives in
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind the socket and start the accept loop.
    ///
    /// # Errors
    ///
    /// Socket bind or store-open failure. Nothing is spawned on error.
    pub fn start(machine: Machine, opts: ServerOptions) -> std::io::Result<ServerHandle> {
        let store = match &opts.store_dir {
            Some(dir) => {
                let store = DiskStore::open(dir)?;
                store
                    .fail_persist_after_tmp
                    .store(opts.fail_persist_after_tmp, Ordering::Relaxed);
                Some(store)
            }
            None => None,
        };
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)?;
        let shared = Arc::new(Shared {
            machine,
            cache: if opts.cache_shards == 0 {
                ScheduleCache::new()
            } else {
                ScheduleCache::with_shards(opts.cache_shards)
            },
            store,
            admission: Admission::new(opts.admission),
            telemetry: opts.telemetry,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::spawn(move || {
            // Handler threads are tracked so shutdown can join them —
            // "zero hangs" includes the server's own exit path.
            let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let conn_shared = accept_shared.clone();
                let t = std::thread::spawn(move || handle_connection(conn_shared, stream));
                handlers.lock().expect("handler list").push(t);
            }
            for t in handlers.into_inner().expect("handler list") {
                let _ = t.join();
            }
        });
        Ok(ServerHandle {
            shared,
            socket: opts.socket,
            accept: Some(accept),
        })
    }
}

/// Poll interval for the shutdown flag while a handler waits for bytes.
const READ_TICK: Duration = Duration::from_millis(100);

fn handle_connection(shared: Arc<Shared>, mut stream: UnixStream) {
    let _telemetry = shared
        .telemetry
        .is_enabled()
        .then(|| shared.telemetry.install());
    let _ = stream.set_read_timeout(Some(READ_TICK));
    loop {
        let mut header = [0u8; 8];
        match read_full_interruptible(&mut stream, &mut header, &shared.shutdown) {
            ReadOutcome::Complete => {}
            ReadOutcome::CleanEof | ReadOutcome::Shutdown => return,
            ReadOutcome::Error(e) => {
                send_error(&mut stream, &e);
                return;
            }
        }
        // The payload read uses the plain blocking reader: once a header
        // has arrived the client owes the rest of the frame, and the
        // read timeout still bounds each individual wait.
        let payload = match read_payload_interruptible(&mut stream, &header, &shared.shutdown) {
            Ok(p) => p,
            Err(e) => {
                send_error(&mut stream, &e);
                return;
            }
        };
        let msg = match proto::decode_payload(&payload) {
            Ok(m) => m,
            Err(e) => {
                send_error(&mut stream, &e);
                return;
            }
        };
        match msg {
            Message::Request(req) => {
                let resp = process_batch(&shared, &req);
                if proto::write_message(&mut stream, &Message::Response(resp)).is_err() {
                    // Client went away mid-reply; nothing else to do.
                    return;
                }
            }
            // Clients must not send server-only frames.
            Message::Response(_) | Message::Error(_) => {
                send_error(
                    &mut stream,
                    &ProtoError::Malformed("unexpected message kind from client".into()),
                );
                return;
            }
        }
    }
}

fn send_error(stream: &mut UnixStream, e: &ProtoError) {
    // Best effort: the peer may already be gone, and framing may be
    // lost; the connection closes right after.
    let _ = proto::write_message(stream, &Message::Error(e.to_string()));
    let _ = stream.flush();
}

enum ReadOutcome {
    Complete,
    CleanEof,
    Shutdown,
    Error(ProtoError),
}

/// Fill `buf`, treating read timeouts as shutdown-check ticks. Between
/// frames a timeout is idle waiting; inside a frame it just re-arms the
/// same read, so a slow client is fine and a dead one is bounded by the
/// shutdown flag.
fn read_full_interruptible(
    stream: &mut UnixStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> ReadOutcome {
    use std::io::Read;
    let mut got = 0;
    while got < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Shutdown;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Error(ProtoError::MidFrameEof {
                        got,
                        want: buf.len() - got,
                    })
                };
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return ReadOutcome::Error(e.into()),
        }
    }
    ReadOutcome::Complete
}

fn read_payload_interruptible(
    stream: &mut UnixStream,
    header: &[u8; 8],
    shutdown: &AtomicBool,
) -> Result<Vec<u8>, ProtoError> {
    let magic: [u8; 4] = header[..4].try_into().unwrap();
    if magic != proto::MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > proto::MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    match read_full_interruptible(stream, &mut payload, shutdown) {
        ReadOutcome::Complete => Ok(payload),
        ReadOutcome::CleanEof => Err(ProtoError::MidFrameEof { got: 0, want: len }),
        ReadOutcome::Shutdown => Err(ProtoError::Io("server shutting down".into())),
        ReadOutcome::Error(e) => Err(e),
    }
}

fn process_batch(shared: &Shared, req: &RequestBatch) -> ResponseBatch {
    let mut results = Vec::with_capacity(req.loops.len());
    for lp in &req.loops {
        let permit = shared.admission.admit(&req.client);
        let demotion = permit.demotion;
        let outcome = compile_one(shared, lp, req, demotion);
        drop(permit);
        results.push(LoopReply {
            name: lp.name().to_owned(),
            outcome,
        });
    }
    ResponseBatch {
        batch_id: req.batch_id,
        results,
    }
}

fn scheduler_for(req: &RequestBatch, demotion: u32) -> SchedulerChoice {
    let deadline = (req.deadline_ms > 0).then(|| Duration::from_millis(u64::from(req.deadline_ms)));
    match req.choice {
        WireChoice::Ladder => {
            let mut opts = quick_ladder_options().demoted(demotion);
            if let Some(d) = deadline {
                opts.most.loop_time_limit = Some(d);
            }
            SchedulerChoice::LadderWith(Box::new(opts))
        }
        WireChoice::Heuristic => SchedulerChoice::Heuristic,
        WireChoice::Ilp => {
            if demotion >= 2 {
                return SchedulerChoice::Heuristic;
            }
            let mut most = quick_most_options();
            if demotion == 1 {
                most.loop_pivot_limit = Some(100_000);
                most.pivot_limit = most.pivot_limit.min(100_000);
                most.node_limit = most.node_limit.min(2_000);
            }
            if let Some(d) = deadline {
                most.loop_time_limit = Some(d);
            }
            SchedulerChoice::IlpWith(most)
        }
        WireChoice::Sat => {
            if demotion >= 2 {
                return SchedulerChoice::Heuristic;
            }
            let mut sat = quick_sat_options();
            if demotion == 1 {
                sat.loop_conflict_limit = Some(15_000);
                sat.conflict_limit = sat.conflict_limit.min(5_000);
            }
            if let Some(d) = deadline {
                sat.loop_time_limit = Some(d);
            }
            SchedulerChoice::SatWith(sat)
        }
        WireChoice::Portfolio => {
            if demotion >= 2 {
                return SchedulerChoice::Heuristic;
            }
            let mut opts = quick_portfolio_options();
            if demotion == 1 {
                // Shed the optimal racers' effort, keep the heuristic
                // at full strength: the race still ships something.
                opts.most.loop_pivot_limit = Some(100_000);
                opts.most.pivot_limit = opts.most.pivot_limit.min(100_000);
                opts.most.node_limit = opts.most.node_limit.min(2_000);
                opts.sat.loop_conflict_limit = Some(15_000);
                opts.sat.conflict_limit = opts.sat.conflict_limit.min(5_000);
            }
            if let Some(d) = deadline {
                opts.most.loop_time_limit = Some(d);
                opts.sat.loop_time_limit = Some(d);
            }
            SchedulerChoice::PortfolioWith(Box::new(opts))
        }
    }
}

fn compile_one(
    shared: &Shared,
    lp: &Loop,
    req: &RequestBatch,
    demotion: u32,
) -> Result<LoopOk, String> {
    let options = CompileOptions {
        choice: scheduler_for(req, demotion),
        verify: req.verify,
        opt: req.opt,
        telemetry: shared.telemetry.clone(),
    };
    let key = cache_key_with(lp, &shared.machine, &options);
    // Memory first: a ready entry needs no disk touch.
    if let Some(hit) = shared.cache.peek(key) {
        return hit
            .map(|c| loop_ok(&c, demotion))
            .map_err(|e| e.to_string());
    }
    // Then the persistent layer — this is what survives restarts.
    if let Some(store) = &shared.store {
        if let Lookup::Hit(mut ok) = store.load(key) {
            // The demotion level is keyed, so a stored record always
            // matches the level it was compiled at; echo the live one.
            ok.demotion = demotion as u8;
            return Ok(ok);
        }
    }
    let result = shared
        .cache
        .get_or_compile_with(lp, &shared.machine, &options);
    match result {
        Ok(c) => {
            let ok = loop_ok(&c, demotion);
            if let Some(store) = &shared.store {
                // Host-dependent (deadline-truncated) results must never
                // be persisted; the memory cache already refused them
                // too.
                if !c.stats.deadline_hit && !store.contains(key) {
                    let _ = store.persist(key, &ok);
                }
            }
            Ok(ok)
        }
        Err(e) => Err(e.to_string()),
    }
}

fn loop_ok(c: &CompiledLoop, demotion: u32) -> LoopOk {
    LoopOk {
        rung: c.rung.map(|r| r.index() as u8),
        demotion: demotion as u8,
        ii: c.stats.ii,
        min_ii: c.stats.min_ii,
        optimal: c.stats.optimal,
        fell_back: c.stats.fell_back,
        spills: c.stats.spills,
        search_effort: c.stats.search_effort,
        pivots: c.stats.pivots,
        code_fp: code_fingerprint(c),
        diagnostics: c.attempts.iter().map(|a| a.render()).collect(),
    }
}

/// Stable fingerprint of the emitted code: schedule times, all three
/// expanded sections, and register usage, FNV-hashed over a canonical
/// little-endian encoding. Everything hashed is deterministic output of
/// the compiler, so equal fingerprints across a restart certify the
/// disk store returned exactly what a cold compile produces.
pub fn code_fingerprint(c: &CompiledLoop) -> u64 {
    let code = &c.code;
    let mut e = Enc::default();
    e.u32(code.ii());
    e.u32(code.stage_count());
    e.u32(code.unroll());
    for &t in code.schedule().times() {
        e.i64(t);
    }
    for section in [code.prologue(), code.kernel(), code.epilogue()] {
        e.u32(section.len() as u32);
        for op in section {
            e.u32(op.op.0);
            e.i64(op.iteration);
            e.i64(op.cycle);
        }
    }
    for class in RegClass::ALL {
        e.u32(code.regs_used(class));
    }
    e.u32(code.total_regs());
    fnv1a(&e.buf)
}
