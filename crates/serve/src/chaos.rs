//! Service-layer chaos: the PR 4 fault-injection discipline extended to
//! the daemon boundary.
//!
//! Each scenario stands up a real server over a real socket, injects
//! one service-layer fault — a corrupted store record, a crash between
//! temp-write and rename, a client that vanishes mid-frame, adversarial
//! bytes, an overload burst — and checks the containment contract:
//! zero hangs (every client read is deadline-bounded), zero rejections
//! (overload demotes, it never turns a request away), and recovery that
//! is *bit-identical* to a cold compile (fingerprint equality). The
//! `experiments serve-chaos -D` gate denies on any failed scenario.

use std::fs;
use std::path::Path;
use std::time::Duration;

use showdown::{OptLevel, VerifyLevel};
use swp_ir::Loop;
use swp_machine::Machine;

use crate::admission::AdmissionOptions;
use crate::client::Client;
use crate::proto::{LoopOk, Message, RequestBatch, WireChoice, MAGIC};
use crate::server::{Server, ServerHandle, ServerOptions};

/// Outcome of one service chaos scenario.
#[derive(Debug, Clone)]
pub struct ServiceChaosReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Human-readable evidence (counts, fingerprints, error strings).
    pub detail: String,
    /// Whether every invariant held.
    pub passed: bool,
}

/// Upper bound on any single client read in a chaos scenario: long
/// enough for a debug-build compile burst, short enough that a genuine
/// hang fails the scenario instead of wedging the harness.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

fn workload() -> Vec<Loop> {
    swp_kernels::livermore()
        .into_iter()
        .take(3)
        .map(|k| k.body)
        .collect()
}

fn request(batch_id: u64, client: &str, loops: Vec<Loop>) -> RequestBatch {
    RequestBatch {
        batch_id,
        client: client.to_owned(),
        deadline_ms: 0,
        choice: WireChoice::Ladder,
        opt: OptLevel::Off,
        verify: VerifyLevel::Off,
        loops,
    }
}

fn compile_all(
    server: &ServerHandle,
    client_name: &str,
    loops: Vec<Loop>,
) -> Result<Vec<LoopOk>, String> {
    let mut client = Client::connect(server.socket()).map_err(|e| e.to_string())?;
    client
        .set_read_timeout(CLIENT_TIMEOUT)
        .map_err(|e| e.to_string())?;
    let resp = client
        .compile_batch(&request(1, client_name, loops))
        .map_err(|e| e.to_string())?;
    resp.results
        .into_iter()
        .map(|r| r.outcome.map_err(|e| format!("{}: {e}", r.name)))
        .collect()
}

fn start(
    machine: &Machine,
    root: &Path,
    name: &str,
    opts_fn: impl FnOnce(&mut ServerOptions),
) -> std::io::Result<ServerHandle> {
    let mut opts = ServerOptions::at(socket_path(name));
    opts.store_dir = Some(root.join(name).join("store"));
    opts_fn(&mut opts);
    Server::start(machine.clone(), opts)
}

/// A short, unique socket path. Unix socket paths are length-capped
/// (~108 bytes), so these live in the system temp dir rather than under
/// the (possibly deep) scenario root.
fn socket_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("swp-{}-{name}.sock", std::process::id()))
}

/// Run every service chaos scenario under `root` (created if needed).
pub fn service_chaos(machine: &Machine, root: &Path) -> Vec<ServiceChaosReport> {
    let _ = fs::create_dir_all(root);
    vec![
        corrupt_store_entry(machine, root),
        crash_mid_persist(machine, root),
        client_disconnect_mid_batch(machine, root),
        adversarial_frames(machine, root),
        overload_burst(machine, root),
    ]
}

fn report(scenario: &'static str, result: Result<String, String>) -> ServiceChaosReport {
    match result {
        Ok(detail) => ServiceChaosReport {
            scenario,
            detail,
            passed: true,
        },
        Err(detail) => ServiceChaosReport {
            scenario,
            detail,
            passed: false,
        },
    }
}

/// A record on disk is bit-flipped between restarts. The restarted
/// server must detect it, recompile, answer bit-identically, and count
/// the recovery.
fn corrupt_store_entry(machine: &Machine, root: &Path) -> ServiceChaosReport {
    report(
        "corrupt-store-entry",
        (|| {
            let server = start(machine, root, "corrupt", |_| {}).map_err(|e| e.to_string())?;
            let first = compile_all(&server, "chaos", workload())?;
            let store_dir = root.join("corrupt").join("store");
            drop(server);
            let mut flipped = 0;
            for entry in fs::read_dir(&store_dir).map_err(|e| e.to_string())? {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.extension().is_some_and(|x| x == "rec") {
                    let mut bytes = fs::read(&path).map_err(|e| e.to_string())?;
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                    fs::write(&path, &bytes).map_err(|e| e.to_string())?;
                    flipped += 1;
                }
            }
            if flipped == 0 {
                return Err("no records were persisted to corrupt".into());
            }
            let server = start(machine, root, "corrupt", |_| {}).map_err(|e| e.to_string())?;
            let second = compile_all(&server, "chaos", workload())?;
            let stats = server.stats();
            if first != second {
                return Err(format!(
                    "recovered results differ from the originals: {first:?} vs {second:?}"
                ));
            }
            if stats.store.corrupt_recovered == 0 {
                return Err("no corrupt-entry recovery was counted".into());
            }
            Ok(format!(
                "{flipped} records corrupted, {} recoveries, fingerprints identical",
                stats.store.corrupt_recovered
            ))
        })(),
    )
}

/// The server "crashes" between writing a record's temp file and
/// renaming it into place. Replies must still be served, no half-record
/// may appear under a final name, and the restarted store sweeps the
/// debris and persists normally.
fn crash_mid_persist(machine: &Machine, root: &Path) -> ServiceChaosReport {
    report(
        "crash-mid-persist",
        (|| {
            let server = start(machine, root, "crash", |o| {
                o.fail_persist_after_tmp = true;
            })
            .map_err(|e| e.to_string())?;
            let first = compile_all(&server, "chaos", workload())?;
            drop(server);
            let store_dir = root.join("crash").join("store");
            let (mut recs, mut tmps) = (0, 0);
            for entry in fs::read_dir(&store_dir).map_err(|e| e.to_string())? {
                let name = entry.map_err(|e| e.to_string())?.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".rec") {
                    recs += 1;
                } else if name.ends_with(".tmp") {
                    tmps += 1;
                }
            }
            if recs != 0 {
                return Err(format!("{recs} records appeared despite the crash"));
            }
            if tmps == 0 {
                return Err("no temp files were left by the simulated crash".into());
            }
            let server = start(machine, root, "crash", |_| {}).map_err(|e| e.to_string())?;
            let second = compile_all(&server, "chaos", workload())?;
            let stats = server.stats();
            let swept = !fs::read_dir(&store_dir)
                .map_err(|e| e.to_string())?
                .filter_map(Result::ok)
                .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
            if !swept {
                return Err("restart did not sweep the crashed temp files".into());
            }
            if first != second {
                return Err("post-restart results differ from pre-crash replies".into());
            }
            if stats.store.persisted == 0 {
                return Err("restarted server persisted nothing".into());
            }
            Ok(format!(
                "{tmps} temp files swept on restart, {} records persisted, replies identical",
                stats.store.persisted
            ))
        })(),
    )
}

/// A client dies after sending half a frame. The handler must fold
/// without taking anything down, and the next client must be served.
fn client_disconnect_mid_batch(machine: &Machine, root: &Path) -> ServiceChaosReport {
    report(
        "client-disconnect-mid-batch",
        (|| {
            let server = start(machine, root, "disconnect", |_| {}).map_err(|e| e.to_string())?;
            {
                let mut doomed = Client::connect(server.socket()).map_err(|e| e.to_string())?;
                let mut partial = Vec::new();
                partial.extend_from_slice(&MAGIC);
                partial.extend_from_slice(&100u32.to_le_bytes());
                partial.extend_from_slice(&[0u8; 10]);
                doomed.send_raw(&partial).map_err(|e| e.to_string())?;
                // Dropped here: the server sees EOF 90 bytes short.
            }
            let results = compile_all(&server, "survivor", workload())?;
            Ok(format!(
                "server survived a mid-frame disconnect and answered {} loops afterward",
                results.len()
            ))
        })(),
    )
}

/// Garbage magic, an oversized length prefix, and a truncated header —
/// each must come back as a structured error frame (or a clean close),
/// and the server must keep serving.
fn adversarial_frames(machine: &Machine, root: &Path) -> ServiceChaosReport {
    report(
        "adversarial-frames",
        (|| {
            let server = start(machine, root, "garbage", |_| {}).map_err(|e| e.to_string())?;
            let mut detail = Vec::new();
            {
                let mut c = Client::connect(server.socket()).map_err(|e| e.to_string())?;
                c.set_read_timeout(CLIENT_TIMEOUT)
                    .map_err(|e| e.to_string())?;
                c.send_raw(b"XXXXtrash-not-a-frame")
                    .map_err(|e| e.to_string())?;
                match c.read_message().map_err(|e| e.to_string())? {
                    Some(Message::Error(msg)) if msg.contains("magic") => {
                        detail.push(format!("bad magic -> {msg:?}"));
                    }
                    other => return Err(format!("bad magic got {other:?}")),
                }
            }
            {
                let mut c = Client::connect(server.socket()).map_err(|e| e.to_string())?;
                c.set_read_timeout(CLIENT_TIMEOUT)
                    .map_err(|e| e.to_string())?;
                let mut frame = Vec::new();
                frame.extend_from_slice(&MAGIC);
                frame.extend_from_slice(&u32::MAX.to_le_bytes());
                c.send_raw(&frame).map_err(|e| e.to_string())?;
                match c.read_message().map_err(|e| e.to_string())? {
                    Some(Message::Error(msg)) if msg.contains("cap") => {
                        detail.push(format!("oversized -> {msg:?}"));
                    }
                    other => return Err(format!("oversized got {other:?}")),
                }
            }
            let results = compile_all(&server, "survivor", workload())?;
            detail.push(format!("then served {} loops", results.len()));
            Ok(detail.join("; "))
        })(),
    )
}

/// Many clients at once against a tiny in-flight budget. The contract
/// under overload is *degrade, don't reject*: every loop gets an
/// answer, and the pressure shows up as demotions, not errors.
fn overload_burst(machine: &Machine, root: &Path) -> ServiceChaosReport {
    report(
        "overload-burst",
        (|| {
            let server = start(machine, root, "overload", |o| {
                o.admission = AdmissionOptions {
                    max_inflight: 2,
                    soft_inflight: 1,
                    heavy_inflight: 2,
                    ..AdmissionOptions::default()
                };
            })
            .map_err(|e| e.to_string())?;
            let clients = 6;
            let mut answered = 0usize;
            std::thread::scope(|scope| -> Result<(), String> {
                let mut joins = Vec::new();
                for i in 0..clients {
                    let server = &server;
                    joins.push(
                        scope.spawn(move || compile_all(server, &format!("burst-{i}"), workload())),
                    );
                }
                for j in joins {
                    let results = j
                        .join()
                        .map_err(|_| "client thread panicked".to_string())??;
                    answered += results.len();
                }
                Ok(())
            })?;
            let stats = server.stats();
            let expected = clients * workload().len();
            if answered != expected {
                return Err(format!("{answered}/{expected} loops answered"));
            }
            if stats.demoted == 0 {
                return Err("overload produced no demotions".into());
            }
            Ok(format!(
            "{answered}/{expected} loops answered, {} demotions, {} hard-cap waits, 0 rejections",
            stats.demoted, stats.inflight_waits
        ))
        })(),
    )
}
