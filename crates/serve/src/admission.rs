//! Admission control: per-client effort budgets plus a global in-flight
//! gate, both of which *demote* rather than reject.
//!
//! The design rides the degradation ladder from PR 4: an overloaded or
//! over-budget request is not turned away, it is compiled starting at a
//! cheaper rung ([`showdown::LadderOptions::demoted`]). Every request
//! therefore gets an answer, and the only thing load can cost a client
//! is schedule quality — the service-boundary extension of the ladder's
//! totality guarantee.
//!
//! Everything here is deliberately free of wall-clock state. The token
//! bucket refills per *completed request*, not per second, so the same
//! request sequence against the same server produces the same demotion
//! decisions on any host — which keeps demoted compiles cacheable under
//! their demotion-aware keys.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Tunables for the admission layer.
#[derive(Debug, Clone)]
pub struct AdmissionOptions {
    /// Hard cap on concurrently compiling requests. Arrivals beyond it
    /// *block* (they do not fail); the wait is counted on
    /// `serve.inflight`.
    pub max_inflight: usize,
    /// In-flight count at which new arrivals are demoted one level.
    pub soft_inflight: usize,
    /// In-flight count at which new arrivals are demoted two levels.
    pub heavy_inflight: usize,
    /// Starting (and maximum) token balance per client.
    pub bucket_capacity: u64,
    /// Tokens refunded to a client when one of its requests completes.
    pub refill_per_completion: u64,
    /// Token cost of a full-effort (undemoted) compile.
    pub full_cost: u64,
    /// Token cost of a demoted compile.
    pub demoted_cost: u64,
}

impl Default for AdmissionOptions {
    fn default() -> AdmissionOptions {
        AdmissionOptions {
            max_inflight: 32,
            soft_inflight: 16,
            heavy_inflight: 24,
            bucket_capacity: 64,
            refill_per_completion: 2,
            full_cost: 4,
            demoted_cost: 1,
        }
    }
}

struct AdmState {
    inflight: usize,
    buckets: HashMap<String, u64>,
}

/// The admission gate. One per server; shared by all handler threads.
pub struct Admission {
    opts: AdmissionOptions,
    state: Mutex<AdmState>,
    released: Condvar,
    admitted: AtomicU64,
    demoted: AtomicU64,
    waits: AtomicU64,
}

impl Admission {
    /// A gate with the given tunables.
    pub fn new(opts: AdmissionOptions) -> Admission {
        Admission {
            opts,
            state: Mutex::new(AdmState {
                inflight: 0,
                buckets: HashMap::new(),
            }),
            released: Condvar::new(),
            admitted: AtomicU64::new(0),
            demoted: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// Admit one compile for `client`, blocking while the hard in-flight
    /// cap is reached. Returns a permit whose [`Permit::demotion`] is the
    /// ladder level the request must be compiled at; dropping the permit
    /// releases the in-flight slot and refunds the client's bucket.
    pub fn admit(&self, client: &str) -> Permit<'_> {
        let mut state = self.state.lock().expect("admission lock");
        while state.inflight >= self.opts.max_inflight {
            self.waits.fetch_add(1, Ordering::Relaxed);
            swp_obs::count(swp_obs::Counter::ServeInflightWaits, 1);
            state = self.released.wait(state).expect("admission lock");
        }
        let load_level = if state.inflight >= self.opts.heavy_inflight {
            2
        } else if state.inflight >= self.opts.soft_inflight {
            1
        } else {
            0
        };
        let balance = state
            .buckets
            .entry(client.to_owned())
            .or_insert(self.opts.bucket_capacity);
        let budget_level = if *balance >= self.opts.full_cost {
            0
        } else if *balance >= self.opts.demoted_cost {
            1
        } else {
            2
        };
        let demotion: u32 = load_level.max(budget_level);
        let cost = if demotion == 0 {
            self.opts.full_cost
        } else {
            self.opts.demoted_cost
        };
        *balance = balance.saturating_sub(cost);
        state.inflight += 1;
        drop(state);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        swp_obs::count(swp_obs::Counter::ServeAdmitted, 1);
        if demotion > 0 {
            self.demoted.fetch_add(1, Ordering::Relaxed);
            swp_obs::count(swp_obs::Counter::ServeDemotedByLoad, 1);
        }
        Permit {
            gate: self,
            client: client.to_owned(),
            demotion,
        }
    }

    /// Total admissions so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Admissions that were demoted (by load or by budget).
    pub fn demoted(&self) -> u64 {
        self.demoted.load(Ordering::Relaxed)
    }

    /// Times an arrival blocked on the hard cap.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Current in-flight count (racy snapshot, for reports).
    pub fn inflight(&self) -> usize {
        self.state.lock().expect("admission lock").inflight
    }
}

/// An admitted compile. Holds the in-flight slot until dropped.
pub struct Permit<'a> {
    gate: &'a Admission,
    client: String,
    /// Ladder demotion level this request was admitted at (0 = full
    /// effort).
    pub demotion: u32,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission lock");
        state.inflight -= 1;
        let cap = self.gate.opts.bucket_capacity;
        let refill = self.gate.opts.refill_per_completion;
        if let Some(balance) = state.buckets.get_mut(&self.client) {
            *balance = (*balance + refill).min(cap);
        }
        drop(state);
        self.gate.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_effort_until_bucket_drains_then_demoted() {
        let opts = AdmissionOptions {
            bucket_capacity: 8,
            full_cost: 4,
            demoted_cost: 1,
            refill_per_completion: 0,
            ..AdmissionOptions::default()
        };
        let gate = Admission::new(opts);
        // 8 tokens / 4 per full compile = two full-effort admissions.
        for _ in 0..2 {
            assert_eq!(gate.admit("c").demotion, 0);
        }
        // Balance 0: straight to level 2.
        assert_eq!(gate.admit("c").demotion, 2);
        // A different client has its own bucket.
        assert_eq!(gate.admit("other").demotion, 0);
    }

    #[test]
    fn completions_refund_the_bucket() {
        let opts = AdmissionOptions {
            bucket_capacity: 4,
            full_cost: 4,
            demoted_cost: 1,
            refill_per_completion: 4,
            ..AdmissionOptions::default()
        };
        let gate = Admission::new(opts);
        for _ in 0..5 {
            // Each permit drains the bucket and its completion refills
            // it, so every request runs at full effort.
            assert_eq!(gate.admit("c").demotion, 0);
        }
        assert_eq!(gate.demoted(), 0);
    }

    #[test]
    fn load_demotes_before_the_hard_cap_blocks() {
        let opts = AdmissionOptions {
            max_inflight: 4,
            soft_inflight: 1,
            heavy_inflight: 3,
            ..AdmissionOptions::default()
        };
        let gate = Admission::new(opts);
        let p0 = gate.admit("c");
        assert_eq!(p0.demotion, 0);
        let p1 = gate.admit("c");
        assert_eq!(p1.demotion, 1);
        let p2 = gate.admit("c");
        assert_eq!(p2.demotion, 1);
        let p3 = gate.admit("c");
        assert_eq!(p3.demotion, 2);
        drop((p0, p1, p2, p3));
        // All slots released: back to full effort.
        assert_eq!(gate.admit("c").demotion, 0);
        assert_eq!(gate.waits(), 0);
    }

    #[test]
    fn hard_cap_blocks_and_wakes() {
        let opts = AdmissionOptions {
            max_inflight: 1,
            soft_inflight: 10,
            heavy_inflight: 10,
            ..AdmissionOptions::default()
        };
        let gate = std::sync::Arc::new(Admission::new(opts));
        let held = gate.admit("a");
        let g2 = gate.clone();
        let waiter = std::thread::spawn(move || {
            let p = g2.admit("b");
            drop(p);
        });
        // Give the waiter time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(held);
        waiter.join().expect("waiter");
        assert!(gate.waits() >= 1);
        assert_eq!(gate.inflight(), 0);
    }
}
