//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every frame is `[magic "SWPC"][u32 LE payload length][payload]`; the
//! payload starts with a message kind and a protocol version. Encoding is
//! hand-rolled (no serde in this workspace) and the decoder is written
//! for *adversarial* input: every length is bounds-checked against the
//! bytes actually present before anything is allocated, strings are
//! size-capped, enums reject out-of-range tags, and decoded loops pass
//! through [`Loop::from_raw_parts`] so a hostile client cannot construct
//! a structurally invalid body. A malformed frame yields a structured
//! [`ProtoError`] — never a panic — because the server's contract is
//! that a bad client must not take the service down.
//!
//! Volatile fields (nanosecond timings, thread counts) are deliberately
//! *absent* from [`LoopOk`]: a reply served from the disk store must be
//! bit-identical to the reply a cold compile would have produced, and
//! any host-dependent field would break that equation.

use std::fmt;
use std::io::{Read, Write};

use showdown::{OptLevel, VerifyLevel};
use swp_ir::{ArrayId, ArrayInfo, Loop, MemAccess, Op, OpId, Operand, Sem, ValueId, ValueInfo};
use swp_machine::{OpClass, RegClass};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SWPC";

/// Protocol version carried in every payload.
pub const VERSION: u8 = 1;

/// Hard ceiling on a frame's payload size. A length prefix above this is
/// rejected *before* any allocation — the memory-bomb guard.
pub const MAX_FRAME: usize = 8 << 20;

/// Hard ceiling on any single string on the wire.
pub const MAX_STR: usize = 4096;

/// 64-bit FNV-1a, the workspace's stable hash. Used for store checksums
/// and code fingerprints; must never change across versions that share a
/// store directory (the record format version covers evolution).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a frame or payload failed to decode. Every variant is a protocol
/// outcome, not a crash: the server reports it and keeps serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Underlying transport error.
    Io(String),
    /// The stream ended inside a frame (header or payload cut short).
    /// Clean EOF *between* frames is not an error — `read_message`
    /// returns `Ok(None)` for that.
    MidFrameEof {
        /// Bytes obtained before the stream ended.
        got: usize,
        /// Bytes the frame still owed.
        want: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// The payload ended before a field it promised.
    Truncated(&'static str),
    /// A field decoded but made no sense (bad enum tag, string cap,
    /// loop-structure violation, …).
    Malformed(String),
    /// Bytes remained after the last field of the payload.
    TrailingBytes(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(m) => write!(f, "io error: {m}"),
            ProtoError::MidFrameEof { got, want } => {
                write!(
                    f,
                    "stream ended mid-frame ({got} bytes read, {want} more owed)"
                )
            }
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadKind(k) => write!(f, "unknown message kind {k}"),
            ProtoError::Truncated(what) => write!(f, "payload truncated at {what}"),
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e.to_string())
    }
}

/// Scheduler the client asks for. The ladder is the service default; the
/// direct choices exist for experiments that bypass degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireChoice {
    /// The full degradation ladder (ILP → SAT → heuristic → escalated →
    /// sequential), subject to admission-control demotion.
    Ladder,
    /// The heuristic pipeliner only.
    Heuristic,
    /// The ILP scheduler with quick budgets (demotable under load).
    Ilp,
    /// The CDCL SAT scheduler with quick budgets (demotable under load).
    Sat,
    /// Race ILP, SAT, and the heuristic; fixed-priority winner. The
    /// race outcome is deterministic, so results are cacheable.
    Portfolio,
}

impl WireChoice {
    // Wire encoding is the position in this array; new choices must be
    // appended so existing clients' indices stay stable.
    const ALL: [WireChoice; 5] = [
        WireChoice::Ladder,
        WireChoice::Heuristic,
        WireChoice::Ilp,
        WireChoice::Sat,
        WireChoice::Portfolio,
    ];
}

/// A batch of loops one client submits in a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestBatch {
    /// Client-chosen id, echoed in the response.
    pub batch_id: u64,
    /// Client name; the admission token bucket is keyed by it.
    pub client: String,
    /// Per-loop wall-clock deadline in milliseconds; 0 = none. Deadline
    /// results are never memoized or persisted (they are host-dependent).
    pub deadline_ms: u32,
    /// Which scheduler to run.
    pub choice: WireChoice,
    /// Mid-end optimization level.
    pub opt: OptLevel,
    /// Audit level of the compile.
    pub verify: VerifyLevel,
    /// The loop bodies to compile.
    pub loops: Vec<Loop>,
}

/// A successful per-loop compile result. See the module docs for why no
/// timing field appears here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopOk {
    /// Degradation-ladder rung that produced the code; `None` for direct
    /// (non-ladder) compiles.
    pub rung: Option<u8>,
    /// Admission demotion level the request was compiled under.
    pub demotion: u8,
    /// Achieved initiation interval.
    pub ii: u32,
    /// MinII bound of the body.
    pub min_ii: u32,
    /// Whether rate-optimality at MinII was certified.
    pub optimal: bool,
    /// Whether the ILP path fell back to the heuristic.
    pub fell_back: bool,
    /// Values spilled.
    pub spills: u32,
    /// Branch-and-bound nodes (ILP) or backtracks (heuristic).
    pub search_effort: u64,
    /// Simplex pivots across all solves.
    pub pivots: u64,
    /// Stable fingerprint of the emitted code (schedule, kernel,
    /// prologue/epilogue, register usage). Two replies with equal
    /// fingerprints denote bit-identical code — the kill-and-restart
    /// test's equality witness.
    pub code_fp: u64,
    /// The ladder's attempt trace, one rendered line per rung.
    pub diagnostics: Vec<String>,
}

/// One loop's outcome inside a response batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReply {
    /// Loop name, echoed from the request.
    pub name: String,
    /// The compile outcome; `Err` carries the rendered [`showdown::CompileError`].
    pub outcome: Result<LoopOk, String>,
}

/// The server's answer to a [`RequestBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseBatch {
    /// Echo of the request's batch id.
    pub batch_id: u64,
    /// One reply per requested loop, in request order.
    pub results: Vec<LoopReply>,
}

/// Any frame either peer can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server.
    Request(RequestBatch),
    /// Server → client.
    Response(ResponseBatch),
    /// Server → client: the previous frame could not be decoded. The
    /// server closes the connection after sending this (framing may be
    /// lost), but the *server* stays up.
    Error(String),
}

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

// ---------------------------------------------------------------------------
// Encoding

/// Little-endian byte sink for payloads.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= MAX_STR);
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a payload.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn bool(&mut self, what: &'static str) -> Result<bool, ProtoError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtoError::Malformed(format!("bad bool {v} in {what}"))),
        }
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self, what: &'static str) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A count of items each at least `min_item_bytes` long. Checking the
    /// count against the bytes actually present makes a forged
    /// billion-element prefix fail *before* `Vec::with_capacity`.
    pub(crate) fn count(
        &mut self,
        min_item_bytes: usize,
        what: &'static str,
    ) -> Result<usize, ProtoError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(ProtoError::Malformed(format!(
                "count {n} in {what} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let n = self.u32(what)? as usize;
        if n > MAX_STR {
            return Err(ProtoError::Malformed(format!(
                "string of {n} bytes in {what} exceeds the {MAX_STR}-byte cap"
            )));
        }
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed(format!("non-UTF-8 string in {what}")))
    }

    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(self.remaining()))
        }
    }
}

fn enc_opt_u32(e: &mut Enc, v: Option<u32>) {
    match v {
        None => e.u8(0),
        Some(x) => {
            e.u8(1);
            e.u32(x);
        }
    }
}

fn dec_opt_u32(d: &mut Dec, what: &'static str) -> Result<Option<u32>, ProtoError> {
    match d.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(d.u32(what)?)),
        v => Err(ProtoError::Malformed(format!(
            "bad option tag {v} in {what}"
        ))),
    }
}

fn enc_loop(e: &mut Enc, lp: &Loop) {
    e.str(lp.name());
    e.u32(lp.ops().len() as u32);
    for op in lp.ops() {
        let class = OpClass::ALL.iter().position(|c| *c == op.class).unwrap();
        let sem = SEM_ALL.iter().position(|s| *s == op.sem).unwrap();
        e.u8(class as u8);
        e.u8(sem as u8);
        enc_opt_u32(e, op.result.map(|v| v.0));
        e.u32(op.operands.len() as u32);
        for operand in &op.operands {
            e.u32(operand.value.0);
            e.u32(operand.distance);
        }
        match op.mem {
            None => e.u8(0),
            Some(m) => {
                e.u8(1);
                e.u32(m.array.0);
                e.i64(m.offset);
                e.i64(m.stride);
                e.bool(m.indirect);
            }
        }
    }
    e.u32(lp.values().len() as u32);
    for v in lp.values() {
        let class = RegClass::ALL.iter().position(|c| *c == v.class).unwrap();
        e.u8(class as u8);
        enc_opt_u32(e, v.def.map(|d| d.0));
        e.str(&v.name);
        match v.literal {
            None => e.u8(0),
            Some(bits) => {
                e.u8(1);
                e.u64(bits);
            }
        }
    }
    e.u32(lp.arrays().len() as u32);
    for a in lp.arrays() {
        e.str(&a.name);
        e.u32(a.elem_bytes);
        e.u64(a.base_align);
    }
}

/// `Sem` variants in wire order. Appending is fine; reordering is a
/// protocol version bump.
const SEM_ALL: [Sem; 11] = [
    Sem::Add,
    Sem::Sub,
    Sem::Mul,
    Sem::Div,
    Sem::Sqrt,
    Sem::Madd,
    Sem::Lt,
    Sem::Select,
    Sem::Copy,
    Sem::Load,
    Sem::Store,
];

fn dec_loop(d: &mut Dec) -> Result<Loop, ProtoError> {
    let name = d.str("loop.name")?;
    let n_ops = d.count(8, "loop.ops")?;
    let mut ops = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        let class_idx = d.u8("op.class")? as usize;
        let class = *OpClass::ALL
            .get(class_idx)
            .ok_or_else(|| ProtoError::Malformed(format!("bad op class {class_idx}")))?;
        let sem_idx = d.u8("op.sem")? as usize;
        let sem = *SEM_ALL
            .get(sem_idx)
            .ok_or_else(|| ProtoError::Malformed(format!("bad op sem {sem_idx}")))?;
        let result = dec_opt_u32(d, "op.result")?.map(ValueId);
        let n_operands = d.count(8, "op.operands")?;
        let mut operands = Vec::with_capacity(n_operands);
        for _ in 0..n_operands {
            let value = ValueId(d.u32("operand.value")?);
            let distance = d.u32("operand.distance")?;
            operands.push(Operand { value, distance });
        }
        let mem = match d.u8("op.mem")? {
            0 => None,
            1 => Some(MemAccess {
                array: ArrayId(d.u32("mem.array")?),
                offset: d.i64("mem.offset")?,
                stride: d.i64("mem.stride")?,
                indirect: d.bool("mem.indirect")?,
            }),
            v => return Err(ProtoError::Malformed(format!("bad mem tag {v}"))),
        };
        ops.push(Op {
            id: OpId(i as u32),
            class,
            sem,
            result,
            operands,
            mem,
        });
    }
    let n_values = d.count(7, "loop.values")?;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let class_idx = d.u8("value.class")? as usize;
        let class = *RegClass::ALL
            .get(class_idx)
            .ok_or_else(|| ProtoError::Malformed(format!("bad reg class {class_idx}")))?;
        let def = dec_opt_u32(d, "value.def")?.map(OpId);
        let name = d.str("value.name")?;
        let literal = match d.u8("value.literal")? {
            0 => None,
            1 => Some(d.u64("value.literal")?),
            v => return Err(ProtoError::Malformed(format!("bad literal tag {v}"))),
        };
        values.push(ValueInfo {
            class,
            def,
            name,
            literal,
        });
    }
    let n_arrays = d.count(16, "loop.arrays")?;
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let name = d.str("array.name")?;
        let elem_bytes = d.u32("array.elem_bytes")?;
        let base_align = d.u64("array.base_align")?;
        arrays.push(ArrayInfo {
            name,
            elem_bytes,
            base_align,
        });
    }
    Loop::from_raw_parts(name, ops, values, arrays).map_err(ProtoError::Malformed)
}

pub(crate) fn enc_loop_ok(e: &mut Enc, ok: &LoopOk) {
    enc_opt_u32(e, ok.rung.map(u32::from));
    e.u8(ok.demotion);
    e.u32(ok.ii);
    e.u32(ok.min_ii);
    e.bool(ok.optimal);
    e.bool(ok.fell_back);
    e.u32(ok.spills);
    e.u64(ok.search_effort);
    e.u64(ok.pivots);
    e.u64(ok.code_fp);
    e.u32(ok.diagnostics.len() as u32);
    for line in &ok.diagnostics {
        e.str(line);
    }
}

pub(crate) fn dec_loop_ok(d: &mut Dec) -> Result<LoopOk, ProtoError> {
    let rung = match dec_opt_u32(d, "ok.rung")? {
        None => None,
        Some(r) if r <= u8::MAX as u32 => Some(r as u8),
        Some(r) => return Err(ProtoError::Malformed(format!("bad rung {r}"))),
    };
    let demotion = d.u8("ok.demotion")?;
    let ii = d.u32("ok.ii")?;
    let min_ii = d.u32("ok.min_ii")?;
    let optimal = d.bool("ok.optimal")?;
    let fell_back = d.bool("ok.fell_back")?;
    let spills = d.u32("ok.spills")?;
    let search_effort = d.u64("ok.search_effort")?;
    let pivots = d.u64("ok.pivots")?;
    let code_fp = d.u64("ok.code_fp")?;
    let n = d.count(4, "ok.diagnostics")?;
    let mut diagnostics = Vec::with_capacity(n);
    for _ in 0..n {
        diagnostics.push(d.str("ok.diagnostic")?);
    }
    Ok(LoopOk {
        rung,
        demotion,
        ii,
        min_ii,
        optimal,
        fell_back,
        spills,
        search_effort,
        pivots,
        code_fp,
        diagnostics,
    })
}

/// Encode a [`LoopOk`] standalone — the disk store's record payload.
pub fn encode_result(ok: &LoopOk) -> Vec<u8> {
    let mut e = Enc::default();
    enc_loop_ok(&mut e, ok);
    e.buf
}

/// Decode a standalone [`LoopOk`] — the disk store's record payload.
///
/// # Errors
///
/// Structured [`ProtoError`] on any malformation; the store maps every
/// such error to "corrupt entry, recompile".
pub fn decode_result(bytes: &[u8]) -> Result<LoopOk, ProtoError> {
    let mut d = Dec::new(bytes);
    let ok = dec_loop_ok(&mut d)?;
    d.finish()?;
    Ok(ok)
}

fn level3(tag: u8) -> Result<u8, ProtoError> {
    if tag <= 2 {
        Ok(tag)
    } else {
        Err(ProtoError::Malformed(format!("bad level tag {tag}")))
    }
}

/// Serialize a message into a complete frame (header included).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut e = Enc::default();
    match msg {
        Message::Request(req) => {
            e.u8(KIND_REQUEST);
            e.u8(VERSION);
            e.u64(req.batch_id);
            e.str(&req.client);
            e.u32(req.deadline_ms);
            e.u8(WireChoice::ALL
                .iter()
                .position(|c| *c == req.choice)
                .unwrap() as u8);
            e.u8(match req.opt {
                OptLevel::Off => 0,
                OptLevel::Basic => 1,
                OptLevel::Full => 2,
            });
            e.u8(match req.verify {
                VerifyLevel::Off => 0,
                VerifyLevel::Schedule => 1,
                VerifyLevel::Full => 2,
            });
            e.u32(req.loops.len() as u32);
            for lp in &req.loops {
                enc_loop(&mut e, lp);
            }
        }
        Message::Response(resp) => {
            e.u8(KIND_RESPONSE);
            e.u8(VERSION);
            e.u64(resp.batch_id);
            e.u32(resp.results.len() as u32);
            for r in &resp.results {
                e.str(&r.name);
                match &r.outcome {
                    Ok(ok) => {
                        e.u8(0);
                        enc_loop_ok(&mut e, ok);
                    }
                    Err(msg) => {
                        e.u8(1);
                        e.str(msg);
                    }
                }
            }
        }
        Message::Error(msg) => {
            e.u8(KIND_ERROR);
            e.u8(VERSION);
            e.str(msg);
        }
    }
    let mut frame = Vec::with_capacity(8 + e.buf.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(e.buf.len() as u32).to_le_bytes());
    frame.extend_from_slice(&e.buf);
    frame
}

/// Decode one payload (the bytes after the frame header).
///
/// # Errors
///
/// Structured [`ProtoError`]; never panics on any byte sequence.
pub fn decode_payload(payload: &[u8]) -> Result<Message, ProtoError> {
    let mut d = Dec::new(payload);
    let kind = d.u8("kind")?;
    let version = d.u8("version")?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let msg = match kind {
        KIND_REQUEST => {
            let batch_id = d.u64("req.batch_id")?;
            let client = d.str("req.client")?;
            let deadline_ms = d.u32("req.deadline_ms")?;
            let choice = *WireChoice::ALL
                .get(d.u8("req.choice")? as usize)
                .ok_or_else(|| ProtoError::Malformed("bad scheduler choice".into()))?;
            let opt = match level3(d.u8("req.opt")?)? {
                0 => OptLevel::Off,
                1 => OptLevel::Basic,
                _ => OptLevel::Full,
            };
            let verify = match level3(d.u8("req.verify")?)? {
                0 => VerifyLevel::Off,
                1 => VerifyLevel::Schedule,
                _ => VerifyLevel::Full,
            };
            let n = d.count(4, "req.loops")?;
            let mut loops = Vec::with_capacity(n);
            for _ in 0..n {
                loops.push(dec_loop(&mut d)?);
            }
            Message::Request(RequestBatch {
                batch_id,
                client,
                deadline_ms,
                choice,
                opt,
                verify,
                loops,
            })
        }
        KIND_RESPONSE => {
            let batch_id = d.u64("resp.batch_id")?;
            let n = d.count(5, "resp.results")?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str("reply.name")?;
                let outcome = match d.u8("reply.status")? {
                    0 => Ok(dec_loop_ok(&mut d)?),
                    1 => Err(d.str("reply.error")?),
                    v => {
                        return Err(ProtoError::Malformed(format!("bad reply status {v}")));
                    }
                };
                results.push(LoopReply { name, outcome });
            }
            Message::Response(ResponseBatch { batch_id, results })
        }
        KIND_ERROR => Message::Error(d.str("error.message")?),
        k => return Err(ProtoError::BadKind(k)),
    };
    d.finish()?;
    Ok(msg)
}

/// Read one complete message from a blocking stream. Returns `Ok(None)`
/// on clean EOF at a frame boundary; EOF anywhere *inside* a frame is
/// [`ProtoError::MidFrameEof`].
///
/// # Errors
///
/// Structured [`ProtoError`] on transport failure or any malformation.
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, ProtoError> {
    let mut header = [0u8; 8];
    match read_full(r, &mut header)? {
        FullRead::Complete => {}
        FullRead::CleanEof => return Ok(None),
        FullRead::MidEof { got } => {
            return Err(ProtoError::MidFrameEof { got, want: 8 - got });
        }
    }
    let payload = read_payload_after_header(r, &header)?;
    decode_payload(&payload).map(Some)
}

/// Validate a frame header and read the payload it promises. Split out
/// so the server's timeout-aware reader can share the exact same checks.
pub(crate) fn read_payload_after_header(
    r: &mut impl Read,
    header: &[u8; 8],
) -> Result<Vec<u8>, ProtoError> {
    let magic: [u8; 4] = header[..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload)? {
        FullRead::Complete => Ok(payload),
        FullRead::CleanEof => Err(ProtoError::MidFrameEof { got: 0, want: len }),
        FullRead::MidEof { got } => Err(ProtoError::MidFrameEof {
            got,
            want: len - got,
        }),
    }
}

/// Outcome of trying to fill a buffer from a stream.
pub(crate) enum FullRead {
    /// Buffer filled.
    Complete,
    /// Zero bytes then EOF.
    CleanEof,
    /// Some bytes then EOF.
    MidEof { got: usize },
}

pub(crate) fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<FullRead, ProtoError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    FullRead::CleanEof
                } else {
                    FullRead::MidEof { got }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(FullRead::Complete)
}

/// Write one message as a frame.
///
/// # Errors
///
/// [`ProtoError::Io`] on transport failure.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), ProtoError> {
    let frame = encode_message(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}
