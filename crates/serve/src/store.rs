//! The crash-safe persistent schedule store.
//!
//! One file per compile key: `<key:016x>.rec`, holding
//! `[magic "SWST"][version u8][key u64 LE][payload length u32 LE]
//! [payload][FNV-1a of payload, u64 LE]` where the payload is the
//! standalone [`LoopOk`] encoding from the wire protocol.
//!
//! Crash safety is the classic temp-file-plus-rename protocol: a record
//! is written to a uniquely named `.tmp` file in the same directory and
//! renamed into place, so a reader can never observe a half-written
//! record under its final name. A crash mid-persist leaves only a stray
//! `.tmp`, which [`DiskStore::open`] sweeps on the next start. Whatever
//! still goes wrong on disk — truncation, bit rot, a hostile edit — is
//! caught by the magic/key/length/checksum gauntlet in
//! [`DiskStore::load`], reported as [`Lookup::Corrupt`], deleted, and
//! silently recompiled; a corrupt store entry costs one compile, never
//! an incident.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::proto::{decode_result, encode_result, fnv1a, LoopOk};

/// Record magic.
pub const STORE_MAGIC: [u8; 4] = *b"SWST";

/// Record format version.
pub const STORE_VERSION: u8 = 1;

/// Process-wide counter that keeps temp names unique even when several
/// writers (or stores) target one directory.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// then rename. Readers of `path` see either the old content or the new,
/// never a torn write. Used by the store and by every JSON artifact the
/// experiments driver emits.
///
/// # Errors
///
/// Any underlying filesystem error; the temp file is removed best-effort
/// on failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy())
        .unwrap_or_default();
    path.with_file_name(format!(".{file}.{}.{seq}.tmp", std::process::id()))
}

/// Outcome of a store lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A valid record was found.
    Hit(LoopOk),
    /// No record under this key.
    Miss,
    /// A record existed but failed validation; it has been removed and
    /// the caller recompiles.
    Corrupt,
}

/// Counters a store accumulates over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups answered by a valid record.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found garbage and recovered by deletion.
    pub corrupt_recovered: u64,
    /// Records persisted by this store instance.
    pub persisted: u64,
}

/// A content-addressed on-disk result store keyed by the schedule
/// cache's compile key. All methods take `&self`; concurrent use from
/// many handler threads is safe because every write is atomic and every
/// read validates.
pub struct DiskStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    persisted: AtomicU64,
    /// Chaos hook: when set, `persist` writes the temp file and then
    /// fails *without renaming* — the observable effect of a process
    /// crash between the two steps.
    pub fail_persist_after_tmp: AtomicBool,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `dir`, sweeping any
    /// temp files a crashed predecessor left behind.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(DiskStore {
            dir: dir.to_owned(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            fail_persist_after_tmp: AtomicBool::new(false),
        })
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the record for `key`.
    pub fn record_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rec"))
    }

    /// Look up `key`. Corrupt records are deleted on the spot (so the
    /// next lookup is a plain miss) and counted both locally and on the
    /// ambient telemetry collector.
    pub fn load(&self, key: u64) -> Lookup {
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
            // Unreadable is indistinguishable from corrupt for our
            // purposes: recompile.
            Err(_) => return self.corrupt(&path),
        };
        match parse_record(&bytes, key) {
            Some(ok) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                swp_obs::count(swp_obs::Counter::ServeStoreHits, 1);
                Lookup::Hit(ok)
            }
            None => self.corrupt(&path),
        }
    }

    fn corrupt(&self, path: &Path) -> Lookup {
        let _ = fs::remove_file(path);
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        swp_obs::count(swp_obs::Counter::ServeStoreCorruptRecovered, 1);
        Lookup::Corrupt
    }

    /// Persist `ok` under `key`. Last writer wins; concurrent writers of
    /// the same key write identical content (results are deterministic),
    /// so the race is harmless.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error — including the simulated crash
    /// when [`Self::fail_persist_after_tmp`] is set. Persist errors are
    /// non-fatal to the service: the reply was already computed.
    pub fn persist(&self, key: u64, ok: &LoopOk) -> io::Result<()> {
        let payload = encode_result(ok);
        let mut record = Vec::with_capacity(payload.len() + 25);
        record.extend_from_slice(&STORE_MAGIC);
        record.push(STORE_VERSION);
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let path = self.record_path(key);
        if self.fail_persist_after_tmp.load(Ordering::Relaxed) {
            // Simulated crash between the write and the rename: the temp
            // file exists, the record name does not.
            fs::write(tmp_sibling(&path), &record)?;
            return Err(io::Error::other("chaos: crashed before rename"));
        }
        write_atomic(&path, &record)?;
        self.persisted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether a record file exists for `key` (no validation).
    pub fn contains(&self, key: u64) -> bool {
        self.record_path(key).exists()
    }

    /// Number of record files currently on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".rec"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt_recovered: self.corrupt.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
        }
    }
}

/// Validate and decode one record. `None` means corrupt — any framing,
/// key, length, checksum, or payload defect.
fn parse_record(bytes: &[u8], key: u64) -> Option<LoopOk> {
    if bytes.len() < 25 || bytes[..4] != STORE_MAGIC || bytes[4] != STORE_VERSION {
        return None;
    }
    let rec_key = u64::from_le_bytes(bytes[5..13].try_into().ok()?);
    if rec_key != key {
        return None;
    }
    let len = u32::from_le_bytes(bytes[13..17].try_into().ok()?) as usize;
    if bytes.len() != 17 + len + 8 {
        return None;
    }
    let payload = &bytes[17..17 + len];
    let sum = u64::from_le_bytes(bytes[17 + len..].try_into().ok()?);
    if fnv1a(payload) != sum {
        return None;
    }
    decode_result(payload).ok()
}
