//! A minimal blocking client for the compile service.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::proto::{self, Message, ProtoError, RequestBatch, ResponseBatch};

/// One connection to a compile server.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connect to the server's socket.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on connect failure.
    pub fn connect(socket: &Path) -> Result<Client, ProtoError> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Bound every read; a server that never answers then yields
    /// [`ProtoError::Io`] instead of hanging the caller — chaos tests
    /// rely on this to turn a would-be hang into a failure.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] if the timeout cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Send one request batch and wait for its response.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors; a server-side [`Message::Error`]
    /// frame surfaces as [`ProtoError::Malformed`] carrying the
    /// server's message.
    pub fn compile_batch(&mut self, req: &RequestBatch) -> Result<ResponseBatch, ProtoError> {
        proto::write_message(&mut self.stream, &Message::Request(req.clone()))?;
        match proto::read_message(&mut self.stream)? {
            Some(Message::Response(resp)) => Ok(resp),
            Some(Message::Error(msg)) => Err(ProtoError::Malformed(format!(
                "server rejected frame: {msg}"
            ))),
            Some(Message::Request(_)) => {
                Err(ProtoError::Malformed("server sent a request frame".into()))
            }
            None => Err(ProtoError::MidFrameEof { got: 0, want: 8 }),
        }
    }

    /// Write raw bytes on the connection — the adversarial tests' way of
    /// sending deliberately broken frames.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Io`] on transport failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ProtoError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read one message (for tests that poke the protocol directly).
    ///
    /// # Errors
    ///
    /// Transport or protocol errors.
    pub fn read_message(&mut self) -> Result<Option<Message>, ProtoError> {
        proto::read_message(&mut self.stream)
    }
}
