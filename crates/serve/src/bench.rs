//! Service benchmarks: a saturation run against a live server and a
//! direct sharded-vs-single-lock cache comparison.
//!
//! The saturation run is three phases against one store directory:
//! cold (fresh server, empty store), warm (same server, everything
//! memoized), and restart (a *new* server process-equivalent on the
//! same store — the memory cache is gone, so every hit is a disk hit).
//! The restart phase is the headline number: it is what crash-safe
//! persistence buys.
//!
//! The shard comparison deliberately bypasses the socket layer and
//! hammers [`showdown::ScheduleCache`] itself, so the number isolates
//! lock contention rather than protocol cost. `with_shards(1)` is
//! exactly the pre-sharding single-lock structure.

use std::path::Path;
use std::time::Instant;

use showdown::{OptLevel, ScheduleCache, SchedulerChoice, VerifyLevel};
use swp_ir::Loop;
use swp_machine::Machine;

use crate::admission::AdmissionOptions;
use crate::client::Client;
use crate::proto::{RequestBatch, WireChoice};
use crate::server::{ServeStats, Server, ServerHandle, ServerOptions};

/// One phase's latency aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseLatency {
    /// Batches measured.
    pub batches: usize,
    /// Median batch latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile batch latency, microseconds.
    pub p99_us: u64,
}

/// Result of a saturation run.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Loops submitted per phase (across all clients).
    pub loops_per_phase: usize,
    /// Cold-store, cold-cache phase.
    pub cold: PhaseLatency,
    /// Same server, everything memoized.
    pub warm: PhaseLatency,
    /// Fresh server on the same store: disk hits only.
    pub restart: PhaseLatency,
    /// Counters of the cold+warm server at shutdown.
    pub cold_stats: ServeStats,
    /// Counters of the restarted server at shutdown.
    pub restart_stats: ServeStats,
    /// Loop replies that came back as errors (must be 0).
    pub errors: usize,
}

impl SaturationReport {
    /// Disk hit rate of the restart phase: hits over all admitted loops.
    pub fn restart_hit_rate(&self) -> f64 {
        let admitted = self.restart_stats.admitted;
        if admitted == 0 {
            0.0
        } else {
            self.restart_stats.store.hits as f64 / admitted as f64
        }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn phase_latency(mut latencies: Vec<u64>) -> PhaseLatency {
    latencies.sort_unstable();
    PhaseLatency {
        batches: latencies.len(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn suite_batches() -> Vec<(String, Vec<Loop>)> {
    swp_kernels::spec_suites()
        .into_iter()
        .map(|s| {
            (
                s.name.to_owned(),
                s.loops.into_iter().map(|l| l.body).collect(),
            )
        })
        .collect()
}

/// Run one phase: `clients` threads, each sending every suite as one
/// batch. Returns per-batch latencies and the count of error replies.
fn run_phase(server: &ServerHandle, clients: usize, phase: &str) -> (Vec<u64>, usize, usize) {
    let batches = suite_batches();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let batches = &batches;
            let server = &server;
            joins.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut errors = 0usize;
                let mut loops = 0usize;
                let mut client = Client::connect(server.socket()).expect("connect");
                for (i, (name, bodies)) in batches.iter().enumerate() {
                    let req = RequestBatch {
                        batch_id: (c * batches.len() + i) as u64,
                        client: format!("bench-{c}"),
                        deadline_ms: 0,
                        choice: WireChoice::Ladder,
                        opt: OptLevel::Off,
                        verify: VerifyLevel::Off,
                        loops: bodies.clone(),
                    };
                    loops += bodies.len();
                    let t0 = Instant::now();
                    let resp = client
                        .compile_batch(&req)
                        .unwrap_or_else(|e| panic!("{phase}: batch {name} failed: {e}"));
                    latencies.push(t0.elapsed().as_micros() as u64);
                    errors += resp.results.iter().filter(|r| r.outcome.is_err()).count();
                }
                (latencies, errors, loops)
            }));
        }
        let mut all = Vec::new();
        let mut errors = 0;
        let mut loops = 0;
        for j in joins {
            let (l, e, n) = j.join().expect("bench client");
            all.extend(l);
            errors += e;
            loops += n;
        }
        (all, errors, loops)
    })
}

fn bench_server(machine: &Machine, root: &Path) -> std::io::Result<ServerHandle> {
    let socket = std::env::temp_dir().join(format!("swp-bench-{}.sock", std::process::id()));
    let mut opts = ServerOptions::at(socket);
    opts.store_dir = Some(root.join("store"));
    // Tight enough that an 8-client burst visibly demotes; loose enough
    // that single-client phases run at full effort.
    opts.admission = AdmissionOptions {
        max_inflight: 8,
        soft_inflight: 4,
        heavy_inflight: 6,
        ..AdmissionOptions::default()
    };
    Server::start(machine.clone(), opts)
}

/// The saturation benchmark: cold, warm, and restart phases under
/// `clients` concurrent clients, all over one store under `root`.
///
/// # Errors
///
/// Server start or store I/O failure.
pub fn saturate(
    machine: &Machine,
    clients: usize,
    root: &Path,
) -> std::io::Result<SaturationReport> {
    std::fs::create_dir_all(root)?;
    let server = bench_server(machine, root)?;
    let (cold_lat, cold_err, cold_loops) = run_phase(&server, clients, "cold");
    let (warm_lat, warm_err, _) = run_phase(&server, clients, "warm");
    let cold_stats = server.stats();
    drop(server);
    let server = bench_server(machine, root)?;
    let (restart_lat, restart_err, _) = run_phase(&server, clients, "restart");
    let restart_stats = server.stats();
    drop(server);
    Ok(SaturationReport {
        clients,
        loops_per_phase: cold_loops,
        cold: phase_latency(cold_lat),
        warm: phase_latency(warm_lat),
        restart: phase_latency(restart_lat),
        cold_stats,
        restart_stats,
        errors: cold_err + warm_err + restart_err,
    })
}

/// Sharded-vs-single-lock cache comparison.
#[derive(Debug, Clone, Copy)]
pub struct ShardCompare {
    /// Hammering threads.
    pub threads: usize,
    /// Rounds over the whole kernel set per thread.
    pub rounds: usize,
    /// Wall time with `with_shards(1)` — the pre-sharding structure.
    pub single_lock_us: u64,
    /// Wall time with the default shard count.
    pub sharded_us: u64,
}

impl ShardCompare {
    /// single-lock time over sharded time (> 1 means sharding wins).
    pub fn speedup(&self) -> f64 {
        if self.sharded_us == 0 {
            0.0
        } else {
            self.single_lock_us as f64 / self.sharded_us as f64
        }
    }
}

fn hammer(
    machine: &Machine,
    cache: &ScheduleCache,
    bodies: &[Loop],
    threads: usize,
    rounds: usize,
) -> u64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..rounds {
                    for lp in bodies {
                        cache
                            .get_or_compile(lp, machine, &SchedulerChoice::Heuristic)
                            .expect("heuristic compile");
                    }
                }
            });
        }
    });
    t0.elapsed().as_micros() as u64
}

/// Time the same multi-threaded all-hit workload against a single-lock
/// cache and the default sharded cache. Both caches are pre-warmed so
/// the timed region is the pure lookup path — where lock contention
/// lives — and trials alternate between the two structures, keeping the
/// best of each, so a scheduler hiccup cannot charge one side only.
pub fn shard_compare(machine: &Machine, threads: usize, rounds: usize) -> ShardCompare {
    let bodies: Vec<Loop> = swp_kernels::livermore()
        .into_iter()
        .map(|k| k.body)
        .collect();
    let single = ScheduleCache::with_shards(1);
    let sharded = ScheduleCache::new();
    for lp in &bodies {
        single
            .get_or_compile(lp, machine, &SchedulerChoice::Heuristic)
            .expect("heuristic compile");
        sharded
            .get_or_compile(lp, machine, &SchedulerChoice::Heuristic)
            .expect("heuristic compile");
    }
    let mut single_lock_us = u64::MAX;
    let mut sharded_us = u64::MAX;
    for _ in 0..5 {
        single_lock_us = single_lock_us.min(hammer(machine, &single, &bodies, threads, rounds));
        sharded_us = sharded_us.min(hammer(machine, &sharded, &bodies, threads, rounds));
    }
    ShardCompare {
        threads,
        rounds,
        single_lock_us,
        sharded_us,
    }
}
