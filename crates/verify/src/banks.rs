//! Analyzer 4: the bank audit.
//!
//! `heur::bankopt` claims static knowledge of the relative cache bank of
//! same-row memory references (known-opposite pairs are safe to co-issue;
//! known-same pairs stall). This analyzer certifies those claims against
//! the final schedule by brute force: it asks the classifier what it
//! believes about every co-scheduled pair, then walks the co-issued
//! iteration instances and computes each reference's actual bank from the
//! machine's bank model — the same address arithmetic the simulator uses,
//! derived independently of the classifier's stage-delta algebra.

use crate::diag::Finding;
use swp_codegen::PipelinedLoop;
use swp_heur::bankopt::{relative_bank_at, RelBank};
use swp_ir::{Loop, Op};
use swp_machine::Machine;

/// Iterations of the steady state to test a claim against. Bank phase for
/// affine accesses is periodic in at most 16/gcd(stride, 16) ≤ 16
/// iterations, so 64 covers every pattern with margin.
const CHECK_ITERS: i64 = 64;

/// Certify one claimed relative-bank relation between ops `a` (issued at
/// `t_a`) and `b` (at `t_b`) in a schedule of the given II. Returns the
/// refuting finding, or `None` when the claim holds on every co-issued
/// instance pair. Exposed so mutation tests can inject wrong claims.
#[allow(clippy::too_many_arguments)]
pub fn check_bank_claim(
    body: &Loop,
    a: &Op,
    t_a: i64,
    b: &Op,
    t_b: i64,
    ii: u32,
    machine: &Machine,
    claim: RelBank,
) -> Option<Finding> {
    let model = machine.bank_model()?;
    let (am, bm) = (a.mem?, b.mem?);
    if am.indirect || bm.indirect {
        return (claim != RelBank::Unknown).then(|| {
            Finding::error(
                "SWP-V404",
                format!(
                    "static bank claim {claim:?} about indirect reference pair \
                     (ops {}, {})",
                    a.id.0, b.id.0
                ),
            )
            .at_op(a.id)
        });
    }
    // Instance i of an op with time t issues at cycle t + i·II, so the
    // instances sharing a cycle satisfy i_b = i_a + (t_a − t_b)/II.
    let k = (t_a - t_b) / i64::from(ii);
    let bank = |m: &swp_ir::MemAccess, i: i64| {
        let base = body.array(m.array).base_align as i64;
        model.bank_of((base + m.offset + m.stride * i).rem_euclid(1 << 40) as u64)
    };
    let start = 0i64.max(-k);
    for i_a in start..start + CHECK_ITERS {
        let i_b = i_a + k;
        let (ba, bb) = (bank(&am, i_a), bank(&bm, i_b));
        match claim {
            RelBank::KnownOpposite if ba == bb => {
                return Some(
                    Finding::error(
                        "SWP-V401",
                        format!(
                            "ops {} and {} claimed opposite-bank, but iterations \
                             {i_a}/{i_b} both hit bank {ba:?}",
                            a.id.0, b.id.0
                        ),
                    )
                    .at_op(a.id)
                    .at_cycle(t_a),
                );
            }
            RelBank::KnownSame if ba != bb => {
                return Some(
                    Finding::error(
                        "SWP-V402",
                        format!(
                            "ops {} and {} claimed same-bank, but iterations \
                             {i_a}/{i_b} hit banks {ba:?}/{bb:?}",
                            a.id.0, b.id.0
                        ),
                    )
                    .at_op(a.id)
                    .at_cycle(t_a),
                );
            }
            _ => {}
        }
    }
    None
}

/// Audit every same-row memory-reference pair of `code` on `machine`.
/// Error findings refute a static bank claim. Co-scheduled known-same
/// pairs are *not* flagged: they cost bellows stalls, not correctness,
/// and are expected from schedulers without bank heuristics (MOST); the
/// simulator's stall counts already measure that effect.
pub fn audit_banks(code: &PipelinedLoop, machine: &Machine) -> Vec<Finding> {
    let mut findings = Vec::new();
    if machine.bank_model().is_none() {
        return findings;
    }
    let body = code.body();
    let schedule = code.schedule();
    let ii = schedule.ii();
    let mem: Vec<&Op> = body.mem_ops().collect();
    for (n, &a) in mem.iter().enumerate() {
        for &b in &mem[n + 1..] {
            if schedule.row(a.id) != schedule.row(b.id) {
                continue;
            }
            let (t_a, t_b) = (schedule.time(a.id), schedule.time(b.id));
            let (Some(am), Some(bm)) = (a.mem, b.mem) else {
                continue;
            };
            let claim = relative_bank_at(body, &am, t_a, &bm, t_b, ii);
            if let Some(f) = check_bank_claim(body, a, t_a, b, t_b, ii, machine, claim) {
                findings.push(f);
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn two_load_loop(second_offset: i64) -> Loop {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 16);
        let w = b.load(x, second_offset, 16);
        let s = b.fadd(v, w);
        b.store(x, 1_600_000, 16, s);
        b.finish()
    }

    #[test]
    fn true_claims_are_certified() {
        let m = Machine::r8000();
        let lp = two_load_loop(8); // 8 mod 16 → opposite banks
        let (a, b) = (&lp.ops()[0], &lp.ops()[1]);
        assert_eq!(
            check_bank_claim(&lp, a, 0, b, 0, 2, &m, RelBank::KnownOpposite),
            None
        );
        let same = two_load_loop(16); // 0 mod 16 → same bank
        let (a, b) = (&same.ops()[0], &same.ops()[1]);
        assert_eq!(
            check_bank_claim(&same, a, 0, b, 0, 2, &m, RelBank::KnownSame),
            None
        );
    }

    #[test]
    fn false_claims_are_refuted() {
        let m = Machine::r8000();
        let same = two_load_loop(16);
        let (a, b) = (&same.ops()[0], &same.ops()[1]);
        let f = check_bank_claim(&same, a, 0, b, 0, 2, &m, RelBank::KnownOpposite)
            .expect("claim must be refuted");
        assert_eq!(f.code, "SWP-V401");
        let opposite = two_load_loop(8);
        let (a, b) = (&opposite.ops()[0], &opposite.ops()[1]);
        let f = check_bank_claim(&opposite, a, 0, b, 0, 2, &m, RelBank::KnownSame)
            .expect("claim must be refuted");
        assert_eq!(f.code, "SWP-V402");
    }

    #[test]
    fn stage_shifted_pairs_use_coissued_iterations() {
        // Stride-8 refs 8 bytes apart: opposite banks when co-issued at
        // the same stage, but SAME bank when 3 stages apart at II=2 (the
        // shift subtracts 3 strides: 8 − 24 ≡ 0 mod 16). The brute-force
        // walk must agree with the classifier's stage-delta algebra.
        let m = Machine::r8000();
        let mut bld = LoopBuilder::new("t");
        let f = bld.array("f", 8);
        let v = bld.load(f, 8, 8);
        let w = bld.load(f, 0, 8);
        let s = bld.fadd(v, w);
        bld.store(f, 800_000, 8, s);
        let lp = bld.finish();
        let (a, b) = (&lp.ops()[0], &lp.ops()[1]);
        // 3 stages apart: same bank every co-issued instance pair.
        assert_eq!(
            relative_bank_at(&lp, &a.mem.unwrap(), 7, &b.mem.unwrap(), 1, 2),
            RelBank::KnownSame
        );
        assert_eq!(
            check_bank_claim(&lp, a, 7, b, 1, 2, &m, RelBank::KnownSame),
            None
        );
        assert!(check_bank_claim(&lp, a, 7, b, 1, 2, &m, RelBank::KnownOpposite).is_some());
        // 2 stages apart: opposite again (8 − 16 ≡ 8 mod 16).
        assert_eq!(
            check_bank_claim(&lp, a, 5, b, 1, 2, &m, RelBank::KnownOpposite),
            None
        );
        assert!(check_bank_claim(&lp, a, 5, b, 1, 2, &m, RelBank::KnownSame).is_some());
    }
}
