//! The structured diagnostics engine: findings, severities, reports, and
//! the human/JSON renderers every analyzer feeds into.

use swp_ir::{OpId, ScheduleError};

/// How much of the audit to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyLevel {
    /// No verification (the production default).
    #[default]
    Off,
    /// The schedule analyzer only: dependences, modulo reservation table,
    /// and issue width re-derived from the DDG.
    Schedule,
    /// All four analyzers (schedule, registers, expansion, banks) plus the
    /// pre-scheduling IR lints.
    Full,
}

impl VerifyLevel {
    /// Stable lowercase name, used by the JSON renderer and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Schedule => "schedule",
            VerifyLevel::Full => "full",
        }
    }
}

/// Severity of a finding. Ordered so `Error` compares greatest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never a correctness problem.
    Note,
    /// Suspicious but not provably wrong (e.g. dead code).
    Warning,
    /// A proven violation of a correctness constraint.
    Error,
}

impl Severity {
    /// Stable lowercase name, used by both renderers.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic from an analyzer or lint: a stable code, a severity, a
/// human message, and the op/cycle it anchors to when one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint code (`SWP-Vxxx` for audit findings, `SWP-Lxxx` for IR
    /// lints); documented in DESIGN.md §7.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description of the violated constraint.
    pub message: String,
    /// The operation involved, if the finding is about one.
    pub op: Option<OpId>,
    /// The cycle (or kernel row) involved, if any.
    pub cycle: Option<i64>,
}

impl Finding {
    /// An error-severity finding.
    pub fn error(code: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            code,
            severity: Severity::Error,
            message: message.into(),
            op: None,
            cycle: None,
        }
    }

    /// A warning-severity finding.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            severity: Severity::Warning,
            ..Finding::error(code, message)
        }
    }

    /// A note-severity finding.
    pub fn note(code: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            severity: Severity::Note,
            ..Finding::error(code, message)
        }
    }

    /// Anchor the finding to an operation.
    pub fn at_op(mut self, op: OpId) -> Finding {
        self.op = Some(op);
        self
    }

    /// Anchor the finding to a cycle or kernel row.
    pub fn at_cycle(mut self, cycle: i64) -> Finding {
        self.cycle = Some(cycle);
        self
    }

    /// The single rendering path for schedule-constraint violations: wrap
    /// a [`ScheduleError`] (whose `Display` already carries its lint code)
    /// as an error finding, anchored to the offending op or row.
    pub fn from_schedule_error(e: &ScheduleError) -> Finding {
        let mut f = Finding::error(e.lint_code(), e.to_string());
        match e {
            ScheduleError::NegativeTime(op) => f.op = Some(*op),
            ScheduleError::Dependence { to, .. } => f.op = Some(*to),
            ScheduleError::Resource { row, .. } => f.cycle = Some(i64::from(*row)),
            ScheduleError::WrongLength { .. } => {}
        }
        f
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity.name(), self.code)?;
        if let Some(op) = self.op {
            write!(f, " op {}", op.0)?;
        }
        if let Some(c) = self.cycle {
            write!(f, " cycle {c}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of auditing one compiled loop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// The level the audit ran at.
    pub level: VerifyLevel,
    /// Everything the analyzers found, lints first, in analyzer order.
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// Whether the audit proved nothing wrong (notes and warnings do not
    /// count against cleanliness; errors do).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// The report as an accept/reject decision: `Ok` when no finding is
    /// error-severity, otherwise `Err` with the error count. This is how
    /// the degradation ladder uses the auditors as a *gate* — a rejected
    /// rung demotes to the next one instead of shipping a bad schedule.
    ///
    /// # Errors
    ///
    /// Returns the number of error-severity findings when there are any.
    pub fn gate(&self) -> Result<(), usize> {
        match self.count(Severity::Error) {
            0 => Ok(()),
            n => Err(n),
        }
    }

    /// Findings at exactly this severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// One line per finding, most severe first (stable within a severity).
    pub fn render_human(&self) -> String {
        let mut ordered: Vec<&Finding> = self.findings.iter().collect();
        ordered.sort_by_key(|f| std::cmp::Reverse(f.severity));
        let mut out = String::new();
        for f in ordered {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out
    }

    /// The report as a JSON object (hand-rolled; no serde in this tree).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"level\":\"");
        out.push_str(self.level.name());
        out.push_str("\",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(f.code);
            out.push_str("\",\"severity\":\"");
            out.push_str(f.severity.name());
            out.push_str("\",\"message\":\"");
            json_escape(&f.message, &mut out);
            out.push('"');
            if let Some(op) = f.op {
                out.push_str(&format!(",\"op\":{}", op.0));
            }
            if let Some(c) = f.cycle {
                out.push_str(&format!(",\"cycle\":{c}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = VerifyReport {
            level: VerifyLevel::Full,
            findings: vec![
                Finding::note("SWP-L004", "pair"),
                Finding::warning("SWP-L002", "dead"),
            ],
        };
        assert!(r.is_clean());
        assert_eq!(r.gate(), Ok(()));
        r.findings
            .push(Finding::error("SWP-V202", "conflict").at_op(OpId(3)));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.gate(), Err(1), "warnings pass the gate, errors reject");
    }

    #[test]
    fn human_rendering_sorts_errors_first() {
        let r = VerifyReport {
            level: VerifyLevel::Full,
            findings: vec![
                Finding::note("SWP-L004", "a note"),
                Finding::error("SWP-V202", "an error"),
            ],
        };
        let text = r.render_human();
        let first = text.lines().next().expect("nonempty");
        assert!(first.starts_with("error[SWP-V202]"), "{first}");
    }

    #[test]
    fn json_rendering_escapes_and_anchors() {
        let r = VerifyReport {
            level: VerifyLevel::Schedule,
            findings: vec![Finding::error("SWP-V103", "a \"quoted\" message")
                .at_op(OpId(7))
                .at_cycle(-2)],
        };
        let json = r.render_json();
        assert!(json.contains("\"level\":\"schedule\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"op\":7"));
        assert!(json.contains("\"cycle\":-2"));
    }
}
