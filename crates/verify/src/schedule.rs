//! Analyzer 1: the schedule audit.
//!
//! Re-derives every constraint a legal modulo schedule must satisfy —
//! dependence separation modulo II, modulo-reservation-table occupancy,
//! and issue width — directly from the loop body, the DDG, and the machine
//! description, without calling [`swp_ir::Schedule::validate`] or any
//! scheduler code. Unlike `validate`, which stops at the first violation,
//! the audit reports *every* violated constraint.

use crate::diag::Finding;
use swp_ir::{Ddg, Loop, Schedule, ScheduleError};
use swp_machine::{Machine, ResourceClass};

/// Audit `schedule` against `body` on `machine`. Returns one finding per
/// violated constraint (empty = certified legal).
pub fn audit_schedule(body: &Loop, schedule: &Schedule, machine: &Machine) -> Vec<Finding> {
    let mut findings = Vec::new();
    if schedule.times().len() != body.len() {
        findings.push(Finding::from_schedule_error(&ScheduleError::WrongLength {
            expected: body.len(),
            actual: schedule.times().len(),
        }));
        // Nothing else is well-defined against a mis-sized schedule.
        return findings;
    }
    for op in body.ops() {
        if schedule.time(op.id) < 0 {
            findings.push(Finding::from_schedule_error(&ScheduleError::NegativeTime(
                op.id,
            )));
        }
    }

    // Dependence separation: t(to) − t(from) ≥ latency − II·distance for
    // every DDG arc.
    let ii = i64::from(schedule.ii());
    let ddg = Ddg::build(body, machine);
    for e in ddg.edges() {
        let needed = e.latency - ii * i64::from(e.distance);
        let actual = schedule.time(e.to) - schedule.time(e.from);
        if actual < needed {
            findings.push(Finding::from_schedule_error(&ScheduleError::Dependence {
                from: e.from,
                to: e.to,
                needed,
                actual,
            }));
        }
    }

    // Modulo reservation table, rebuilt from each op's reservations.
    let rows = schedule.ii() as usize;
    let mut table = vec![[0u32; 4]; rows];
    for op in body.ops() {
        for r in machine.reservations(op.class) {
            for d in 0..r.duration {
                let row = ((schedule.time(op.id) + i64::from(d)).rem_euclid(ii)) as usize;
                table[row][r.class.index()] += 1;
            }
        }
    }
    for (row, counts) in table.iter().enumerate() {
        for class in ResourceClass::ALL {
            let used = counts[class.index()];
            let units = machine.units(class);
            if used > units {
                findings.push(Finding::from_schedule_error(&ScheduleError::Resource {
                    row: row as u32,
                    class,
                    used,
                    units,
                }));
            }
        }
    }

    // Issue width, derived from raw op counts per row rather than from the
    // reservation metadata (an independent cross-check of the two).
    let mut issued = vec![0u32; rows];
    for op in body.ops() {
        issued[((schedule.time(op.id)).rem_euclid(ii)) as usize] += 1;
    }
    for (row, &n) in issued.iter().enumerate() {
        if n > machine.issue_width() {
            findings.push(
                Finding::error(
                    "SWP-V105",
                    format!(
                        "row {row} issues {n} ops on a {}-wide machine",
                        machine.issue_width()
                    ),
                )
                .at_cycle(row as i64),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn pair_loop() -> Loop {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        b.finish()
    }

    #[test]
    fn legal_schedule_is_certified() {
        let m = Machine::r8000();
        let lp = pair_loop();
        let s = Schedule::new(1, vec![0, 4, 8]);
        assert!(audit_schedule(&lp, &s, &m).is_empty());
    }

    #[test]
    fn every_violation_is_reported() {
        let m = Machine::r8000();
        let lp = pair_loop();
        // fadd 2 cycles after the load (needs 4) AND the store before the
        // fadd result is ready: two dependence findings, not one.
        let s = Schedule::new(2, vec![0, 2, 3]);
        let fs = audit_schedule(&lp, &s, &m);
        let deps = fs.iter().filter(|f| f.code == "SWP-V103").count();
        assert!(deps >= 2, "expected both arcs reported, got {fs:?}");
    }

    #[test]
    fn negative_time_and_wrong_length_fire() {
        let m = Machine::r8000();
        let lp = pair_loop();
        let fs = audit_schedule(&lp, &Schedule::new(2, vec![-1, 4, 8]), &m);
        assert!(fs.iter().any(|f| f.code == "SWP-V102"));
        let fs = audit_schedule(&lp, &Schedule::new(2, vec![0, 4]), &m);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code, "SWP-V101");
    }

    #[test]
    fn oversubscribed_row_fires_resource_and_issue_checks() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 800, 8);
        let v3 = b.load(x, 1600, 8);
        let s = b.fadd(v1, v2);
        let s2 = b.fadd(s, v3);
        b.store(x, 2400, 8, s2);
        let lp = b.finish();
        // Three loads share row 0 of II=2: 3 > 2 memory units.
        let fs = audit_schedule(&lp, &Schedule::new(2, vec![0, 2, 4, 8, 12, 16]), &m);
        assert!(fs.iter().any(|f| f.code == "SWP-V104"), "{fs:?}");
    }
}
