//! Independent translation validation for software-pipelined loops.
//!
//! Both pipeliners in this tree (the SGI-style heuristic of `swp-heur`
//! and the MOST ILP formulation of `swp-most`) are trusted by every
//! experiment to emit *correct* modulo schedules. This crate removes that
//! trust: it re-derives, from nothing but the loop body, the machine
//! description, and the final artifact, every property a correct
//! compilation must have, and reports violations through a structured
//! diagnostics engine with stable lint codes.
//!
//! Four analyzers:
//!
//! 1. [`audit_schedule`] — dependence separation modulo II, the modulo
//!    reservation table, and issue width, rebuilt from the DDG
//!    (`SWP-V1xx`);
//! 2. [`audit_registers`] — live ranges modulo II recomputed from the
//!    allocated kernel; no two simultaneously-live values may share a
//!    physical register across modulo-renamed copies, and MaxLive must
//!    fit the register file (`SWP-V2xx`);
//! 3. [`audit_expansion`] — the prologue/kernel/epilogue must be a
//!    faithful unrolling of the scheduled kernel, with correct stage
//!    predicates and entry/exit overhead accounting (`SWP-V3xx`);
//! 4. [`audit_banks`] — the memory-bank pairing claims of
//!    `heur::bankopt` must hold on every co-issued instance pair in the
//!    final schedule (`SWP-V4xx`).
//!
//! **Independence invariant**: the analyzers share no scheduling,
//! allocation, or expansion code with the crates they audit. They consume
//! only public *artifact* accessors ([`swp_codegen::PipelinedLoop`],
//! [`swp_regalloc::Allocation`]) plus the same inputs the schedulers saw
//! (body, DDG, machine), and re-implement all derived arithmetic — live
//! ranges, cyclic interference, instance enumeration, bank phases — from
//! the definitions. The one deliberate exception: the bank analyzer calls
//! `bankopt`'s classifier to learn what was *claimed*, then verifies the
//! claim with its own address arithmetic.
//!
//! The pre-scheduling IR lints of [`swp_ir::lint`] surface here too
//! (`SWP-L00x`), mapped onto the same [`Finding`] type, so one report
//! carries everything known about a compilation.
//!
//! # Examples
//!
//! ```
//! use swp_codegen::PipelinedLoop;
//! use swp_heur::{pipeline, HeurOptions};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//! use swp_verify::{audit, VerifyLevel};
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("scale");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let v = b.load(x, 0, 8);
//! let w = b.fmul(a, v);
//! b.store(x, 0, 8, w);
//! let lp = b.finish();
//! let p = pipeline(&lp, &m, &HeurOptions::default())?;
//! let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
//! let report = audit(&code, &m, VerifyLevel::Full);
//! assert!(report.is_clean(), "{}", report.render_human());
//! # Ok::<(), swp_heur::PipelineError>(())
//! ```

mod banks;
mod diag;
mod expansion;
mod regs;
mod schedule;

pub use banks::{audit_banks, check_bank_claim};
pub use diag::{Finding, Severity, VerifyLevel, VerifyReport};
pub use expansion::audit_expansion;
pub use regs::audit_registers;
pub use schedule::audit_schedule;

use swp_codegen::PipelinedLoop;
use swp_ir::Loop;
use swp_machine::Machine;

/// Run the translation-validation pass over one compiled loop at the
/// given level: `Schedule` runs analyzer 1, `Full` runs all four.
pub fn audit(code: &PipelinedLoop, machine: &Machine, level: VerifyLevel) -> VerifyReport {
    let mut findings = Vec::new();
    if level == VerifyLevel::Off {
        return VerifyReport { level, findings };
    }
    let _span = swp_obs::span("verify.audit").with_s("loop", code.body().name());
    findings.extend(audit_schedule(code.body(), code.schedule(), machine));
    if level == VerifyLevel::Full {
        findings.extend(audit_registers(
            code.body(),
            code.schedule(),
            code.allocation(),
            machine,
        ));
        findings.extend(audit_expansion(code));
        findings.extend(audit_banks(code, machine));
    }
    swp_obs::count(swp_obs::Counter::VerifyAudits, 1);
    swp_obs::count(swp_obs::Counter::VerifyFindings, findings.len() as u64);
    VerifyReport { level, findings }
}

/// Run the pre-scheduling IR lints and map them onto [`Finding`]s.
/// Severity by code: structural violations, unschedulable dependence
/// cycles, and distance-0 use-before-def are errors; dead ops and dead
/// store pairs are warnings; dead recurrences and unbreakable zero-slack
/// recurrences are notes (suspicious but semantics-preserving to
/// schedule).
pub fn lint_findings(lp: &Loop, machine: &Machine) -> Vec<Finding> {
    swp_ir::lint::lint_loop(lp, machine)
        .into_iter()
        .map(|l| {
            let mut f = match l.code {
                "SWP-L002" | "SWP-L006" => Finding::warning(l.code, l.message),
                "SWP-L004" | "SWP-L007" => Finding::note(l.code, l.message),
                _ => Finding::error(l.code, l.message),
            };
            f.op = l.op;
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_heur::{pipeline, HeurOptions};
    use swp_ir::LoopBuilder;

    fn compiled() -> (Machine, PipelinedLoop) {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
        (m, code)
    }

    #[test]
    fn full_audit_certifies_a_real_compile() {
        let (m, code) = compiled();
        let report = audit(&code, &m, VerifyLevel::Full);
        assert!(report.is_clean(), "{}", report.render_human());
        assert_eq!(report.level, VerifyLevel::Full);
    }

    #[test]
    fn off_level_checks_nothing() {
        let (m, code) = compiled();
        assert!(audit(&code, &m, VerifyLevel::Off).findings.is_empty());
    }

    #[test]
    fn ilp_schedules_are_certified_too() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let s = b.carried_f("s");
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let acc = b.fmadd(xv, yv, s.value());
        b.close(s, acc, 1);
        b.store(y, 800_000, 8, acc);
        let lp = b.finish();
        let opts = swp_most::MostOptions {
            time_limit: None,
            loop_time_limit: None,
            ..swp_most::MostOptions::default()
        };
        let p = swp_most::pipeline_most(&lp, &m, &opts).expect("pipelines");
        let code = PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation);
        let report = audit(&code, &m, VerifyLevel::Full);
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn lints_map_to_findings_with_severities() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("deadish");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let _dead = b.fadd(v, v);
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let fs = lint_findings(&lp, &m);
        assert!(
            fs.iter()
                .any(|f| f.code == "SWP-L002" && f.severity == Severity::Warning),
            "{fs:?}"
        );
    }
}
