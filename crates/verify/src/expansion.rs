//! Analyzer 3: the expansion audit.
//!
//! Proves that the prologue / kernel / epilogue emitted by `swp-codegen`
//! is a faithful unrolling of the scheduled kernel. The expected instance
//! sets are rebuilt here from nothing but the schedule: iteration `i`'s
//! instance of an op with time `t` issues at absolute cycle `i·II + t`,
//! the prologue holds every instance before the steady state, the kernel
//! holds exactly one instance per op at its row with stage predicate
//! `−stage`, and the epilogue drains the last `SC−1` iterations. The
//! overhead block's loop-entry/exit accounting is cross-checked against
//! the same derivation.

use std::collections::HashMap;

use crate::diag::Finding;
use swp_codegen::{CodeOp, PipelinedLoop};
use swp_machine::RegClass;

/// Registers free per class before save/restore cycles accrue — the model
/// constant of `swp-codegen` (DESIGN.md §5), restated independently here.
const FREE_REGS_PER_CLASS: u32 = 16;

/// Compare an emitted section against its expected instance multiset.
fn diff_section(
    name: &str,
    code: &'static str,
    actual: &[CodeOp],
    expected: &[CodeOp],
    findings: &mut Vec<Finding>,
) {
    let mut counts: HashMap<(u32, i64, i64), i64> = HashMap::new();
    for c in expected {
        *counts.entry((c.op.0, c.iteration, c.cycle)).or_default() += 1;
    }
    for c in actual {
        *counts.entry((c.op.0, c.iteration, c.cycle)).or_default() -= 1;
    }
    let mut keys: Vec<_> = counts.into_iter().filter(|&(_, n)| n != 0).collect();
    keys.sort_unstable_by_key(|&(k, _)| k);
    for ((op, iteration, cycle), n) in keys {
        let what = if n > 0 { "missing" } else { "spurious" };
        findings.push(
            Finding::error(
                code,
                format!(
                    "{name} {what} instance: op {op} of iteration {iteration} at cycle {cycle}"
                ),
            )
            .at_op(swp_ir::OpId(op))
            .at_cycle(cycle),
        );
    }
}

/// Audit the expanded form of `code`. Returns one finding per divergence
/// from the faithful unrolling (empty = certified).
pub fn audit_expansion(code: &PipelinedLoop) -> Vec<Finding> {
    let mut findings = Vec::new();
    let body = code.body();
    let schedule = code.schedule();
    let ii = i64::from(schedule.ii());

    // Independent span / stage count.
    let span = body
        .ops()
        .iter()
        .map(|o| schedule.time(o.id))
        .max()
        .unwrap_or(0);
    let sc = span.div_euclid(ii) + 1;
    if i64::from(code.stage_count()) != sc {
        findings.push(Finding::error(
            "SWP-V306",
            format!(
                "stage count {} but the schedule spans {} stages",
                code.stage_count(),
                sc
            ),
        ));
    }

    // Kernel: exactly one instance per op, at cycle = row, on behalf of
    // iteration −stage.
    let by_op: HashMap<u32, Vec<&CodeOp>> =
        code.kernel().iter().fold(HashMap::new(), |mut m, c| {
            m.entry(c.op.0).or_default().push(c);
            m
        });
    for op in body.ops() {
        let t = schedule.time(op.id);
        let (row, stage) = (t.rem_euclid(ii), t.div_euclid(ii));
        match by_op.get(&op.id.0).map(Vec::as_slice) {
            Some([c]) => {
                if c.cycle != row {
                    findings.push(
                        Finding::error(
                            "SWP-V302",
                            format!(
                                "kernel op {} at cycle {} but its row is {row}",
                                op.id.0, c.cycle
                            ),
                        )
                        .at_op(op.id)
                        .at_cycle(c.cycle),
                    );
                }
                if c.iteration != -stage {
                    findings.push(
                        Finding::error(
                            "SWP-V303",
                            format!(
                                "kernel op {} predicated on iteration {} but its stage is {stage}",
                                op.id.0, c.iteration
                            ),
                        )
                        .at_op(op.id),
                    );
                }
            }
            found => {
                let n = found.map_or(0, <[&CodeOp]>::len);
                findings.push(
                    Finding::error(
                        "SWP-V301",
                        format!("kernel holds {n} instances of op {} (want 1)", op.id.0),
                    )
                    .at_op(op.id),
                );
            }
        }
    }
    if code.kernel().len() != body.len() {
        findings.push(Finding::error(
            "SWP-V301",
            format!(
                "kernel holds {} instructions for a {}-op body",
                code.kernel().len(),
                body.len()
            ),
        ));
    }

    // Prologue: every instance issuing before the steady state, i.e.
    // iteration i of op t whenever i·II + t < (SC−1)·II.
    let fill_end = (sc - 1) * ii;
    let mut expected = Vec::new();
    for op in body.ops() {
        let t = schedule.time(op.id);
        let mut i = 0i64;
        while i * ii + t < fill_end {
            expected.push(CodeOp {
                op: op.id,
                iteration: i,
                cycle: i * ii + t,
            });
            i += 1;
        }
    }
    diff_section(
        "prologue",
        "SWP-V304",
        code.prologue(),
        &expected,
        &mut findings,
    );

    // Epilogue: the drain instances — stage s ≥ 1 of op t lands at cycle
    // t − s·II when non-negative, on behalf of iteration −s from the end.
    let mut expected = Vec::new();
    for op in body.ops() {
        let t = schedule.time(op.id);
        for s in 1..sc {
            let c = t - s * ii;
            if c >= 0 {
                expected.push(CodeOp {
                    op: op.id,
                    iteration: -s,
                    cycle: c,
                });
            }
        }
    }
    diff_section(
        "epilogue",
        "SWP-V305",
        code.epilogue(),
        &expected,
        &mut findings,
    );

    // Overhead accounting (the loop entry/exit guards): fill, drain,
    // register save/restore, and instruction counts must all follow from
    // the schedule and allocation.
    let oh = code.overhead();
    if oh.fill_cycles != fill_end {
        findings.push(Finding::error(
            "SWP-V306",
            format!(
                "fill overhead {} cycles, expected {fill_end}",
                oh.fill_cycles
            ),
        ));
    }
    if oh.drain_cycles != span + 1 - ii {
        findings.push(Finding::error(
            "SWP-V306",
            format!(
                "drain overhead {} cycles, expected {}",
                oh.drain_cycles,
                span + 1 - ii
            ),
        ));
    }
    let reg_save: i64 = RegClass::ALL
        .iter()
        .map(|&c| i64::from(code.regs_used(c).saturating_sub(FREE_REGS_PER_CLASS)))
        .sum();
    if oh.reg_save_cycles != reg_save {
        findings.push(Finding::error(
            "SWP-V306",
            format!(
                "register save overhead {} cycles, expected {reg_save}",
                oh.reg_save_cycles
            ),
        ));
    }
    if oh.instructions != code.prologue().len() + code.epilogue().len() {
        findings.push(Finding::error(
            "SWP-V306",
            format!(
                "overhead counts {} fill/drain instructions, but {} were emitted",
                oh.instructions,
                code.prologue().len() + code.epilogue().len()
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_codegen::CodeSection;
    use swp_heur::{pipeline, HeurOptions};
    use swp_ir::LoopBuilder;
    use swp_machine::Machine;

    fn expanded() -> PipelinedLoop {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    }

    #[test]
    fn faithful_expansion_is_certified() {
        assert!(audit_expansion(&expanded()).is_empty());
    }

    #[test]
    fn tampered_kernel_cycle_is_rejected() {
        let code = expanded();
        let mut op = code.kernel()[0];
        op.cycle += 1;
        let bad = code.with_tampered_op(CodeSection::Kernel, 0, op);
        let fs = audit_expansion(&bad);
        assert!(fs.iter().any(|f| f.code == "SWP-V302"), "{fs:?}");
    }

    #[test]
    fn tampered_prologue_instance_is_rejected() {
        let code = expanded();
        assert!(!code.prologue().is_empty(), "SC must exceed 1");
        let mut op = code.prologue()[0];
        op.iteration += 1;
        let bad = code.with_tampered_op(CodeSection::Prologue, 0, op);
        let fs = audit_expansion(&bad);
        assert!(fs.iter().any(|f| f.code == "SWP-V304"), "{fs:?}");
    }

    #[test]
    fn tampered_epilogue_op_is_rejected() {
        let code = expanded();
        assert!(!code.epilogue().is_empty());
        let mut op = code.epilogue()[0];
        op.cycle += 1;
        let bad = code.with_tampered_op(CodeSection::Epilogue, 0, op);
        let fs = audit_expansion(&bad);
        assert!(fs.iter().any(|f| f.code == "SWP-V305"), "{fs:?}");
    }
}
