//! Analyzer 2: the register audit.
//!
//! Recomputes value lifetimes modulo II straight from the allocated kernel
//! — definition cycle to last use plus II·distance — and proves that no
//! two simultaneously-live values (across all modulo-renamed kernel
//! copies) share a physical register, that invariants do not collide with
//! anything, and that neither MaxLive nor the allocator's own register
//! count exceeds the machine's file. The live-range and cyclic-interval
//! arithmetic is re-implemented here rather than imported from
//! `swp-regalloc`, so a bug in the allocator's interference test cannot
//! hide itself.

use crate::diag::Finding;
use swp_ir::{Loop, Schedule, ValueId};
use swp_machine::{Machine, RegClass};
use swp_regalloc::Allocation;

/// An independently recomputed live range.
struct Range {
    value: ValueId,
    class: RegClass,
    start: i64,
    end: i64,
}

/// Whether two cyclic half-open intervals `[s, s+len)` of period `period`
/// intersect; zero-length intervals still occupy their definition cycle.
fn cyclic_intersect(sa: i64, la: i64, sb: i64, lb: i64, period: i64) -> bool {
    let (la, lb) = (la.max(1), lb.max(1));
    if la >= period || lb >= period {
        return true;
    }
    let fwd = (sb.rem_euclid(period) - sa.rem_euclid(period)).rem_euclid(period);
    fwd < la || (period - fwd) % period < lb
}

/// Audit `alloc` against `schedule` on `machine`. Returns one finding per
/// violated property (empty = the allocation is certified).
pub fn audit_registers(
    body: &Loop,
    schedule: &Schedule,
    alloc: &Allocation,
    machine: &Machine,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if alloc.ii() != schedule.ii() {
        findings.push(Finding::error(
            "SWP-V205",
            format!(
                "allocation computed for II={} applied to a schedule with II={}",
                alloc.ii(),
                schedule.ii()
            ),
        ));
        return findings;
    }
    let ii = i64::from(schedule.ii());
    let unroll = alloc.unroll().max(1);
    let period = i64::from(unroll) * ii;
    let uses = body.uses();

    // Lifetimes from scratch: def cycle to the latest use, carried uses
    // extended by II·distance.
    let mut ranges: Vec<Range> = Vec::new();
    for (v, info) in body.values().iter().enumerate() {
        let Some(def) = info.def else { continue };
        let value = ValueId(v as u32);
        let start = schedule.time(def);
        let mut end = start;
        for &(user, idx) in &uses[v] {
            let operand = body.op(user).operands[idx];
            end = end.max(schedule.time(user) + ii * i64::from(operand.distance));
        }
        ranges.push(Range {
            value,
            class: info.class,
            start,
            end,
        });
    }

    // Every (value, kernel copy) must have an in-file register.
    for r in &ranges {
        for copy in 0..unroll {
            match alloc.reg_of(r.value, copy) {
                None => findings.push(Finding::error(
                    "SWP-V201",
                    format!("value {} copy {copy} has no register", r.value.0),
                )),
                Some(reg) if reg >= machine.allocatable(r.class) => {
                    findings.push(Finding::error(
                        "SWP-V206",
                        format!(
                            "value {} copy {copy} assigned register {reg} beyond the \
                             {} allocatable {:?} registers",
                            r.value.0,
                            machine.allocatable(r.class),
                            r.class
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }

    // No two simultaneously-live renamed copies may share a register.
    // Copy c of a value starting at s lives on [s + c·II, s + c·II + span)
    // cyclically in the unrolled steady state of period unroll·II.
    let instances: Vec<(usize, u32)> = ranges
        .iter()
        .enumerate()
        .flat_map(|(i, _)| (0..unroll).map(move |c| (i, c)))
        .collect();
    for (n, &(i, ci)) in instances.iter().enumerate() {
        for &(j, cj) in &instances[n + 1..] {
            let (a, b) = (&ranges[i], &ranges[j]);
            if a.class != b.class {
                continue;
            }
            let (sa, sb) = (a.start + i64::from(ci) * ii, b.start + i64::from(cj) * ii);
            if !cyclic_intersect(sa, a.end - a.start, sb, b.end - b.start, period) {
                continue;
            }
            if let (Some(ra), Some(rb)) = (alloc.reg_of(a.value, ci), alloc.reg_of(b.value, cj)) {
                if ra == rb {
                    findings.push(Finding::error(
                        "SWP-V202",
                        format!(
                            "values {} (copy {ci}) and {} (copy {cj}) are live \
                             simultaneously but share register {ra}",
                            a.value.0, b.value.0
                        ),
                    ));
                }
            }
        }
    }

    // Referenced invariants hold their register for the whole loop, so
    // they must avoid every variant register of their class and each other.
    let mut invariants: Vec<(ValueId, RegClass, u32)> = Vec::new();
    for (v, info) in body.values().iter().enumerate() {
        if !info.is_invariant() || uses[v].is_empty() {
            continue;
        }
        let value = ValueId(v as u32);
        match alloc.reg_of_invariant(value) {
            None => findings.push(Finding::error(
                "SWP-V201",
                format!("invariant {} has no register", value.0),
            )),
            Some(reg) if reg >= machine.allocatable(info.class) => {
                findings.push(Finding::error(
                    "SWP-V206",
                    format!(
                        "invariant {} assigned register {reg} beyond the {} allocatable \
                         {:?} registers",
                        value.0,
                        machine.allocatable(info.class),
                        info.class
                    ),
                ));
            }
            Some(reg) => invariants.push((value, info.class, reg)),
        }
    }
    for (n, &(va, ca, ra)) in invariants.iter().enumerate() {
        for &(vb, cb, rb) in &invariants[n + 1..] {
            if ca == cb && ra == rb {
                findings.push(Finding::error(
                    "SWP-V203",
                    format!("invariants {} and {} share register {ra}", va.0, vb.0),
                ));
            }
        }
        for r in &ranges {
            if r.class != ca {
                continue;
            }
            for copy in 0..unroll {
                if alloc.reg_of(r.value, copy) == Some(ra) {
                    findings.push(Finding::error(
                        "SWP-V203",
                        format!(
                            "invariant {} and value {} (copy {copy}) share register {ra}",
                            va.0, r.value.0
                        ),
                    ));
                }
            }
        }
    }

    // MaxLive (per-row simultaneous copies plus invariants) and the
    // allocator's own register count must fit the file.
    let rows = schedule.ii() as usize;
    let mut live = vec![[0u32; 2]; rows];
    let class_ix = |c: RegClass| usize::from(c == RegClass::Int);
    for r in &ranges {
        if r.end == r.start {
            live[(r.start.rem_euclid(ii)) as usize][class_ix(r.class)] += 1;
            continue;
        }
        for c in r.start..r.end {
            live[(c.rem_euclid(ii)) as usize][class_ix(r.class)] += 1;
        }
    }
    let mut inv_count = [0u32; 2];
    for &(_, c, _) in &invariants {
        inv_count[class_ix(c)] += 1;
    }
    for class in RegClass::ALL {
        let peak = live
            .iter()
            .map(|row| row[class_ix(class)])
            .max()
            .unwrap_or(0)
            + inv_count[class_ix(class)];
        if peak > machine.allocatable(class) {
            findings.push(Finding::error(
                "SWP-V204",
                format!(
                    "MaxLive {peak} exceeds the {} allocatable {class:?} registers",
                    machine.allocatable(class)
                ),
            ));
        }
        if alloc.regs_used(class) > machine.allocatable(class) {
            findings.push(Finding::error(
                "SWP-V204",
                format!(
                    "allocation claims {} {class:?} registers of {} allocatable",
                    alloc.regs_used(class),
                    machine.allocatable(class)
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;
    use swp_regalloc::{allocate, AllocOutcome};

    fn allocated() -> (Loop, Schedule, Allocation) {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(y, 0, 8);
        let s = b.fmadd(v1, v2, v1);
        b.store(y, 800, 8, s);
        let lp = b.finish();
        let sched = Schedule::new(2, vec![0, 1, 4, 8]);
        let AllocOutcome::Allocated(a) = allocate(&lp, &sched, &m) else {
            unreachable!("tiny loop fits");
        };
        (lp, sched, a)
    }

    #[test]
    fn real_allocation_is_certified() {
        let m = Machine::r8000();
        let (lp, sched, a) = allocated();
        assert!(audit_registers(&lp, &sched, &a, &m).is_empty());
    }

    #[test]
    fn out_of_file_register_is_rejected() {
        let m = Machine::r8000();
        let (lp, sched, a) = allocated();
        let v = lp.ops()[0].result.expect("load result");
        let bad = a.with_assignment(v, 0, 999);
        let fs = audit_registers(&lp, &sched, &bad, &m);
        assert!(fs.iter().any(|f| f.code == "SWP-V206"), "{fs:?}");
    }

    #[test]
    fn aliased_live_ranges_are_rejected() {
        let m = Machine::r8000();
        let (lp, sched, a) = allocated();
        // Both loads are live into the fmadd at cycle 4; forcing copy 0 of
        // the second onto copy 0 of the first must be caught.
        let v1 = lp.ops()[0].result.expect("load result");
        let v2 = lp.ops()[1].result.expect("load result");
        let shared = a.reg_of(v1, 0).expect("allocated");
        let bad = a.with_assignment(v2, 0, shared);
        let fs = audit_registers(&lp, &sched, &bad, &m);
        assert!(fs.iter().any(|f| f.code == "SWP-V202"), "{fs:?}");
    }

    #[test]
    fn ii_mismatch_is_rejected() {
        let m = Machine::r8000();
        let (lp, _, a) = allocated();
        let other = Schedule::new(3, vec![0, 1, 4, 8]);
        let fs = audit_registers(&lp, &other, &a, &m);
        assert!(fs.iter().any(|f| f.code == "SWP-V205"), "{fs:?}");
    }
}
