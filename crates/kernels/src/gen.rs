//! Parameterized random loop generation, for scalability sweeps.
//!
//! §5.0 of the paper compares the largest loops each scheduler handles
//! (116 ops heuristic vs 61 ops MOST). The generator produces valid loop
//! bodies of a requested size with controllable memory density and
//! recurrence structure so the experiment can sweep body size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swp_ir::{Loop, LoopBuilder, ValueId};

/// Parameters for [`random_loop`].
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Approximate number of operations.
    pub ops: usize,
    /// Fraction of ops that are memory references (0..1).
    pub mem_fraction: f64,
    /// Number of independent loop-carried recurrences to thread through.
    pub recurrences: usize,
    /// Fraction of arithmetic ops that are divides (hard to schedule).
    pub div_fraction: f64,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            ops: 30,
            mem_fraction: 0.3,
            recurrences: 1,
            div_fraction: 0.0,
        }
    }
}

/// Generate a valid random loop. Deterministic in `(params, seed)`.
pub fn random_loop(params: &GenParams, seed: u64) -> Loop {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LoopBuilder::new(&format!("gen{seed}"));
    let narrays = 4.max(params.ops / 10);
    let arrays: Vec<_> = (0..narrays).map(|i| b.array(&format!("a{i}"), 8)).collect();
    let inv = b.invariant_f("c0");

    let target_mem = ((params.ops as f64) * params.mem_fraction).round() as usize;
    let target_loads = target_mem.saturating_sub(target_mem / 4).max(1);
    let target_stores = target_mem - target_loads.min(target_mem);

    // Seed pool of values with loads from distinct arrays/offsets.
    let mut pool: Vec<ValueId> = vec![inv];
    for l in 0..target_loads {
        let a = arrays[rng.gen_range(0..arrays.len())];
        let off = (l as i64) * 8 + rng.gen_range(0..4) * 8 * 64;
        pool.push(b.load(a, off, 8));
    }

    // Open recurrences.
    let carried: Vec<_> = (0..params.recurrences)
        .map(|i| b.carried_f(&format!("r{i}")))
        .collect();
    for c in &carried {
        pool.push(c.value());
    }

    // Arithmetic body. Operand selection is locality-biased (recent values
    // are far likelier): real loop bodies consume values shortly after
    // producing them, and uniform sampling would manufacture artificially
    // long live ranges that no register file could hold.
    let arith = params
        .ops
        .saturating_sub(target_loads + target_stores + params.recurrences)
        .max(params.recurrences);
    let pick = |rng: &mut StdRng, pool: &[ValueId]| -> ValueId {
        let window = pool.len().min(6);
        if rng.gen_bool(0.85) {
            pool[pool.len() - 1 - rng.gen_range(0..window)]
        } else {
            pool[rng.gen_range(0..pool.len())]
        }
    };
    for _ in 0..arith {
        let x = pick(&mut rng, &pool);
        let y = pick(&mut rng, &pool);
        let z = pick(&mut rng, &pool);
        let v = if rng.gen_bool(params.div_fraction.clamp(0.0, 1.0)) {
            b.fdiv(x, y)
        } else {
            match rng.gen_range(0..3) {
                0 => b.fadd(x, y),
                1 => b.fmul(x, y),
                _ => b.fmadd(x, y, z),
            }
        };
        pool.push(v);
    }

    // Close recurrences with fresh combining ops so each forms a cycle.
    for (i, c) in carried.into_iter().enumerate() {
        let x = pool[rng.gen_range(0..pool.len())];
        let upd = b.fadd(c.value(), x);
        b.close(c, upd, 1);
        let _ = i;
        pool.push(upd);
    }

    // Stores of late values to distinct locations.
    for sidx in 0..target_stores.max(1) {
        let a = arrays[rng.gen_range(0..arrays.len())];
        let v = pool[pool.len() - 1 - (sidx % 3)];
        b.store(a, -((sidx as i64 + 1) * 8 * 1024), 8, v);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_loops_validate_across_sizes_and_seeds() {
        for &ops in &[10usize, 30, 60, 116] {
            for seed in 0..5 {
                let lp = random_loop(
                    &GenParams {
                        ops,
                        ..GenParams::default()
                    },
                    seed,
                );
                assert_eq!(lp.validate(), Ok(()), "ops={ops} seed={seed}");
                assert!(lp.len() >= ops / 2, "ops={ops} got {}", lp.len());
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let p = GenParams::default();
        assert_eq!(random_loop(&p, 7), random_loop(&p, 7));
        assert_ne!(random_loop(&p, 7), random_loop(&p, 8));
    }

    #[test]
    fn recurrence_count_respected() {
        let lp = random_loop(
            &GenParams {
                recurrences: 3,
                ops: 40,
                ..GenParams::default()
            },
            1,
        );
        let carried_uses = lp
            .ops()
            .iter()
            .flat_map(|o| o.operands.iter())
            .filter(|operand| operand.distance >= 1)
            .count();
        assert!(carried_uses >= 3);
    }

    #[test]
    fn generated_loops_pipeline() {
        let m = swp_machine::Machine::r8000();
        for seed in 0..3 {
            let lp = random_loop(&GenParams::default(), seed);
            let r = swp_heur::pipeline(&lp, &m, &swp_heur::HeurOptions::default());
            assert!(r.is_ok(), "seed {seed}: {:?}", r.err());
        }
    }
}
