//! SPEC92 floating-point-like benchmark suites.
//!
//! The paper evaluates on the 14 SPEC92fp benchmarks. We cannot ship
//! SPEC's sources, so each benchmark is modeled as a small weighted set of
//! inner loops whose *shape* — operation mix, memory pattern, trip count,
//! recurrences, indirection, precision — follows what the paper (and the
//! public record of these codes) says dominates its runtime. All paper
//! comparisons are relative (enabled/disabled, ILP/heuristic), which these
//! shapes preserve; see DESIGN.md §2 for the substitution argument.

use swp_ir::{Loop, LoopBuilder};

/// One weighted inner loop of a benchmark suite.
#[derive(Debug, Clone)]
pub struct WeightedLoop {
    /// Loop name.
    pub name: String,
    /// The body.
    pub body: Loop,
    /// Fraction of benchmark time spent here (weights sum to ~1).
    pub weight: f64,
    /// Typical trip count.
    pub trip: u64,
}

/// A benchmark suite: a named set of weighted loops.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Benchmark name (SPEC92fp).
    pub name: &'static str,
    /// Its hot loops.
    pub loops: Vec<WeightedLoop>,
}

impl Suite {
    /// Weighted-harmonic aggregate of per-loop cycle counts into a single
    /// benchmark time (arbitrary units): `Σ weight·cycles_per_element`.
    pub fn aggregate_time(&self, per_loop_cycles: &[f64]) -> f64 {
        assert_eq!(per_loop_cycles.len(), self.loops.len());
        self.loops
            .iter()
            .zip(per_loop_cycles)
            .map(|(l, &c)| l.weight * c / l.trip as f64)
            .sum()
    }
}

fn wl(name: &str, body: Loop, weight: f64, trip: u64) -> WeightedLoop {
    debug_assert_eq!(body.validate(), Ok(()));
    WeightedLoop {
        name: name.to_owned(),
        body,
        weight,
        trip,
    }
}

const W: i64 = 8;
const S: i64 = 4; // single-precision element

/// Build all 14 SPEC92fp-like suites, in the paper's Figure 2 order.
pub fn spec_suites() -> Vec<Suite> {
    vec![
        spice2g6(),
        doduc(),
        mdljdp2(),
        wave5(),
        tomcatv(),
        ora(),
        alvinn(),
        ear(),
        mdljsp2(),
        swm256(),
        su2cor(),
        hydro2d(),
        nasa7(),
        fpppp(),
    ]
}

/// spice2g6: sparse-matrix circuit simulation — short, indirect loops that
/// pipelining barely helps (the paper's worst case for the pipeliner).
fn spice2g6() -> Suite {
    let mut b = LoopBuilder::new("spice.sparse_axpy");
    let idx = b.array("idx", 8);
    let a = b.array("a", 8);
    let x = b.array("x", 8);
    let i = b.load_i(idx, 0, W);
    let av = b.load(a, 0, W);
    let xv = b.load_indirect(x, i);
    let r = b.fmadd(av, xv, xv);
    b.store_indirect(x, i, r);
    let sparse = b.finish();

    let mut b = LoopBuilder::new("spice.scan");
    let v = b.array("v", 8);
    let g = b.array("g", 8);
    let vv = b.load(v, 0, W);
    let gv = b.load(g, 0, W);
    let p = b.fmul(vv, gv);
    b.store(g, 0, W, p);
    let scan = b.finish();

    Suite {
        name: "spice2g6",
        loops: vec![
            wl("sparse_axpy", sparse, 0.6, 24),
            wl("scan", scan, 0.4, 40),
        ],
    }
}

/// doduc: Monte Carlo nuclear reactor kinetics — small branchy loops with
/// divides.
fn doduc() -> Suite {
    use swp_ir::hir::{HExpr, HStmt, HirLoop};
    let x = HExpr::load("x", 0, 8);
    let cond = HirLoop::new(
        "doduc.branchy",
        vec![
            HStmt::let_("s", HExpr::div(x.clone(), HExpr::invariant("d"))),
            HStmt::if_(
                HExpr::lt(HExpr::local("s"), HExpr::invariant("lim")),
                vec![HStmt::let_(
                    "r",
                    HExpr::mul(HExpr::local("s"), HExpr::invariant("a")),
                )],
                vec![HStmt::let_("r", x)],
            ),
            HStmt::store("y", 0, 8, HExpr::local("r")),
        ],
    )
    .lower();

    let mut b = LoopBuilder::new("doduc.kinetics");
    let u = b.array("u", 8);
    let v = b.array("v", 8);
    let uv = b.load(u, 0, W);
    let vv = b.load(v, 0, W);
    let q = b.fdiv(uv, vv);
    let r = b.fmadd(q, uv, vv);
    b.store(u, 0, W, r);
    let kin = b.finish();

    Suite {
        name: "doduc",
        loops: vec![wl("branchy", cond, 0.5, 60), wl("kinetics", kin, 0.5, 80)],
    }
}

/// mdljdp2: molecular dynamics (double precision) — the paper's §4.3
/// describes its hot loop: 95 instructions, only 16 memory references,
/// with an indirection that makes banks unknowable.
fn mdljdp2() -> Suite {
    let mut b = LoopBuilder::new("mdljdp2.force");
    let idx = b.array("nbr", 8);
    let pos = b.array("pos", 8);
    let frc = b.array("frc", 8);
    let cut = b.invariant_f("cutoff");
    // 3 coordinate gathers through the neighbor list (indirect).
    let j = b.load_i(idx, 0, W);
    let xj = b.load_indirect(pos, j);
    let xi = b.load(pos, 0, 3 * W);
    let yi = b.load(pos, W, 3 * W);
    let zi = b.load(pos, 2 * W, 3 * W);
    // Large arithmetic body: deltas, r², then three per-coordinate
    // potential ladders evaluated in parallel (~70 FP ops). Each ladder
    // consumes only values a round or two old, so lifetimes stay bounded —
    // the register behaviour real MD force loops have.
    let dx = b.fsub(xi, xj);
    let dy = b.fsub(yi, xj);
    let dz = b.fsub(zi, xj);
    let r2a = b.fmul(dx, dx);
    let r2b = b.fmadd(dy, dy, r2a);
    let r2 = b.fmadd(dz, dz, r2b);
    let inv = b.fdiv(cut, r2);
    let mut forces = Vec::new();
    for &d in &[dx, dy, dz] {
        let mut a = b.fmul(inv, d);
        let mut c = b.fmadd(a, a, d);
        for _ in 0..5 {
            let t = b.fmadd(a, c, a);
            let u = b.fmul(t, c);
            c = b.fadd(u, t);
            a = b.fmadd(c, u, t);
        }
        forces.push(b.fmul(a, c));
    }
    let (f1, f2, f3) = (forces[0], forces[1], forces[2]);
    let fx = b.load(frc, 0, 3 * W);
    let fy = b.load(frc, W, 3 * W);
    let fz = b.load(frc, 2 * W, 3 * W);
    let nfx = b.fadd(fx, f1);
    let nfy = b.fadd(fy, f2);
    let nfz = b.fadd(fz, f3);
    b.store(frc, 0, 3 * W, nfx);
    b.store(frc, W, 3 * W, nfy);
    b.store(frc, 2 * W, 3 * W, nfz);
    let force = b.finish();

    Suite {
        name: "mdljdp2",
        loops: vec![wl("force", force, 1.0, 128)],
    }
}

/// wave5: plasma simulation — several distinct loops (the paper notes no
/// single heuristic wins all of them): a particle push (indirect), a field
/// stencil, and a reduction.
fn wave5() -> Suite {
    let mut b = LoopBuilder::new("wave5.push");
    let ig = b.array("ig", 8);
    let e = b.array("e", 8);
    let xp = b.array("xp", 8);
    let vpar = b.array("vp", 8);
    let i = b.load_i(ig, 0, W);
    let ev = b.load_indirect(e, i);
    let x = b.load(xp, 0, W);
    let v = b.load(vpar, 0, W);
    let nv = b.fmadd(ev, v, v);
    let nx = b.fadd(x, nv);
    b.store(xp, 0, W, nx);
    b.store(vpar, 0, W, nv);
    let push = b.finish();

    let mut b = LoopBuilder::new("wave5.field");
    let f = b.array("f", 8);
    let g = b.array("g", 8);
    let c = b.invariant_f("c");
    let fm = b.load(f, -W, W);
    let f0 = b.load(f, 0, W);
    let fp = b.load(f, W, W);
    let lap0 = b.fadd(fm, fp);
    let lap = b.fsub(lap0, f0);
    let r = b.fmadd(c, lap, f0);
    b.store(g, 0, W, r);
    let field = b.finish();

    let mut b = LoopBuilder::new("wave5.energy");
    let u = b.array("u", 8);
    let s = b.carried_f("s");
    let uv = b.load(u, 0, W);
    let s1 = b.fmadd(uv, uv, s.value());
    b.close(s, s1, 1);
    let energy = b.finish();

    Suite {
        name: "wave5",
        loops: vec![
            wl("push", push, 0.4, 500),
            wl("field", field, 0.4, 400),
            wl("energy", energy, 0.2, 1000),
        ],
    }
}

/// tomcatv: mesh generation — long-trip-count, memory-bound stencils,
/// including the "large N3 loop … far beyond the reach of the integrated
/// formulation" (§3.3). Trip count 300 (§4.5).
fn tomcatv() -> Suite {
    // The big N3 body: two 9-point stencils over x and y plus residuals
    // (~45 ops, 12 memory refs).
    let mut b = LoopBuilder::new("tomcatv.n3");
    let row = 513 * W;
    let x = b.array("x", 8);
    let y = b.array("y", 8);
    let rx = b.array("rx", 8);
    let ry = b.array("ry", 8);
    let a = b.invariant_f("a");
    let bb = b.invariant_f("b");
    let c = b.invariant_f("c");
    let xw = b.load(x, -W, W);
    let xe = b.load(x, W, W);
    let xn = b.load(x, -row, W);
    let xs = b.load(x, row, W);
    let x0 = b.load(x, 0, W);
    let yw = b.load(y, -W, W);
    let ye = b.load(y, W, W);
    let yn = b.load(y, -row, W);
    let ys = b.load(y, row, W);
    let y0 = b.load(y, 0, W);
    let dxx0 = b.fadd(xw, xe);
    let dxx = b.fsub(dxx0, x0);
    let dxy0 = b.fadd(xn, xs);
    let dxy = b.fsub(dxy0, x0);
    let dyx0 = b.fadd(yw, ye);
    let dyx = b.fsub(dyx0, y0);
    let dyy0 = b.fadd(yn, ys);
    let dyy = b.fsub(dyy0, y0);
    let t1 = b.fmul(a, dxx);
    let t2 = b.fmadd(bb, dxy, t1);
    let t3 = b.fmul(dyx, dxy);
    let t4 = b.fmadd(c, dyy, t3);
    let pxx = b.fmul(t2, t4);
    let qxx0 = b.fmul(t2, dyx);
    let qxx = b.fmadd(t4, dxx, qxx0);
    let rxv = b.fsub(pxx, x0);
    let ryv = b.fsub(qxx, y0);
    b.store(rx, 0, W, rxv);
    b.store(ry, 0, W, ryv);
    let n3 = b.finish();

    // The SOR-ish update with a carried dependence.
    let mut b = LoopBuilder::new("tomcatv.solve");
    let rxx = b.array("rx", 8);
    let d = b.array("d", 8);
    let s = b.carried_f("prev");
    let rv = b.load(rxx, 0, W);
    let dv = b.load(d, 0, W);
    let t = b.fmul(s.value(), dv);
    let n = b.fsub(rv, t);
    b.close(s, n, 1);
    b.store(d, W, W, n);
    let solve = b.finish();

    Suite {
        name: "tomcatv",
        loops: vec![wl("n3", n3, 0.7, 300), wl("solve", solve, 0.3, 300)],
    }
}

/// ora: optical ray tracing — sqrt/divide chains, almost no memory.
fn ora() -> Suite {
    let mut b = LoopBuilder::new("ora.trace");
    let q = b.array("q", 8);
    let a = b.invariant_f("a");
    let c = b.invariant_f("c");
    let qv = b.load(q, 0, W);
    let t1 = b.fmadd(qv, a, c);
    let s1 = b.fsqrt(t1);
    let t2 = b.fdiv(qv, s1);
    let t3 = b.fmadd(t2, t2, a);
    let s2 = b.fsqrt(t3);
    let r = b.fadd(s1, s2);
    b.store(q, 0, W, r);
    Suite {
        name: "ora",
        loops: vec![wl("trace", b.finish(), 1.0, 200)],
    }
}

/// alvinn: neural-net training — §4.3: "nearly 100% of its time in two
/// memory bound loops that process consecutive single precision vector
/// elements", one of them a single-precision dot product; trips > 1000.
/// Arrays are even-aligned so natural pairings hit the same bank — the
/// bank heuristic's showcase.
fn alvinn() -> Suite {
    // Dot product over singles, 4x unrolled with interleaved accumulators
    // (what MIPSpro's recurrence interleaving produces). The body touches
    // v[i..i+4): v[i] and v[i+1] share a double-word (same bank!), while
    // v[i] / v[i+2] are the known even-odd pair §4.3 says the bank
    // heuristic must construct. Memory-bound: 8 refs at II 4.
    let mut b = LoopBuilder::new("alvinn.dot");
    let v = b.array("v", 4);
    let u = b.array("u", 4);
    let mut last = Vec::new();
    for k in 0..4i64 {
        let s = b.carried_f(&format!("s{k}"));
        let vk = b.load(v, k * S, 4 * S);
        let uk = b.load(u, k * S, 4 * S);
        let m = b.fmadd(vk, uk, s.value());
        b.close(s, m, 1);
        last.push(m);
    }
    let dot = b.finish();

    // Weight update: 12 references per iteration (memory bound at II 6).
    let mut b = LoopBuilder::new("alvinn.update");
    let w = b.array("w", 4);
    let g = b.array("g", 4);
    let eta = b.invariant_f("eta");
    for k in 0..4i64 {
        let wk = b.load(w, k * S, 4 * S);
        let gk = b.load(g, k * S, 4 * S);
        let n = b.fmadd(eta, gk, wk);
        b.store(w, k * S, 4 * S, n);
    }
    let update = b.finish();

    Suite {
        name: "alvinn",
        loops: vec![wl("dot", dot, 0.55, 1280), wl("update", update, 0.45, 1280)],
    }
}

/// ear: human-ear model — single-precision filter cascades (madd chains
/// with a short recurrence).
fn ear() -> Suite {
    let mut b = LoopBuilder::new("ear.filter");
    let x = b.array("x", 4);
    let y = b.array("y", 4);
    let b0 = b.invariant_f("b0");
    let b1 = b.invariant_f("b1");
    let a1 = b.invariant_f("a1");
    let s = b.carried_f("state");
    let xv = b.load(x, 0, S);
    let t0 = b.fmul(b0, xv);
    let t1 = b.fmadd(a1, s.value(), t0);
    let st = b.fmadd(b1, xv, t1);
    b.close(s, st, 1);
    b.store(y, 0, S, t1);
    let filt = b.finish();

    let mut b = LoopBuilder::new("ear.energy");
    let z = b.array("z", 4);
    let o = b.array("o", 4);
    let zv = b.load(z, 0, S);
    let e = b.fmul(zv, zv);
    b.store(o, 0, S, e);
    let energy = b.finish();

    Suite {
        name: "ear",
        loops: vec![wl("filter", filt, 0.7, 700), wl("energy", energy, 0.3, 700)],
    }
}

/// mdljsp2: mdljdp2's single-precision sibling — same force-loop shape,
/// single-precision arrays.
fn mdljsp2() -> Suite {
    let mut b = LoopBuilder::new("mdljsp2.force");
    let idx = b.array("nbr", 8);
    let pos = b.array("pos", 4);
    let frc = b.array("frc", 4);
    let cut = b.invariant_f("cutoff");
    let j = b.load_i(idx, 0, W);
    let xj = b.load_indirect(pos, j);
    let xi = b.load(pos, 0, 3 * S);
    let yi = b.load(pos, S, 3 * S);
    let zi = b.load(pos, 2 * S, 3 * S);
    let dx = b.fsub(xi, xj);
    let dy = b.fsub(yi, xj);
    let dz = b.fsub(zi, xj);
    let r2a = b.fmul(dx, dx);
    let r2b = b.fmadd(dy, dy, r2a);
    let r2 = b.fmadd(dz, dz, r2b);
    let inv = b.fdiv(cut, r2);
    let mut acc = b.fmul(inv, dx);
    let mut c = b.fmadd(acc, acc, dy);
    for _ in 0..6 {
        let t = b.fmadd(acc, c, acc);
        c = b.fmul(t, c);
        acc = b.fmadd(c, t, t);
    }
    let f1 = b.fmul(acc, c);
    let fx = b.load(frc, 0, 3 * S);
    let nfx = b.fadd(fx, f1);
    b.store(frc, 0, 3 * S, nfx);
    Suite {
        name: "mdljsp2",
        loops: vec![wl("force", b.finish(), 1.0, 128)],
    }
}

/// swm256: shallow water — wide, fully parallel stencil updates over many
/// arrays, long trips (256² grid), memory bound.
fn swm256() -> Suite {
    let mut b = LoopBuilder::new("swm256.calc1");
    let row = 257 * W;
    let u = b.array("u", 8);
    let v = b.array("v", 8);
    let p = b.array("p", 8);
    let cu = b.array("cu", 8);
    let cv = b.array("cv", 8);
    let z = b.array("z", 8);
    let h = b.array("h", 8);
    let fsdx = b.invariant_f("fsdx");
    let u0 = b.load(u, 0, W);
    let um = b.load(u, -W, W);
    let v0 = b.load(v, 0, W);
    let vn = b.load(v, -row, W);
    let p0 = b.load(p, 0, W);
    let pe = b.load(p, W, W);
    let pn = b.load(p, row, W);
    let pp = b.fadd(p0, pe);
    let cuv = b.fmul(pp, u0);
    b.store(cu, 0, W, cuv);
    let pq = b.fadd(p0, pn);
    let cvv = b.fmul(pq, v0);
    b.store(cv, 0, W, cvv);
    let du = b.fsub(u0, um);
    let dv = b.fsub(v0, vn);
    let vort0 = b.fadd(du, dv);
    let vort = b.fmul(fsdx, vort0);
    let den0 = b.fadd(pp, pq);
    let zv = b.fdiv(vort, den0);
    b.store(z, 0, W, zv);
    let u2 = b.fmul(u0, u0);
    let v2 = b.fmul(v0, v0);
    let ke0 = b.fadd(u2, v2);
    let hv = b.fmadd(ke0, fsdx, p0);
    b.store(h, 0, W, hv);
    Suite {
        name: "swm256",
        loops: vec![wl("calc1", b.finish(), 1.0, 256)],
    }
}

/// su2cor: quantum chromodynamics — complex-arithmetic madd pairs (each
/// complex multiply = 4 mul + 2 add shapes).
fn su2cor() -> Suite {
    let mut b = LoopBuilder::new("su2cor.cmul");
    let a = b.array("a", 8);
    let c = b.array("c", 8);
    let ar = b.load(a, 0, 2 * W);
    let ai = b.load(a, W, 2 * W);
    let br2 = b.load(c, 0, 2 * W);
    let bi = b.load(c, W, 2 * W);
    let rr0 = b.fmul(ar, br2);
    let ii = b.fmul(ai, bi);
    let rr = b.fsub(rr0, ii);
    let ri0 = b.fmul(ar, bi);
    let ri = b.fmadd(ai, br2, ri0);
    b.store(c, 0, 2 * W, rr);
    b.store(c, W, 2 * W, ri);
    let cmul = b.finish();

    let mut b = LoopBuilder::new("su2cor.gather");
    let idx = b.array("map", 8);
    let fld = b.array("fld", 8);
    let out = b.array("out", 8);
    let i = b.load_i(idx, 0, W);
    let f = b.load_indirect(fld, i);
    let g = b.load(out, 0, W);
    let sum = b.fadd(f, g);
    b.store(out, 0, W, sum);
    let gather = b.finish();

    Suite {
        name: "su2cor",
        loops: vec![wl("cmul", cmul, 0.7, 512), wl("gather", gather, 0.3, 256)],
    }
}

/// hydro2d: Navier-Stokes hydrodynamics — k18-like stencils, long trips.
fn hydro2d() -> Suite {
    let mut b = LoopBuilder::new("hydro2d.flux");
    let row = 402 * W;
    let ro = b.array("ro", 8);
    let en = b.array("en", 8);
    let fx = b.array("fx", 8);
    let gam = b.invariant_f("gam");
    let r0 = b.load(ro, 0, W);
    let re = b.load(ro, W, W);
    let rn = b.load(ro, row, W);
    let e0 = b.load(en, 0, W);
    let ee = b.load(en, W, W);
    let avg0 = b.fadd(r0, re);
    let avg1 = b.fadd(avg0, rn);
    let p0 = b.fmul(gam, e0);
    let pe = b.fmul(gam, ee);
    let dp = b.fsub(pe, p0);
    let f = b.fmadd(avg1, dp, p0);
    b.store(fx, 0, W, f);
    Suite {
        name: "hydro2d",
        loops: vec![wl("flux", b.finish(), 1.0, 400)],
    }
}

/// nasa7: the seven NASA kernels — represented by its matmul inner loop
/// and an FFT butterfly.
fn nasa7() -> Suite {
    let mut b = LoopBuilder::new("nasa7.mxm");
    let a = b.array("a", 8);
    let bq = b.array("b", 8);
    let s = b.carried_f("c");
    let av = b.load(a, 0, W);
    let bv = b.load(bq, 0, 64 * W);
    let s1 = b.fmadd(av, bv, s.value());
    b.close(s, s1, 1);
    let mxm = b.finish();

    let mut b = LoopBuilder::new("nasa7.fft");
    let re = b.array("re", 8);
    let im = b.array("im", 8);
    let wr = b.invariant_f("wr");
    let wi = b.invariant_f("wi");
    let xr = b.load(re, 0, 2 * W);
    let xi = b.load(im, 0, 2 * W);
    let yr = b.load(re, W, 2 * W);
    let yi = b.load(im, W, 2 * W);
    let tr0 = b.fmul(wr, yr);
    let tr = b.fmadd(wi, yi, tr0);
    let ti0 = b.fmul(wr, yi);
    let ti = b.fsub(ti0, tr0);
    let or1 = b.fadd(xr, tr);
    let oi1 = b.fadd(xi, ti);
    let or2 = b.fsub(xr, tr);
    let oi2 = b.fsub(xi, ti);
    b.store(re, 0, 2 * W, or1);
    b.store(im, 0, 2 * W, oi1);
    b.store(re, W, 2 * W, or2);
    b.store(im, W, 2 * W, oi2);
    let fft = b.finish();

    Suite {
        name: "nasa7",
        loops: vec![wl("mxm", mxm, 0.6, 64), wl("fft", fft, 0.4, 256)],
    }
}

/// fpppp: quantum chemistry two-electron integrals — one enormous
/// straight-line FP body with few memory references (~90 ops).
fn fpppp() -> Suite {
    let mut b = LoopBuilder::new("fpppp.fock");
    let xij = b.array("xij", 8);
    let out = b.array("out", 8);
    let c1 = b.invariant_f("c1");
    let c2 = b.invariant_f("c2");
    let v0 = b.load(xij, 0, 4 * W);
    let v1 = b.load(xij, W, 4 * W);
    let v2 = b.load(xij, 2 * W, 4 * W);
    let v3 = b.load(xij, 3 * W, 4 * W);
    let mut a = b.fmul(v0, v1);
    let mut c = b.fmadd(v2, v3, a);
    for i in 0..20 {
        let t1 = b.fmadd(a, c1, c);
        let t2 = b.fmul(c, c2);
        let t3 = b.fadd(t1, t2);
        let t4 = b.fmadd(t3, if i % 2 == 0 { v0 } else { v2 }, a);
        a = b.fmul(t3, t4);
        c = b.fadd(t4, c);
    }
    let r = b.fadd(a, c);
    b.store(out, 0, W, r);
    Suite {
        name: "fpppp",
        loops: vec![wl("fock", b.finish(), 1.0, 96)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::Machine;

    #[test]
    fn fourteen_suites_with_valid_loops() {
        let suites = spec_suites();
        assert_eq!(suites.len(), 14);
        for s in &suites {
            assert!(!s.loops.is_empty(), "{}", s.name);
            let total: f64 = s.loops.iter().map(|l| l.weight).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} weights sum to {total}",
                s.name
            );
            for l in &s.loops {
                assert_eq!(l.body.validate(), Ok(()), "{}::{}", s.name, l.name);
            }
        }
    }

    #[test]
    fn mdljdp2_shape_matches_the_paper() {
        // §4.3: "it has only 16 memory references out of 95 instructions"
        // and indirection. We demand the same flavor: big body, sparse
        // memory, at least one indirect ref.
        let s = spec_suites()
            .into_iter()
            .find(|s| s.name == "mdljdp2")
            .expect("present");
        let body = &s.loops[0].body;
        let mem = body.mem_ops().count();
        assert!(body.len() >= 80, "body has {} ops", body.len());
        assert!(mem <= body.len() / 5, "{mem} memory refs of {}", body.len());
        assert!(body.mem_ops().any(|o| o.mem.is_some_and(|m| m.indirect)));
    }

    #[test]
    fn alvinn_is_memory_bound_single_precision() {
        let s = spec_suites()
            .into_iter()
            .find(|s| s.name == "alvinn")
            .expect("present");
        for l in &s.loops {
            let mem = l.body.mem_ops().count();
            assert!(mem * 2 >= l.body.len(), "{} is memory bound", l.name);
            assert!(l.trip >= 1000, "long trip counts");
            for a in l.body.arrays() {
                assert_eq!(a.elem_bytes, 4, "single precision");
            }
        }
    }

    #[test]
    fn every_suite_loop_pipelines() {
        let m = Machine::r8000();
        for s in spec_suites() {
            for l in &s.loops {
                let r = swp_heur::pipeline(&l.body, &m, &swp_heur::HeurOptions::default());
                assert!(r.is_ok(), "{}::{} failed: {:?}", s.name, l.name, r.err());
            }
        }
    }

    #[test]
    fn aggregate_time_weights_correctly() {
        let s = spec_suites()
            .into_iter()
            .find(|s| s.name == "alvinn")
            .expect("present");
        let t = s.aggregate_time(&[1280.0, 1280.0]);
        assert!((t - 1.0).abs() < 1e-9, "1 cycle per element → 1.0, got {t}");
    }
}
