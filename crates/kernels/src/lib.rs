//! Benchmark workloads for the Showdown reproduction.
//!
//! - [`livermore`]: all 24 Livermore loops (Figure 6/7's workload),
//! - [`spec_suites`]: 14 SPEC92fp-like suites (Figures 2-5's workload;
//!   see DESIGN.md for the substitution rationale),
//! - [`gen`]: a parameterized random-loop generator for the §5.0
//!   loop-size scalability experiment.
//!
//! # Examples
//!
//! ```
//! let kernels = swp_kernels::livermore();
//! assert_eq!(kernels.len(), 24);
//! let suites = swp_kernels::spec_suites();
//! assert_eq!(suites.len(), 14);
//! ```

pub mod gen;
mod livermore;
mod spec;

pub use gen::{random_loop, GenParams};
pub use livermore::{livermore, Kernel};
pub use spec::{spec_suites, Suite, WeightedLoop};
