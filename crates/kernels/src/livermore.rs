//! The 24 Livermore loops, translated to the loop IR.
//!
//! Each kernel reproduces the published Fortran's *inner loop shape*: the
//! operation mix, memory reference pattern (offsets/strides in bytes of
//! double-precision elements), recurrences, and conditional structure.
//! Where the original uses intrinsics we have no class for (`EXP` in
//! kernel 22), a documented polynomial substitution with the same op
//! count shape is used. Trip counts follow the benchmark's long/short
//! spans.

use swp_ir::hir::{HExpr, HStmt, HirLoop};
use swp_ir::{Loop, LoopBuilder, ValueId};

/// One Livermore kernel with its benchmark trip counts.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel number (1-24).
    pub number: u32,
    /// Conventional name.
    pub name: &'static str,
    /// The loop body.
    pub body: Loop,
    /// Short-span trip count.
    pub short_trip: u64,
    /// Long-span trip count.
    pub long_trip: u64,
}

const W: i64 = 8; // double-precision element size in bytes

fn k(number: u32, name: &'static str, body: Loop, short_trip: u64, long_trip: u64) -> Kernel {
    debug_assert_eq!(body.validate(), Ok(()));
    Kernel {
        number,
        name,
        body,
        short_trip,
        long_trip,
    }
}

/// Build all 24 kernels.
pub fn livermore() -> Vec<Kernel> {
    vec![
        k(1, "hydro fragment", k1(), 27, 1001),
        k(2, "ICCG excerpt", k2(), 15, 101),
        k(3, "inner product", k3(), 27, 1001),
        k(4, "banded linear equations", k4(), 20, 600),
        k(5, "tri-diagonal elimination", k5(), 27, 1001),
        k(6, "general linear recurrence", k6(), 10, 64),
        k(7, "equation of state", k7(), 21, 995),
        k(8, "ADI integration", k8(), 10, 100),
        k(9, "integrate predictors", k9(), 15, 101),
        k(10, "difference predictors", k10(), 15, 101),
        k(11, "first sum", k11(), 27, 1001),
        k(12, "first difference", k12(), 27, 1000),
        k(13, "2-D PIC", k13(), 32, 128),
        k(14, "1-D PIC", k14(), 32, 1001),
        k(15, "casual Fortran", k15(), 32, 101),
        k(16, "Monte Carlo search", k16(), 32, 75),
        k(17, "implicit conditional", k17(), 32, 101),
        k(18, "2-D explicit hydro", k18(), 25, 100),
        k(19, "general linear recurrence II", k19(), 32, 101),
        k(20, "discrete ordinates transport", k20(), 25, 1000),
        k(21, "matrix product", k21(), 25, 101),
        k(22, "Planckian distribution", k22(), 25, 101),
        k(23, "2-D implicit hydro", k23(), 25, 100),
        k(24, "first minimum", k24(), 27, 1001),
    ]
}

/// K1: `x[k] = q + y[k]·(r·z[k+10] + t·z[k+11])`.
fn k1() -> Loop {
    let mut b = LoopBuilder::new("lk1");
    let q = b.invariant_f("q");
    let r = b.invariant_f("r");
    let t = b.invariant_f("t");
    let y = b.array("y", 8);
    let z = b.array("z", 8);
    let x = b.array("x", 8);
    let z10 = b.load(z, 10 * W, W);
    let z11 = b.load(z, 11 * W, W);
    let yk = b.load(y, 0, W);
    let rz = b.fmul(r, z10);
    let inner = b.fmadd(t, z11, rz);
    let prod = b.fmul(yk, inner);
    let res = b.fadd(q, prod);
    b.store(x, 0, W, res);
    b.finish()
}

/// K2: ICCG inner excerpt — `x[i] = x[i] − v[i]·x[i−1]` style first-order
/// recurrence carried through memory and a register.
fn k2() -> Loop {
    let mut b = LoopBuilder::new("lk2");
    let v = b.array("v", 8);
    let y = b.array("y", 8);
    let x = b.array("x", 8);
    let vi = b.load(v, 0, W);
    let yi = b.load(y, 0, W);
    let s = b.carried_f("xprev");
    let prod = b.fmul(vi, s.value());
    let xi = b.fsub(yi, prod);
    b.close(s, xi, 1);
    b.store(x, 0, W, xi);
    b.finish()
}

/// K3: inner product `q += z[k]·x[k]`.
fn k3() -> Loop {
    let mut b = LoopBuilder::new("lk3");
    let z = b.array("z", 8);
    let x = b.array("x", 8);
    let q = b.carried_f("q");
    let zk = b.load(z, 0, W);
    let xk = b.load(x, 0, W);
    let q1 = b.fmadd(zk, xk, q.value());
    b.close(q, q1, 1);
    b.finish()
}

/// K4: banded linear equations — strided dot product
/// `xz[...] −= Σ y[j]·xz[j]` modeled at its inner stride-5 reduction.
fn k4() -> Loop {
    let mut b = LoopBuilder::new("lk4");
    let y = b.array("y", 8);
    let xz = b.array("xz", 8);
    let s = b.carried_f("s");
    let yj = b.load(y, 0, 5 * W);
    let xj = b.load(xz, 0, 5 * W);
    let s1 = b.fmadd(yj, xj, s.value());
    b.close(s, s1, 1);
    b.finish()
}

/// K5: tri-diagonal elimination `x[i] = z[i]·(y[i] − x[i−1])`.
fn k5() -> Loop {
    let mut b = LoopBuilder::new("lk5");
    let z = b.array("z", 8);
    let y = b.array("y", 8);
    let x = b.array("x", 8);
    let zi = b.load(z, 0, W);
    let yi = b.load(y, 0, W);
    let prev = b.load(x, -W, W); // x[i-1] written last iteration
    let diff = b.fsub(yi, prev);
    let xi = b.fmul(zi, diff);
    b.store(x, 0, W, xi);
    b.finish()
}

/// K6: general linear recurrence `w[i] += b[k]·w[i−k]` — inner loop with a
/// carried partial sum and a strided access to earlier w values.
fn k6() -> Loop {
    let mut b = LoopBuilder::new("lk6");
    let bb = b.array("b", 8);
    let w = b.array("w", 8);
    let s = b.carried_f("s");
    let bk = b.load(bb, 0, W);
    let wk = b.load(w, -4 * W, W);
    let s1 = b.fmadd(bk, wk, s.value());
    b.close(s, s1, 1);
    b.finish()
}

/// K7: equation of state fragment — the classic madd ladder.
fn k7() -> Loop {
    let mut b = LoopBuilder::new("lk7");
    let r = b.invariant_f("r");
    let t = b.invariant_f("t");
    let q = b.invariant_f("q");
    let u = b.array("u", 8);
    let y = b.array("y", 8);
    let z = b.array("z", 8);
    let x = b.array("x", 8);
    let uk = b.load(u, 0, W);
    let u1 = b.load(u, W, W);
    let u2 = b.load(u, 2 * W, W);
    let u3 = b.load(u, 3 * W, W);
    let u4 = b.load(u, 4 * W, W);
    let u5 = b.load(u, 5 * W, W);
    let u6 = b.load(u, 6 * W, W);
    let yk = b.load(y, 0, W);
    let zk = b.load(z, 0, W);
    let ry = b.fmadd(r, yk, zk); // z + r·y
    let a = b.fmadd(r, ry, uk); // u + r·(z + r·y)
    let qu4 = b.fmadd(q, u4, u5); // u5 + q·u4
    let qq = b.fmadd(q, qu4, u6); // u6 + q·(…)
    let ru1 = b.fmadd(r, u1, u2); // u2 + r·u1
    let rr = b.fmadd(r, ru1, u3); // u3 + r·(…)
    let tq = b.fmadd(t, qq, rr); // rr + t·qq — inner of the t·(…) term
    let res = b.fmadd(t, tq, a);
    b.store(x, 0, W, res);
    b.finish()
}

/// K8: ADI integration — a wide multi-array stencil body.
fn k8() -> Loop {
    let mut b = LoopBuilder::new("lk8");
    let a11 = b.invariant_f("a11");
    let a12 = b.invariant_f("a12");
    let a13 = b.invariant_f("a13");
    let a21 = b.invariant_f("a21");
    let a22 = b.invariant_f("a22");
    let a23 = b.invariant_f("a23");
    let du1 = b.array("du1", 8);
    let du2 = b.array("du2", 8);
    let du3 = b.array("du3", 8);
    let u1 = b.array("u1", 8);
    let u2 = b.array("u2", 8);
    let u3 = b.array("u3", 8);
    let d1 = b.load(du1, 0, W);
    let d2 = b.load(du2, 0, W);
    let d3 = b.load(du3, 0, W);
    let v1 = b.load(u1, 0, W);
    let v2 = b.load(u2, 0, W);
    let v3 = b.load(u3, 0, W);
    let t1 = b.fmul(a11, d1);
    let t2 = b.fmadd(a12, d2, t1);
    let t3 = b.fmadd(a13, d3, t2);
    let r1 = b.fadd(v1, t3);
    b.store(u1, W, W, r1);
    let s1 = b.fmul(a21, d1);
    let s2 = b.fmadd(a22, d2, s1);
    let s3 = b.fmadd(a23, d3, s2);
    let r2 = b.fadd(v2, s3);
    b.store(u2, W, W, r2);
    let w1 = b.fmul(a13, d1);
    let w2 = b.fmadd(a21, d2, w1);
    let w3 = b.fmadd(a22, d3, w2);
    let r3 = b.fadd(v3, w3);
    b.store(u3, W, W, r3);
    b.finish()
}

/// K9: integrate predictors — a 10-term coefficient ladder over one row.
fn k9() -> Loop {
    let mut b = LoopBuilder::new("lk9");
    let px = b.array("px", 8);
    // px is a 2-D array (row per i); model 13 columns with fixed offsets
    // and a row stride of 16 doubles.
    let row = 16 * W;
    let coeffs: Vec<ValueId> = (0..9).map(|c| b.invariant_f(&format!("dm{c}"))).collect();
    let base = b.load(px, 4 * W, row);
    let mut acc = base;
    for (c, &dm) in coeffs.iter().enumerate() {
        let col = b.load(px, (5 + c as i64) * W, row);
        acc = b.fmadd(dm, col, acc);
    }
    b.store(px, 0, row, acc);
    b.finish()
}

/// K10: difference predictors — cascaded differences stored to columns.
fn k10() -> Loop {
    let mut b = LoopBuilder::new("lk10");
    let px = b.array("px", 8);
    let cx = b.array("cx", 8);
    let row = 16 * W;
    let ar = b.load(cx, 4 * W, row);
    let mut prev = ar;
    // br = ar - px[5]; px[5] = ar; cascades down the columns.
    for c in 0..6 {
        let pxc = b.load(px, (5 + c as i64) * W, row);
        let diff = b.fsub(prev, pxc);
        b.store(px, (5 + c as i64) * W, row, prev);
        prev = diff;
    }
    b.store(px, 11 * W, row, prev);
    b.finish()
}

/// K11: first sum `x[k] = x[k−1] + y[k]` (prefix sum recurrence).
fn k11() -> Loop {
    let mut b = LoopBuilder::new("lk11");
    let y = b.array("y", 8);
    let x = b.array("x", 8);
    let s = b.carried_f("sum");
    let yk = b.load(y, 0, W);
    let xk = b.fadd(s.value(), yk);
    b.close(s, xk, 1);
    b.store(x, 0, W, xk);
    b.finish()
}

/// K12: first difference `x[k] = y[k+1] − y[k]` (fully parallel).
fn k12() -> Loop {
    let mut b = LoopBuilder::new("lk12");
    let y = b.array("y", 8);
    let x = b.array("x", 8);
    let y1 = b.load(y, W, W);
    let y0 = b.load(y, 0, W);
    let d = b.fsub(y1, y0);
    b.store(x, 0, W, d);
    b.finish()
}

/// K13: 2-D particle-in-cell — indirect gathers and scatters.
fn k13() -> Loop {
    let mut b = LoopBuilder::new("lk13");
    let p = b.array("p", 8);
    let bgrid = b.array("b", 8);
    let c = b.array("c", 8);
    let y = b.array("y", 8);
    let z = b.array("z", 8);
    let one = b.invariant_f("one");
    let p1 = b.load(p, 0, 4 * W);
    let p2 = b.load(p, W, 4 * W);
    let i1 = b.ftoi(p1);
    let j1 = b.ftoi(p2);
    let bg = b.load_indirect(bgrid, i1);
    let cg = b.load_indirect(c, j1);
    let np1 = b.fadd(p1, bg);
    let np2 = b.fadd(p2, cg);
    b.store(p, 0, 4 * W, np1);
    b.store(p, W, 4 * W, np2);
    let yv = b.load_indirect(y, i1);
    let zv = b.load_indirect(z, j1);
    let upd = b.fadd(yv, one);
    let upd2 = b.fadd(zv, upd);
    b.store_indirect(y, i1, upd2);
    b.finish()
}

/// K14: 1-D particle-in-cell — indirect with an integer index stream.
fn k14() -> Loop {
    let mut b = LoopBuilder::new("lk14");
    let grd = b.array("grd", 8);
    let dex = b.array("dex", 8);
    let xx = b.array("xx", 8);
    let ex = b.array("ex", 8);
    let ir = b.load_i(grd, 0, W);
    let xi = b.load(xx, 0, W);
    let exv = b.load_indirect(ex, ir);
    let dexv = b.load(dex, 0, W);
    let vx = b.fmadd(exv, dexv, xi);
    b.store(xx, 0, W, vx);
    let fl = b.fadd(vx, exv);
    b.store_indirect(dex, ir, fl);
    b.finish()
}

/// K15: "casual Fortran" matrix manipulation with embedded conditionals,
/// if-converted as MIPSpro would.
fn k15() -> Loop {
    let vs = HExpr::load("vs", 0, 8);
    let vy = HExpr::load("vy", 0, 8);
    let vh = HExpr::load("vh", 8, 8);
    let zero = HExpr::invariant("zero");
    let h = HirLoop::new(
        "lk15",
        vec![
            HStmt::let_("t", HExpr::mul(vs.clone(), vy.clone())),
            HStmt::if_(
                HExpr::lt(vy, zero.clone()),
                vec![HStmt::let_("r", zero.clone())],
                vec![HStmt::let_("r", HExpr::add(HExpr::local("t"), vh))],
            ),
            HStmt::store("vg", 0, 8, HExpr::local("r")),
        ],
    );
    h.lower()
}

/// K16: Monte Carlo search — a branchy scan, if-converted to selects.
fn k16() -> Loop {
    let zone = HExpr::load("zone", 0, 8);
    let plan = HExpr::load("plan", 0, 8);
    let tst = HExpr::invariant("t");
    let h = HirLoop::new(
        "lk16",
        vec![
            HStmt::let_("d", HExpr::sub(plan.clone(), zone.clone())),
            HStmt::if_(
                HExpr::lt(HExpr::local("d"), tst.clone()),
                vec![HStmt::set_carried(
                    "hit",
                    HExpr::add(HExpr::carried("hit"), HExpr::invariant("one")),
                )],
                vec![HStmt::set_carried(
                    "miss",
                    HExpr::add(HExpr::carried("miss"), HExpr::invariant("one")),
                )],
            ),
            HStmt::store("r", 0, 8, HExpr::local("d")),
        ],
    );
    h.lower()
}

/// K17: implicit conditional computation over a recurrence.
fn k17() -> Loop {
    let vxne = HExpr::carried("xnm");
    let ve3 = HExpr::load("ve3", 0, 8);
    let vlr = HExpr::load("vlr", 0, 8);
    let h = HirLoop::new(
        "lk17",
        vec![
            HStmt::let_("scale", HExpr::div(ve3.clone(), vlr.clone())),
            HStmt::if_(
                HExpr::lt(HExpr::local("scale"), HExpr::invariant("cut")),
                vec![HStmt::set_carried(
                    "xnm",
                    HExpr::mul(vxne.clone(), vlr.clone()),
                )],
                vec![HStmt::set_carried(
                    "xnm",
                    HExpr::madd(HExpr::local("scale"), ve3, vxne),
                )],
            ),
            HStmt::store("vxnd", 0, 8, HExpr::carried("xnm")),
        ],
    );
    h.lower()
}

/// K18: 2-D explicit hydrodynamics fragment — a wide 9-point stencil over
/// several field arrays (the biggest straight-line Livermore body).
fn k18() -> Loop {
    let mut b = LoopBuilder::new("lk18");
    let row = 128 * W; // leading dimension
    let za = b.array("za", 8);
    let zb = b.array("zb", 8);
    let zm = b.array("zm", 8);
    let zp = b.array("zp", 8);
    let zq = b.array("zq", 8);
    let zr = b.array("zr", 8);
    let zu = b.array("zu", 8);
    let zv = b.array("zv", 8);
    let t = b.invariant_f("t");
    let s = b.invariant_f("s");
    // First fragment: za = (zp + zq stencil combination).
    let zp0 = b.load(zp, 0, W);
    let zp_s = b.load(zp, -row, W);
    let zq0 = b.load(zq, 0, W);
    let zq_s = b.load(zq, -row, W);
    let zr0 = b.load(zr, 0, W);
    let zm0 = b.load(zm, 0, W);
    let sum1 = b.fadd(zp0, zq0);
    let sum2 = b.fadd(zp_s, zq_s);
    let num = b.fsub(sum1, sum2);
    let den = b.fadd(zr0, zm0);
    let zav = b.fdiv(num, den);
    b.store(za, 0, W, zav);
    // Second fragment: zu/zv updates from za/zb and neighbors.
    let zb0 = b.load(zb, 0, W);
    let za_e = b.load(za, -W, W);
    let zu0 = b.load(zu, 0, W);
    let zv0 = b.load(zv, 0, W);
    let d1 = b.fsub(zav, za_e);
    let d2 = b.fsub(zb0, zav);
    let un = b.fmadd(t, d1, zu0);
    let un2 = b.fmadd(s, d2, un);
    b.store(zu, 0, W, un2);
    let vn = b.fmadd(t, d2, zv0);
    let vn2 = b.fmadd(s, d1, vn);
    b.store(zv, 0, W, vn2);
    b.finish()
}

/// K19: general linear recurrence equations (forward sweep).
fn k19() -> Loop {
    let mut b = LoopBuilder::new("lk19");
    let sa = b.array("sa", 8);
    let sb = b.array("sb", 8);
    let stb = b.array("stb", 8);
    let coef = b.invariant_f("stb_coef");
    let s = b.carried_f("stb5");
    let sak = b.load(sa, 0, W);
    let sbk = b.load(sb, 0, W);
    let t = b.fmul(s.value(), coef);
    let u = b.fsub(sak, t);
    let r = b.fmadd(u, sbk, s.value());
    b.close(s, r, 1);
    b.store(stb, 0, W, r);
    b.finish()
}

/// K20: discrete ordinates transport — recurrence with a divide in it.
fn k20() -> Loop {
    let mut b = LoopBuilder::new("lk20");
    let g = b.array("g", 8);
    let u = b.array("u", 8);
    let v = b.array("v", 8);
    let xx = b.array("xx", 8);
    let dk = b.invariant_f("dk");
    let s = b.carried_f("xx_prev");
    let gk = b.load(g, 0, W);
    let uk = b.load(u, 0, W);
    let vk = b.load(v, 0, W);
    let di = b.fadd(gk, s.value());
    let dn = b.fdiv(vk, di);
    let t = b.fmadd(uk, dn, s.value());
    let xxk = b.fmadd(dk, t, gk);
    b.close(s, xxk, 1);
    b.store(xx, 0, W, xxk);
    b.finish()
}

/// K21: matrix·matrix product inner loop (dot product with row stride).
fn k21() -> Loop {
    let mut b = LoopBuilder::new("lk21");
    let vy = b.array("vy", 8);
    let cx = b.array("cx", 8);
    let s = b.carried_f("px");
    let a = b.load(cx, 0, W);
    let v = b.load(vy, 0, 25 * W);
    let s1 = b.fmadd(a, v, s.value());
    b.close(s, s1, 1);
    b.finish()
}

/// K22: Planckian distribution. The Fortran computes
/// `w = x / (exp(y) − 1)`; `exp` has no machine class, so a 4-term
/// polynomial (madd ladder) stands in — same memory shape, similar FP mix,
/// plus the divide that dominates the recurrence-free body.
fn k22() -> Loop {
    let mut b = LoopBuilder::new("lk22");
    let u = b.array("u", 8);
    let v = b.array("v", 8);
    let x = b.array("x", 8);
    let y = b.array("y", 8);
    let w = b.array("w", 8);
    let c1 = b.invariant_f("c1");
    let c2 = b.invariant_f("c2");
    let c3 = b.invariant_f("c3");
    let uk = b.load(u, 0, W);
    let vk = b.load(v, 0, W);
    let xk = b.load(x, 0, W);
    let yk = b.fdiv(uk, vk);
    b.store(y, 0, W, yk);
    // exp(y) − 1 ≈ y·(c1 + y·(c2 + y·c3)) — documented substitution.
    let p1 = b.fmadd(yk, c3, c2);
    let p2 = b.fmadd(yk, p1, c1);
    let em1 = b.fmul(yk, p2);
    let wk = b.fdiv(xk, em1);
    b.store(w, 0, W, wk);
    b.finish()
}

/// K23: 2-D implicit hydrodynamics fragment — stencil plus recurrence.
fn k23() -> Loop {
    let mut b = LoopBuilder::new("lk23");
    let row = 128 * W;
    let za = b.array("za", 8);
    let zz = b.array("zz", 8);
    let zr = b.array("zr", 8);
    let zb = b.array("zb", 8);
    let s = b.invariant_f("s");
    let qa_w = b.load(za, -W, W);
    let qa_n = b.load(za, -row, W);
    let qa_s = b.load(za, row, W);
    let zrk = b.load(zr, 0, W);
    let zbk = b.load(zb, 0, W);
    let zzk = b.load(zz, 0, W);
    let t1 = b.fmul(qa_n, zrk);
    let t2 = b.fmadd(qa_s, zbk, t1);
    let t3 = b.fadd(t2, qa_w);
    let qa = b.fmul(t3, s);
    let d = b.fsub(qa, zzk);
    let r = b.fmadd(s, d, zzk);
    b.store(za, 0, W, r);
    b.finish()
}

/// K24: find location of first minimum — compare/select (argmin)
/// reduction, the canonical if-conversion consumer.
fn k24() -> Loop {
    let xk = HExpr::load("x", 0, 8);
    let h = HirLoop::new(
        "lk24",
        vec![
            HStmt::if_(
                HExpr::lt(xk.clone(), HExpr::carried("min")),
                vec![
                    HStmt::set_carried("min", xk),
                    HStmt::set_carried("loc", HExpr::carried("k")),
                ],
                vec![],
            ),
            HStmt::set_carried(
                "k",
                HExpr::add(HExpr::carried("k"), HExpr::invariant("one")),
            ),
        ],
    );
    h.lower()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::Ddg;
    use swp_machine::Machine;

    #[test]
    fn all_24_kernels_build_and_validate() {
        let ks = livermore();
        assert_eq!(ks.len(), 24);
        for k in &ks {
            assert_eq!(
                k.body.validate(),
                Ok(()),
                "kernel {} ({})",
                k.number,
                k.name
            );
            assert!(!k.body.is_empty(), "kernel {}", k.number);
            assert!(k.short_trip < k.long_trip);
        }
    }

    #[test]
    fn kernel_numbers_are_1_to_24() {
        let nums: Vec<u32> = livermore().iter().map(|k| k.number).collect();
        assert_eq!(nums, (1..=24).collect::<Vec<_>>());
    }

    #[test]
    fn recurrences_present_where_expected() {
        let m = Machine::r8000();
        let ks = livermore();
        for k in &ks {
            let ddg = Ddg::build(&k.body, &m);
            let cyclic = ddg.sccs().iter().any(|s| s.nontrivial);
            match k.number {
                2 | 3 | 4 | 5 | 6 | 11 | 16 | 17 | 19 | 20 | 21 | 24 => {
                    assert!(cyclic, "kernel {} should carry a recurrence", k.number);
                }
                1 | 7 | 12 | 22 => {
                    assert!(!cyclic, "kernel {} should be fully parallel", k.number);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn pic_kernels_use_indirection() {
        let ks = livermore();
        for k in ks.iter().filter(|k| k.number == 13 || k.number == 14) {
            assert!(
                k.body.mem_ops().any(|o| o.mem.is_some_and(|m| m.indirect)),
                "kernel {} is PIC and must gather/scatter",
                k.number
            );
        }
    }

    #[test]
    fn conditional_kernels_are_if_converted() {
        let ks = livermore();
        for k in ks.iter().filter(|k| [15, 16, 17, 24].contains(&k.number)) {
            assert!(
                k.body
                    .ops()
                    .iter()
                    .any(|o| o.class == swp_machine::OpClass::CMov),
                "kernel {} must contain conditional moves",
                k.number
            );
        }
    }

    #[test]
    fn every_kernel_pipelines_on_r8000() {
        let m = Machine::r8000();
        for k in livermore() {
            let r = swp_heur::pipeline(&k.body, &m, &swp_heur::HeurOptions::default());
            assert!(
                r.is_ok(),
                "kernel {} ({}) failed: {:?}",
                k.number,
                k.name,
                r.err()
            );
        }
    }
}
