//! Whole-benchmark measurement: compile and simulate every hot loop of a
//! SPEC-like suite and aggregate to a single relative time.
//!
//! Each `run_suite*` function has a `*_with` twin that takes a
//! [`Driver`] and fans the per-loop work across its thread pool,
//! consulting its schedule cache. The `_with` variants produce results
//! **identical** to the plain sequential functions — per-loop outcomes
//! land in suite order regardless of completion order, and the weighted
//! aggregation runs over that ordered vector (`tests/determinism.rs`
//! locks this down at several thread counts).

use crate::compile::{
    compile_baseline, compile_loop, CompileError, CompileOptions, SchedulerChoice,
};
use crate::ladder::{LadderOptions, Rung, RungAttempt};
use crate::par::Driver;
use swp_kernels::Suite;
use swp_machine::Machine;
use swp_sim::{simulate, simulate_baseline};
use swp_verify::{Severity, VerifyLevel, VerifyReport};

/// Result of running one suite under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Suite name.
    pub name: String,
    /// Weighted aggregate time (arbitrary units; lower is better).
    pub time: f64,
    /// Per-loop cycle counts in suite order.
    pub per_loop_cycles: Vec<u64>,
    /// Per-loop achieved IIs (0 for the baseline configuration).
    pub per_loop_ii: Vec<u32>,
}

/// Compile and simulate a suite with the given scheduler.
///
/// # Errors
///
/// Propagates the first loop that fails to compile.
pub fn run_suite(
    suite: &Suite,
    machine: &Machine,
    choice: &SchedulerChoice,
) -> Result<SuiteResult, CompileError> {
    let mut cycles = Vec::with_capacity(suite.loops.len());
    let mut iis = Vec::with_capacity(suite.loops.len());
    for wl in &suite.loops {
        let c = compile_loop(&wl.body, machine, choice)?;
        let r = simulate(&c.code, wl.trip, machine);
        cycles.push(r.cycles);
        iis.push(c.stats.ii);
    }
    let per: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
    Ok(SuiteResult {
        name: suite.name.to_owned(),
        time: suite.aggregate_time(&per),
        per_loop_cycles: cycles,
        per_loop_ii: iis,
    })
}

/// [`run_suite`] over a [`Driver`]: loops compile (through the driver's
/// cache) and simulate in parallel, but the result is identical to the
/// sequential function — including which error surfaces when several
/// loops fail (the earliest in suite order wins).
///
/// # Errors
///
/// Propagates the first loop (in suite order) that fails to compile.
pub fn run_suite_with(
    driver: &Driver,
    suite: &Suite,
    machine: &Machine,
    choice: &SchedulerChoice,
) -> Result<SuiteResult, CompileError> {
    let per_loop: Vec<Result<(u64, u32), CompileError>> =
        driver.run_indexed(suite.loops.len(), |i| {
            let wl = &suite.loops[i];
            let c = driver.compile(&wl.body, machine, choice)?;
            let r = simulate(&c.code, wl.trip, machine);
            Ok((r.cycles, c.stats.ii))
        });
    let mut cycles = Vec::with_capacity(suite.loops.len());
    let mut iis = Vec::with_capacity(suite.loops.len());
    for r in per_loop {
        let (c, ii) = r?;
        cycles.push(c);
        iis.push(ii);
    }
    let per: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
    Ok(SuiteResult {
        name: suite.name.to_owned(),
        time: suite.aggregate_time(&per),
        per_loop_cycles: cycles,
        per_loop_ii: iis,
    })
}

/// Run a suite with software pipelining disabled (the list-scheduled
/// baseline of §4.1).
pub fn run_suite_baseline(suite: &Suite, machine: &Machine) -> SuiteResult {
    let mut cycles = Vec::with_capacity(suite.loops.len());
    for wl in &suite.loops {
        let base = compile_baseline(&wl.body, machine);
        let r = simulate_baseline(&base, wl.trip, machine);
        cycles.push(r.cycles);
    }
    let per: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
    SuiteResult {
        name: suite.name.to_owned(),
        time: suite.aggregate_time(&per),
        per_loop_cycles: cycles,
        per_loop_ii: vec![0; suite.loops.len()],
    }
}

/// [`run_suite_baseline`] over a [`Driver`]'s thread pool. Baseline list
/// schedules are too cheap to cache; only the simulation fans out.
pub fn run_suite_baseline_with(driver: &Driver, suite: &Suite, machine: &Machine) -> SuiteResult {
    let cycles: Vec<u64> = driver.run_indexed(suite.loops.len(), |i| {
        let wl = &suite.loops[i];
        let base = compile_baseline(&wl.body, machine);
        simulate_baseline(&base, wl.trip, machine).cycles
    });
    let per: Vec<f64> = cycles.iter().map(|&c| c as f64).collect();
    SuiteResult {
        name: suite.name.to_owned(),
        time: suite.aggregate_time(&per),
        per_loop_cycles: cycles,
        per_loop_ii: vec![0; suite.loops.len()],
    }
}

/// Audit report for one suite loop.
#[derive(Debug, Clone)]
pub struct LoopAudit {
    /// Loop name within the suite.
    pub loop_name: String,
    /// Achieved II.
    pub ii: u32,
    /// The auditors' findings (lints first, then analyzer findings).
    pub report: VerifyReport,
}

/// Audit reports for every loop of a suite under one scheduler.
#[derive(Debug, Clone)]
pub struct SuiteAudit {
    /// Suite name.
    pub name: String,
    /// Per-loop reports in suite order.
    pub loops: Vec<LoopAudit>,
}

impl SuiteAudit {
    /// Total findings at one severity across all loops.
    pub fn count(&self, severity: Severity) -> usize {
        self.loops.iter().map(|l| l.report.count(severity)).sum()
    }

    /// Whether no loop produced an `Error` finding.
    pub fn is_clean(&self) -> bool {
        self.loops.iter().all(|l| l.report.is_clean())
    }
}

/// Compile every loop of a suite through `driver` with `options` and
/// collect the audit reports. This is the engine of `experiments audit`:
/// it exercises the full translation-validation pipeline over real
/// workloads without simulating them.
///
/// # Errors
///
/// Propagates the first loop (in suite order) that fails to compile —
/// a compile failure is not a finding, it means there is nothing to audit.
pub fn audit_suite_with(
    driver: &Driver,
    suite: &Suite,
    machine: &Machine,
    options: &CompileOptions,
) -> Result<SuiteAudit, CompileError> {
    let per_loop: Vec<Result<LoopAudit, CompileError>> =
        driver.run_indexed(suite.loops.len(), |i| {
            let wl = &suite.loops[i];
            let c = driver.compile_with(&wl.body, machine, options)?;
            Ok(LoopAudit {
                loop_name: wl.name.to_owned(),
                ii: c.stats.ii,
                report: c.audit.clone().unwrap_or_default(),
            })
        });
    let loops = per_loop.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteAudit {
        name: suite.name.to_owned(),
        loops,
    })
}

/// The accepted outcome of one loop's trip down the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderSuccess {
    /// The rung that produced the shipped schedule.
    pub rung: Rung,
    /// Achieved II.
    pub ii: u32,
    /// Whether the shipped schedule's gate report is clean (it always
    /// passed the gate — this additionally counts warnings as absent).
    pub clean: bool,
    /// The full attempt trace, demotion by demotion.
    pub attempts: Vec<RungAttempt>,
}

/// One loop's ladder outcome: a success with its trace, or the error that
/// exhausted (or aborted) the ladder. Errors are *data* here — a
/// quarantined loop is a row in the report, not a failure of the run.
#[derive(Debug, Clone)]
pub struct LadderLoopReport {
    /// Loop name within the suite.
    pub loop_name: String,
    /// The outcome.
    pub outcome: Result<LadderSuccess, CompileError>,
}

impl LadderLoopReport {
    /// The attempt trace, wherever it lives (success or exhaustion);
    /// empty for errors without one (e.g. a caught in-flight panic).
    pub fn attempts(&self) -> &[RungAttempt] {
        match &self.outcome {
            Ok(s) => &s.attempts,
            Err(CompileError::LadderExhausted { attempts }) => attempts,
            Err(_) => &[],
        }
    }

    /// Injected faults that escaped their containment on this loop.
    pub fn escapes(&self) -> usize {
        self.attempts().iter().filter(|a| a.escaped()).count()
    }
}

/// Ladder outcomes for every loop of a suite — the quarantine report:
/// rung usage, escapes, and which loops no rung could save.
#[derive(Debug, Clone)]
pub struct SuiteLadder {
    /// Suite name.
    pub name: String,
    /// Per-loop reports in suite order.
    pub loops: Vec<LadderLoopReport>,
}

impl SuiteLadder {
    /// How many loops each rung rescued, indexed by [`Rung::index`].
    pub fn rung_usage(&self) -> [usize; 5] {
        let mut usage = [0; 5];
        for l in &self.loops {
            if let Ok(s) = &l.outcome {
                usage[s.rung.index()] += 1;
            }
        }
        usage
    }

    /// Loops whose ladder produced no schedule at all.
    pub fn quarantined(&self) -> usize {
        self.loops.iter().filter(|l| l.outcome.is_err()).count()
    }

    /// Injected faults that escaped containment, summed over all loops.
    pub fn escapes(&self) -> usize {
        self.loops.iter().map(LadderLoopReport::escapes).sum()
    }

    /// Whether every loop compiled and every shipped schedule is clean.
    pub fn all_clean(&self) -> bool {
        self.loops
            .iter()
            .all(|l| matches!(&l.outcome, Ok(s) if s.clean))
    }
}

/// Run every loop of a suite down the degradation ladder through
/// `driver`'s pool and cache, and collect the quarantine report. Unlike
/// the other suite runners this never propagates an error: a loop that
/// exhausts the ladder (or dies to a caught panic) is reported, and the
/// rest of the suite still completes — which is the whole point of the
/// ladder.
pub fn ladder_suite_with(
    driver: &Driver,
    suite: &Suite,
    machine: &Machine,
    opts: &LadderOptions,
) -> SuiteLadder {
    let options = CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(opts.clone())),
        // The ladder's own gate audits; the outer verify level is unused
        // on this path (see `compile_loop_with`).
        verify: VerifyLevel::Off,
        ..CompileOptions::default()
    };
    let loops: Vec<LadderLoopReport> = driver.run_indexed(suite.loops.len(), |i| {
        let wl = &suite.loops[i];
        let outcome = driver
            .compile_with(&wl.body, machine, &options)
            .map(|c| LadderSuccess {
                rung: c.rung.expect("ladder results carry their rung"),
                ii: c.stats.ii,
                clean: c.audit.as_ref().is_some_and(VerifyReport::is_clean),
                attempts: c.attempts.clone(),
            });
        LadderLoopReport {
            loop_name: wl.name.to_owned(),
            outcome,
        }
    });
    SuiteLadder {
        name: suite.name.to_owned(),
        loops,
    }
}

/// Geometric mean of per-suite ratios — the SPEC aggregation the paper
/// uses ("calculated as the geometric mean of the results on each
/// benchmark").
pub fn geometric_mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.max(1e-12).ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_beats_baseline_on_alvinn() {
        let m = Machine::r8000();
        let suite = swp_kernels::spec_suites()
            .into_iter()
            .find(|s| s.name == "alvinn")
            .expect("alvinn exists");
        let pipe = run_suite(&suite, &m, &SchedulerChoice::Heuristic).expect("pipelines");
        let base = run_suite_baseline(&suite, &m);
        assert!(
            base.time > 1.5 * pipe.time,
            "baseline {} vs pipelined {}",
            base.time,
            pipe.time
        );
    }

    #[test]
    fn driver_suite_run_matches_sequential() {
        let m = Machine::r8000();
        let suite = swp_kernels::spec_suites()
            .into_iter()
            .find(|s| s.name == "swm256")
            .expect("swm256 exists");
        let seq = run_suite(&suite, &m, &SchedulerChoice::Heuristic).expect("compiles");
        let driver = Driver::new(4);
        let par =
            run_suite_with(&driver, &suite, &m, &SchedulerChoice::Heuristic).expect("compiles");
        assert_eq!(seq, par);
        let base_seq = run_suite_baseline(&suite, &m);
        let base_par = run_suite_baseline_with(&driver, &suite, &m);
        assert_eq!(base_seq, base_par);
    }

    #[test]
    fn suite_audit_is_clean_for_the_heuristic_pipeliner() {
        let m = Machine::r8000();
        let suite = swp_kernels::spec_suites()
            .into_iter()
            .find(|s| s.name == "alvinn")
            .expect("alvinn exists");
        let driver = Driver::new(2);
        let opts = CompileOptions {
            choice: SchedulerChoice::Heuristic,
            verify: swp_verify::VerifyLevel::Full,
            ..CompileOptions::default()
        };
        let audit = audit_suite_with(&driver, &suite, &m, &opts).expect("compiles");
        assert_eq!(audit.loops.len(), suite.loops.len());
        assert!(audit.is_clean(), "unexpected findings in {:?}", audit);
        assert!(audit.loops.iter().all(|l| l.ii > 0));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn ladder_suite_compiles_every_loop_and_accounts_for_each() {
        let m = Machine::r8000();
        let suite = swp_kernels::spec_suites()
            .into_iter()
            .find(|s| s.name == "alvinn")
            .expect("alvinn exists");
        let driver = Driver::new(2);
        let opts = crate::LadderOptions {
            most: swp_most::MostOptions {
                node_limit: 20_000,
                pivot_limit: 400_000,
                time_limit: None,
                loop_time_limit: None,
                loop_pivot_limit: Some(1_200_000),
                max_ops: 64,
                ..swp_most::MostOptions::default()
            },
            ..crate::LadderOptions::default()
        };
        let report = ladder_suite_with(&driver, &suite, &m, &opts);
        assert_eq!(report.loops.len(), suite.loops.len());
        assert_eq!(report.quarantined(), 0, "nothing to quarantine");
        assert_eq!(report.escapes(), 0, "no chaos, no escapes");
        assert!(report.all_clean(), "{:?}", report);
        assert_eq!(
            report.rung_usage().iter().sum::<usize>(),
            suite.loops.len(),
            "every loop is accounted to exactly one rung"
        );
    }
}
