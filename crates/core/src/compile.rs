//! Unified compilation entry points for both pipeliners.

use crate::ladder::{compile_ladder, LadderOptions, Rung, RungAttempt};
use crate::portfolio::{compile_portfolio, PortfolioOptions};
use std::time::Instant;
use swp_codegen::{list_schedule, BaselineLoop, PipelinedLoop};
use swp_heur::{HeurOptions, PipelineError};
use swp_ir::{Ddg, Loop, OptLevel, PassManager};
use swp_machine::Machine;
use swp_most::{MostError, MostOptions};
use swp_obs::Telemetry;
use swp_sat::{SatError, SatOptions};
use swp_verify::{Finding, VerifyLevel, VerifyReport};

/// Which pipeliner to use.
#[derive(Debug, Clone, Default)]
pub enum SchedulerChoice {
    /// The SGI-style heuristic pipeliner (§2) with its options.
    #[default]
    Heuristic,
    /// The heuristic pipeliner with explicit options.
    HeuristicWith(HeurOptions),
    /// The MOST ILP pipeliner (§3) with default options.
    Ilp,
    /// The MOST pipeliner with explicit options.
    IlpWith(MostOptions),
    /// The CDCL difference-logic pipeliner (`swp-sat`) with default
    /// options — the third optimal backend, searching MOST's horizon.
    Sat,
    /// The SAT pipeliner with explicit options.
    SatWith(SatOptions),
    /// The total-compilation degradation ladder (ILP → SAT → heuristic →
    /// escalated heuristic → sequential) with default options.
    Ladder,
    /// The degradation ladder with explicit options (boxed: ladder
    /// options carry every scheduler's configuration plus a chaos plan).
    LadderWith(Box<LadderOptions>),
    /// Race the enabled backends on scoped threads and ship the
    /// highest-priority success (ILP > SAT > heuristic), with default
    /// options. Deterministic: the winner is chosen by fixed priority at
    /// join, never by wall clock.
    Portfolio,
    /// The portfolio with explicit options (boxed: it carries all three
    /// backends' configurations).
    PortfolioWith(Box<PortfolioOptions>),
}

/// Full compile configuration: which pipeliner, and how much independent
/// auditing to run on its output (see [`swp_verify`]).
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// The pipeliner and its options.
    pub choice: SchedulerChoice,
    /// Translation-validation level. [`VerifyLevel::Off`] (the default)
    /// adds zero cost; `Full` also lints the input loop before scheduling.
    pub verify: VerifyLevel,
    /// Mid-end pass-pipeline level run on the loop *before* any scheduler
    /// sees it (ladder rungs included). [`OptLevel::Off`] (the default)
    /// adds zero cost. Part of the schedule-cache key: the same source
    /// loop compiled at different levels yields different code. When
    /// `verify` is on, every pass application is additionally
    /// translation-validated by differential simulation.
    pub opt: OptLevel,
    /// Telemetry handle installed for the duration of the compile (and by
    /// the cache, on whichever thread ends up doing the work). The default
    /// disabled handle collects nothing. Deliberately **not** part of the
    /// schedule-cache key: observing a compile must not change its
    /// identity, so a traced compile aliases an untraced one.
    pub telemetry: Telemetry,
}

impl From<SchedulerChoice> for CompileOptions {
    fn from(choice: SchedulerChoice) -> CompileOptions {
        CompileOptions {
            choice,
            verify: VerifyLevel::Off,
            opt: OptLevel::Off,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Result of compiling one loop.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// The expanded pipelined code.
    pub code: PipelinedLoop,
    /// Compile statistics.
    pub stats: CompileStats,
    /// Audit report, when compiled with `verify` on. `None` means the
    /// auditors did not run, not that the code is certified — except on
    /// ladder compiles, whose gate always audits (see [`LadderOptions`]).
    pub audit: Option<VerifyReport>,
    /// The degradation-ladder rung that produced this code; `None` for
    /// direct (non-ladder) compiles.
    pub rung: Option<Rung>,
    /// The ladder's full attempt trace, demotion by demotion; empty for
    /// direct compiles.
    pub attempts: Vec<RungAttempt>,
}

/// Scheduler-independent compile statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// MinII of the (final) loop body.
    pub min_ii: u32,
    /// Achieved II.
    pub ii: u32,
    /// Whether the ILP path fell back to the heuristic pipeliner.
    pub fell_back: bool,
    /// Whether the ILP search certified rate-optimality at MinII.
    pub optimal: bool,
    /// Branch-and-bound nodes (ILP), CDCL conflicts (SAT), or backtracks
    /// (heuristic) — the coarse deterministic work measure.
    pub search_effort: u64,
    /// Simplex pivots across all ILP solves, or unit propagations across
    /// all SAT solves (0 for the heuristic). The deterministic
    /// fine-grained work measure behind `pivot_limit`.
    pub pivots: u64,
    /// Whether a wall-clock deadline truncated the search *or* the
    /// mid-end pass pipeline. Such results depend on host load; the
    /// schedule cache refuses to memoize them.
    pub deadline_hit: bool,
    /// Names of the mid-end passes that ran to completion before this
    /// loop was scheduled, in execution order (empty at
    /// [`OptLevel::Off`]). Together with `deadline_hit` this makes a
    /// truncated pipeline distinguishable from a full run.
    pub opt_passes: Vec<&'static str>,
    /// Values spilled (heuristic only).
    pub spills: u32,
    /// Worker count of the [`crate::Driver`] that issued this compile
    /// (the resolved `SWP_THREADS`/available-parallelism choice); 0 for
    /// compiles performed outside any driver. Informational: cache hits
    /// return the count of whichever driver compiled the entry first.
    pub driver_threads: usize,
    /// Nanoseconds in the pipeliner proper (II search + scheduling),
    /// excluding register allocation.
    pub sched_ns: u64,
    /// Nanoseconds in register allocation (all attempts).
    pub alloc_ns: u64,
    /// Nanoseconds expanding the kernel to prologue/kernel/epilogue form.
    pub expand_ns: u64,
}

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The heuristic pipeliner failed.
    Heuristic(PipelineError),
    /// The ILP pipeliner (and its fallback) failed.
    Ilp(MostError),
    /// The SAT pipeliner (and its fallback) failed.
    Sat(SatError),
    /// A compiler invariant broke (a caught panic or an impossible
    /// state). The structured form of what used to unwind: the job fails,
    /// the pool and the rest of the suite do not.
    Internal {
        /// The ladder rung involved, when the failure is attributable to
        /// one; `None` for failures outside rung isolation (e.g. a panic
        /// caught at the driver boundary).
        rung: Option<Rung>,
        /// Best-effort description (usually the panic message).
        message: String,
    },
    /// Every rung of the degradation ladder was rejected. Only possible
    /// for lint-rejected or empty inputs, or under chaos injection at the
    /// final rung; the trace records why each rung failed.
    LadderExhausted {
        /// One entry per rung attempted, in demotion order.
        attempts: Vec<RungAttempt>,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Heuristic(e) => write!(f, "heuristic pipeliner: {e}"),
            CompileError::Ilp(e) => write!(f, "ILP pipeliner: {e}"),
            CompileError::Sat(e) => write!(f, "SAT pipeliner: {e}"),
            CompileError::Internal { rung, message } => match rung {
                Some(r) => write!(f, "internal compiler error at {r}: {message}"),
                None => write!(f, "internal compiler error: {message}"),
            },
            CompileError::LadderExhausted { attempts } => {
                write!(
                    f,
                    "degradation ladder exhausted after {} attempts",
                    attempts.len()
                )?;
                for a in attempts {
                    write!(f, "; {}", a.render())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Software-pipeline a loop with the chosen scheduler and expand it to
/// executable form.
///
/// # Errors
///
/// Returns [`CompileError`] when the chosen pipeliner (including any
/// fallback) cannot produce a schedule.
pub fn compile_loop(
    lp: &Loop,
    machine: &Machine,
    choice: &SchedulerChoice,
) -> Result<CompiledLoop, CompileError> {
    match choice {
        SchedulerChoice::Heuristic => compile_heur(lp, machine, &HeurOptions::default()),
        SchedulerChoice::HeuristicWith(opts) => compile_heur(lp, machine, opts),
        SchedulerChoice::Ilp => compile_ilp(lp, machine, &MostOptions::default()),
        SchedulerChoice::IlpWith(opts) => compile_ilp(lp, machine, opts),
        SchedulerChoice::Sat => compile_sat(lp, machine, &SatOptions::default()),
        SchedulerChoice::SatWith(opts) => compile_sat(lp, machine, opts),
        SchedulerChoice::Ladder => compile_ladder(lp, machine, &LadderOptions::default()),
        SchedulerChoice::LadderWith(opts) => compile_ladder(lp, machine, opts),
        SchedulerChoice::Portfolio => compile_portfolio(lp, machine, &PortfolioOptions::default()),
        SchedulerChoice::PortfolioWith(opts) => compile_portfolio(lp, machine, opts),
    }
}

/// [`compile_loop`] plus the independent audit pipeline: at
/// [`VerifyLevel::Full`] the input loop is linted *before* scheduling, and
/// the compiled artifact is re-validated by every `swp-verify` analyzer;
/// at [`VerifyLevel::Schedule`] only the schedule auditor runs. The report
/// lands in [`CompiledLoop::audit`]; findings never abort the compile —
/// callers decide how strict to be (see `experiments audit -D`).
///
/// # Errors
///
/// Returns [`CompileError`] when the chosen pipeliner (including any
/// fallback) cannot produce a schedule.
pub fn compile_loop_with(
    lp: &Loop,
    machine: &Machine,
    options: &CompileOptions,
) -> Result<CompiledLoop, CompileError> {
    // Only an enabled handle takes over; a disabled one must not shadow a
    // collector the caller installed ambiently (e.g. `solver --gate`).
    let _telemetry = options
        .telemetry
        .is_enabled()
        .then(|| options.telemetry.install());
    let _span = swp_obs::span("compile")
        .with_s("loop", lp.name())
        .with_i("ops", lp.len() as i64);
    let result = compile_inner(lp, machine, options);
    if options.telemetry.is_enabled() {
        if let Ok(compiled) = &result {
            observe_quality(compiled);
        }
    }
    result
}

fn compile_inner(
    lp: &Loop,
    machine: &Machine,
    options: &CompileOptions,
) -> Result<CompiledLoop, CompileError> {
    // The mid-end pass pipeline runs in front of *every* scheduler
    // choice, ladder included: each rung then schedules the optimized
    // body, so demotion never discards the optimization work.
    let staged = run_opt_stage(lp, machine, options);
    let lp = staged.lp.as_ref().unwrap_or(lp);
    // Ladder compiles carry their own per-rung verify gate; its report
    // (lints included) is authoritative and already attached, so a second
    // outer audit would only duplicate findings.
    if matches!(
        options.choice,
        SchedulerChoice::Ladder | SchedulerChoice::LadderWith(_)
    ) {
        let mut compiled = compile_loop(lp, machine, &options.choice)?;
        staged.record(&mut compiled);
        return Ok(compiled);
    }
    let lints = if options.verify == VerifyLevel::Full {
        swp_verify::lint_findings(lp, machine)
    } else {
        Vec::new()
    };
    let mut compiled = compile_loop(lp, machine, &options.choice)?;
    if options.verify != VerifyLevel::Off {
        let mut report = swp_verify::audit(&compiled.code, machine, options.verify);
        report.findings.splice(0..0, lints);
        compiled.audit = Some(report);
    }
    staged.record(&mut compiled);
    Ok(compiled)
}

/// What the mid-end stage did to one compile: the optimized body (when
/// any pass changed it), the passes that completed, and the pipeline's
/// own `SWP-P0xx` findings mapped onto audit [`Finding`]s.
struct OptStage {
    lp: Option<Loop>,
    passes_run: Vec<&'static str>,
    truncated: bool,
    findings: Vec<Finding>,
}

impl OptStage {
    fn skipped() -> OptStage {
        OptStage {
            lp: None,
            passes_run: Vec::new(),
            truncated: false,
            findings: Vec::new(),
        }
    }

    /// Fold the stage's bookkeeping into the finished compile.
    fn record(self, compiled: &mut CompiledLoop) {
        compiled.stats.opt_passes = self.passes_run;
        if self.truncated {
            // The deadline cut the pass pipeline short, so the emitted
            // code depends on host load exactly like a truncated ILP
            // search: mark the compile transient so the schedule cache
            // never memoizes a partially-optimized result as if it were
            // the full pipeline's output.
            compiled.stats.deadline_hit = true;
        }
        if !self.findings.is_empty() {
            if let Some(report) = &mut compiled.audit {
                report.findings.splice(0..0, self.findings);
            }
        }
    }
}

/// Run the [`PassManager`] over a clone of the input loop, under an
/// `opt` telemetry span with per-pass application counters. Returns
/// [`OptStage::skipped`] (and pays nothing) at [`OptLevel::Off`].
fn run_opt_stage(lp: &Loop, machine: &Machine, options: &CompileOptions) -> OptStage {
    if options.opt == OptLevel::Off || lp.is_empty() {
        return OptStage::skipped();
    }
    let _span = swp_obs::span("opt")
        .with_s("loop", lp.name())
        .with_s("level", options.opt.name());
    let mut body = lp.clone();
    // Replaying twelve iterations bit-exactly is the strongest oracle the
    // mid-end has: zero tolerance, so any pass that is not a bit-identical
    // rewrite (given the sim's own eval semantics) is reverted.
    let validate = |a: &Loop, b: &Loop| swp_sim::check_loops_equivalent(a, b, 12, 0.0);
    let mut pm = PassManager::new(options.opt).with_deadline(opt_deadline(&options.choice));
    if options.verify != VerifyLevel::Off {
        pm = pm.with_validator(&validate);
    }
    let outcome = pm.run(&mut body, machine);
    observe_opt(&outcome);
    let findings = outcome
        .findings
        .iter()
        .map(|f| Finding::warning(f.code, format!("{}: {}", f.pass, f.message)))
        .collect();
    OptStage {
        lp: (outcome.ops_removed() > 0 || outcome.total_applications() > 0).then_some(body),
        passes_run: outcome.passes_run,
        truncated: outcome.truncated,
        findings,
    }
}

/// The wall-clock budget the mid-end inherits from the scheduler choice:
/// optimization shares the loop's compile-time allowance rather than
/// adding an unbounded stage in front of it. Heuristic compiles carry no
/// wall budget, so their pipeline runs to fixpoint (it is bounded by the
/// pass manager's round cap anyway).
fn opt_deadline(choice: &SchedulerChoice) -> Option<Instant> {
    let budget = match choice {
        SchedulerChoice::Heuristic | SchedulerChoice::HeuristicWith(_) => None,
        SchedulerChoice::Ilp => {
            let d = MostOptions::default();
            d.loop_time_limit.or(d.time_limit)
        }
        SchedulerChoice::IlpWith(opts) => opts.loop_time_limit.or(opts.time_limit),
        SchedulerChoice::Sat => {
            let d = SatOptions::default();
            d.loop_time_limit.or(d.time_limit)
        }
        SchedulerChoice::SatWith(opts) => opts.loop_time_limit.or(opts.time_limit),
        SchedulerChoice::Ladder => {
            let d = LadderOptions::default();
            d.most.loop_time_limit.or(d.most.time_limit)
        }
        SchedulerChoice::LadderWith(opts) => opts.most.loop_time_limit.or(opts.most.time_limit),
        // The portfolio's wall budget is its highest-priority racer's:
        // ILP is never cancelled, so its allowance bounds the race.
        SchedulerChoice::Portfolio => {
            let d = PortfolioOptions::default();
            d.most.loop_time_limit.or(d.most.time_limit)
        }
        SchedulerChoice::PortfolioWith(opts) => opts.most.loop_time_limit.or(opts.most.time_limit),
    };
    budget.map(|d| Instant::now() + d)
}

/// Exact counters for one pass-pipeline run: per-pass application
/// counts, ops removed, and RecMII before/after. All deterministic, so
/// they aggregate bit-identically across worker threads.
fn observe_opt(outcome: &swp_ir::OptOutcome) {
    use swp_obs::{count, Counter};
    for &(name, n) in &outcome.applications {
        let counter = match name {
            "fold" => Counter::OptPassFold,
            "simplify" => Counter::OptPassSimplify,
            "strength" => Counter::OptPassStrength,
            "gvn" => Counter::OptPassGvn,
            "dce" => Counter::OptPassDce,
            "reassoc" => Counter::OptPassReassoc,
            _ => continue,
        };
        count(counter, u64::from(n));
    }
    count(Counter::OptOpsRemoved, outcome.ops_removed() as u64);
    count(Counter::OptRecMiiBefore, u64::from(outcome.rec_mii_before));
    count(Counter::OptRecMiiAfter, u64::from(outcome.rec_mii_after));
}

/// Schedule-quality histograms for one successful compile. Gated on an
/// enabled handle by the caller: `max_live` re-derives pressure from the
/// schedule, which the disabled path must not pay for.
fn observe_quality(compiled: &CompiledLoop) {
    use swp_obs::{observe, Histo};
    let stats = &compiled.stats;
    observe(
        Histo::IiMinusMii,
        u64::from(stats.ii.saturating_sub(stats.min_ii)),
    );
    let pressure = swp_regalloc::max_live(compiled.code.body(), compiled.code.schedule());
    observe(
        Histo::MaxLive,
        u64::from(pressure.into_iter().max().unwrap_or(0)),
    );
    let total_ns = stats
        .sched_ns
        .saturating_add(stats.alloc_ns)
        .saturating_add(stats.expand_ns);
    observe(Histo::CompileTimeUs, total_ns / 1_000);
}

pub(crate) fn compile_heur(
    lp: &Loop,
    machine: &Machine,
    opts: &HeurOptions,
) -> Result<CompiledLoop, CompileError> {
    let (pipelined, pipeline_ns) =
        swp_obs::timed_ns("sched.heur", || swp_heur::pipeline(lp, machine, opts));
    let p = pipelined.map_err(CompileError::Heuristic)?;
    let (code, expand_ns) = swp_obs::timed_ns("expand", || {
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    });
    Ok(CompiledLoop {
        code,
        stats: CompileStats {
            min_ii: p.stats.min_ii,
            ii: p.schedule.ii(),
            fell_back: false,
            optimal: false,
            search_effort: u64::from(p.stats.backtracks),
            pivots: 0,
            deadline_hit: false,
            opt_passes: Vec::new(),
            spills: p.stats.spills,
            driver_threads: crate::par::driver_threads_hint(),
            sched_ns: pipeline_ns.saturating_sub(p.stats.alloc_ns),
            alloc_ns: p.stats.alloc_ns,
            expand_ns,
        },
        audit: None,
        rung: None,
        attempts: Vec::new(),
    })
}

pub(crate) fn compile_ilp(
    lp: &Loop,
    machine: &Machine,
    opts: &MostOptions,
) -> Result<CompiledLoop, CompileError> {
    let (pipelined, pipeline_ns) =
        swp_obs::timed_ns("sched.ilp", || swp_most::pipeline_most(lp, machine, opts));
    let p = pipelined.map_err(CompileError::Ilp)?;
    if let Some(buffers) = p.stats.buffers {
        swp_obs::observe(swp_obs::Histo::Buffers, u64::from(buffers));
    }
    let (code, expand_ns) = swp_obs::timed_ns("expand", || {
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    });
    Ok(CompiledLoop {
        code,
        stats: CompileStats {
            min_ii: p.stats.min_ii,
            ii: p.schedule.ii(),
            fell_back: p.stats.fell_back,
            optimal: p.stats.optimal_ii,
            search_effort: p.stats.nodes,
            pivots: p.stats.pivots,
            deadline_hit: p.stats.deadline_hit,
            opt_passes: Vec::new(),
            spills: 0,
            driver_threads: crate::par::driver_threads_hint(),
            sched_ns: pipeline_ns.saturating_sub(p.stats.alloc_ns),
            alloc_ns: p.stats.alloc_ns,
            expand_ns,
        },
        audit: None,
        rung: None,
        attempts: Vec::new(),
    })
}

pub(crate) fn compile_sat(
    lp: &Loop,
    machine: &Machine,
    opts: &SatOptions,
) -> Result<CompiledLoop, CompileError> {
    let (pipelined, pipeline_ns) =
        swp_obs::timed_ns("sched.sat", || swp_sat::pipeline_sat(lp, machine, opts));
    let p = pipelined.map_err(CompileError::Sat)?;
    let (code, expand_ns) = swp_obs::timed_ns("expand", || {
        PipelinedLoop::expand(&p.body, &p.schedule, &p.allocation)
    });
    Ok(CompiledLoop {
        code,
        stats: CompileStats {
            min_ii: p.stats.min_ii,
            ii: p.schedule.ii(),
            fell_back: p.stats.fell_back,
            optimal: p.stats.optimal_ii,
            search_effort: p.stats.conflicts,
            pivots: p.stats.propagations,
            deadline_hit: p.stats.deadline_hit,
            opt_passes: Vec::new(),
            spills: 0,
            driver_threads: crate::par::driver_threads_hint(),
            sched_ns: pipeline_ns.saturating_sub(p.stats.alloc_ns),
            alloc_ns: p.stats.alloc_ns,
            expand_ns,
        },
        audit: None,
        rung: None,
        attempts: Vec::new(),
    })
}

/// Build the non-pipelined baseline (software pipelining "disabled",
/// §4.1): a simple list schedule executed sequentially.
pub fn compile_baseline(lp: &Loop, machine: &Machine) -> BaselineLoop {
    let ddg = Ddg::build(lp, machine);
    list_schedule(lp, &ddg, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    #[test]
    fn both_schedulers_compile_saxpy_to_the_same_ii() {
        let m = Machine::r8000();
        let h = compile_loop(&saxpy(), &m, &SchedulerChoice::Heuristic).expect("heur");
        let i = compile_loop(&saxpy(), &m, &SchedulerChoice::Ilp).expect("ilp");
        assert_eq!(h.stats.ii, i.stats.ii);
        assert_eq!(h.stats.min_ii, i.stats.min_ii);
        assert!(!i.stats.fell_back);
    }

    #[test]
    fn verified_compile_attaches_a_clean_report() {
        let m = Machine::r8000();
        let opts = CompileOptions {
            choice: SchedulerChoice::Heuristic,
            verify: VerifyLevel::Full,
            ..CompileOptions::default()
        };
        let c = compile_loop_with(&saxpy(), &m, &opts).expect("compiles");
        let report = c.audit.expect("audit ran");
        assert_eq!(report.level, VerifyLevel::Full);
        assert!(report.is_clean(), "{}", report.render_human());
        // The default path never pays for verification.
        let off = compile_loop_with(&saxpy(), &m, &CompileOptions::default()).expect("compiles");
        assert!(off.audit.is_none());
    }

    #[test]
    fn baseline_compiles() {
        let m = Machine::r8000();
        let base = compile_baseline(&saxpy(), &m);
        assert!(base.cycles_per_iter() >= 9);
    }
}
