//! Parallel compile driver.
//!
//! The figure harness compiles hundreds of loops that are independent of
//! one another, so [`Driver`] fans them across a small pool of scoped
//! threads with work stealing: each worker owns a deque seeded with a
//! round-robin share of the job indices, pops from its own front, and
//! steals from the back of a sibling when it runs dry. Results land in
//! per-index slots, so callers always observe them **in job order**
//! regardless of completion order — the parallel drivers are drop-in
//! replacements for their sequential loops.
//!
//! Compiles go through a shared [`ScheduleCache`], which both memoizes
//! repeat requests across figures and deduplicates concurrent requests
//! for the same (loop, machine, options) triple, so determinism does not
//! depend on which thread wins a race.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};

use crate::cache::{CacheStats, ScheduleCache};
use crate::compile::{
    compile_loop, compile_loop_with, CompileError, CompileOptions, CompiledLoop, SchedulerChoice,
};
use swp_ir::Loop;
use swp_machine::Machine;

/// A thread-pool + schedule-cache pair that drives compiles.
#[derive(Clone)]
pub struct Driver {
    threads: usize,
    cache: Option<Arc<ScheduleCache>>,
}

impl Default for Driver {
    /// One worker per available core, with a fresh cache.
    fn default() -> Driver {
        let threads = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        Driver::new(threads)
    }
}

impl Driver {
    /// A driver with `threads` workers (clamped to at least 1) and a
    /// fresh shared cache.
    pub fn new(threads: usize) -> Driver {
        Driver::with_cache(threads, Arc::new(ScheduleCache::new()))
    }

    /// A driver sharing an existing cache — use this to reuse compiles
    /// across figures or across nested drivers.
    pub fn with_cache(threads: usize, cache: Arc<ScheduleCache>) -> Driver {
        Driver {
            threads: threads.max(1),
            cache: Some(cache),
        }
    }

    /// A driver that always compiles from scratch. This is the reference
    /// configuration for speedup measurements and cache-correctness
    /// tests.
    pub fn uncached(threads: usize) -> Driver {
        Driver {
            threads: threads.max(1),
            cache: None,
        }
    }

    /// A single-threaded view over the same cache. Figure functions use
    /// this for their inner suite loops so only the outer fan-out spawns
    /// threads (nested parallelism on a small pool just adds contention).
    pub fn sequential_view(&self) -> Driver {
        Driver {
            threads: 1,
            cache: self.cache.clone(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared cache, if this driver memoizes.
    pub fn cache(&self) -> Option<&ScheduleCache> {
        self.cache.as_deref()
    }

    /// Hit/miss counters of the shared cache (zeros when uncached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Compile one loop, consulting the cache when enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying scheduler.
    pub fn compile(
        &self,
        lp: &Loop,
        machine: &Machine,
        choice: &SchedulerChoice,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        match &self.cache {
            Some(cache) => cache.get_or_compile(lp, machine, choice),
            None => compile_loop(lp, machine, choice).map(Arc::new),
        }
    }

    /// Compile one loop with full [`CompileOptions`] (scheduler choice +
    /// verify level), consulting the cache when enabled.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying scheduler.
    pub fn compile_with(
        &self,
        lp: &Loop,
        machine: &Machine,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        match &self.cache {
            Some(cache) => cache.get_or_compile_with(lp, machine, options),
            None => compile_loop_with(lp, machine, options).map(Arc::new),
        }
    }

    /// Run `f(0..jobs)` across the worker pool and return the results in
    /// job order. With one worker (or one job) this degenerates to a
    /// plain sequential loop on the calling thread.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run_indexed<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        // Round-robin seeding spreads long jobs (suites and loops arrive
        // roughly sorted by size) across workers; stealing rebalances
        // whatever the seeding gets wrong.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((0..jobs).skip(w).step_by(workers).collect()))
            .collect();
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let slots = &slots;
                    let f = &f;
                    s.spawn(move || {
                        while let Some(job) = next_job(queues, w) {
                            let result = f(job);
                            *slots[job].lock().expect("result slot lock") = Some(result);
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("queues drained, so every job ran")
            })
            .collect()
    }
}

/// Pop from our own front, else steal from a sibling's back.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(job) = queues[w].lock().expect("job queue lock").pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(job) = queues[victim].lock().expect("job queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 8] {
            let driver = Driver::uncached(threads);
            let out = driver.run_indexed(25, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let driver = Driver::new(8);
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        driver.run_indexed(counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_jobs_is_fine() {
        let driver = Driver::new(4);
        let out: Vec<u32> = driver.run_indexed(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_view_shares_the_cache() {
        let driver = Driver::new(4);
        let seq = driver.sequential_view();
        assert_eq!(seq.threads(), 1);
        let (a, b) = (
            driver.cache().expect("cached"),
            seq.cache().expect("cached"),
        );
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn uncached_driver_reports_zero_stats() {
        let driver = Driver::uncached(2);
        assert!(driver.cache().is_none());
        assert_eq!(driver.cache_stats(), CacheStats::default());
    }
}
