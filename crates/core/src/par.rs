//! Parallel compile driver.
//!
//! The figure harness compiles hundreds of loops that are independent of
//! one another, so [`Driver`] fans them across a small pool of scoped
//! threads with work stealing: each worker owns a deque seeded with a
//! round-robin share of the job indices, pops from its own front, and
//! steals from the back of a sibling when it runs dry. Results land in
//! per-index slots, so callers always observe them **in job order**
//! regardless of completion order — the parallel drivers are drop-in
//! replacements for their sequential loops.
//!
//! Compiles go through a shared [`ScheduleCache`], which both memoizes
//! repeat requests across figures and deduplicates concurrent requests
//! for the same (loop, machine, options) triple, so determinism does not
//! depend on which thread wins a race.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::cache::{CacheStats, ScheduleCache};
use crate::compile::{
    compile_loop, compile_loop_with, CompileError, CompileOptions, CompiledLoop, SchedulerChoice,
};
use crate::ladder::panic_message;
use swp_ir::Loop;
use swp_machine::Machine;

/// A job that panicked under [`Driver::run_indexed_catching`], reduced to
/// its index and (best-effort) message. The payload itself is dropped: it
/// is not `Sync`, and quarantine reports only need something printable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the panicking job.
    pub job: usize,
    /// Panic message, when the payload was a string.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.message)
    }
}

/// A thread-pool + schedule-cache pair that drives compiles.
#[derive(Clone)]
pub struct Driver {
    threads: usize,
    cache: Option<Arc<ScheduleCache>>,
}

impl Default for Driver {
    /// [`Driver::default_threads`] workers, with a fresh cache.
    fn default() -> Driver {
        Driver::new(Driver::default_threads())
    }
}

// Ambient worker-count hint: set by Driver::compile/compile_with around
// the underlying compile so CompileStats::driver_threads can record which
// driver configuration performed the work (0 = outside any driver).
thread_local! {
    static DRIVER_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The current thread's driver worker-count hint (0 outside a driver).
pub(crate) fn driver_threads_hint() -> usize {
    DRIVER_THREADS.with(std::cell::Cell::get)
}

/// RAII restore for the hint, so nested/sequential-view drivers unwind
/// cleanly even when a compile panics.
struct ThreadsHintGuard(usize);

impl ThreadsHintGuard {
    fn set(n: usize) -> ThreadsHintGuard {
        ThreadsHintGuard(DRIVER_THREADS.with(|c| c.replace(n)))
    }
}

impl Drop for ThreadsHintGuard {
    fn drop(&mut self) {
        DRIVER_THREADS.with(|c| c.set(self.0));
    }
}

impl Driver {
    /// The default worker count: `SWP_THREADS` when set to a positive
    /// integer (clamped to at most 4× the available parallelism, so a
    /// typo cannot fork-bomb the host), otherwise
    /// [`std::thread::available_parallelism`]. Replaces ad-hoc defaults
    /// so every entry point (driver, experiments binary, compile
    /// service) resolves threads the same way.
    pub fn default_threads() -> usize {
        let avail = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        match std::env::var("SWP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n.min(avail.saturating_mul(4)),
            _ => avail,
        }
    }

    /// A driver with `threads` workers (clamped to at least 1) and a
    /// fresh shared cache.
    pub fn new(threads: usize) -> Driver {
        Driver::with_cache(threads, Arc::new(ScheduleCache::new()))
    }

    /// A driver sharing an existing cache — use this to reuse compiles
    /// across figures or across nested drivers.
    pub fn with_cache(threads: usize, cache: Arc<ScheduleCache>) -> Driver {
        Driver {
            threads: threads.max(1),
            cache: Some(cache),
        }
    }

    /// A driver that always compiles from scratch. This is the reference
    /// configuration for speedup measurements and cache-correctness
    /// tests.
    pub fn uncached(threads: usize) -> Driver {
        Driver {
            threads: threads.max(1),
            cache: None,
        }
    }

    /// A single-threaded view over the same cache. Figure functions use
    /// this for their inner suite loops so only the outer fan-out spawns
    /// threads (nested parallelism on a small pool just adds contention).
    pub fn sequential_view(&self) -> Driver {
        Driver {
            threads: 1,
            cache: self.cache.clone(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared cache, if this driver memoizes.
    pub fn cache(&self) -> Option<&ScheduleCache> {
        self.cache.as_deref()
    }

    /// Hit/miss counters of the shared cache (zeros when uncached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Compile one loop, consulting the cache when enabled. A panicking
    /// scheduler is caught at this boundary and surfaced as
    /// [`CompileError::Internal`] — one bad loop fails its own job, not
    /// the pool.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying scheduler.
    pub fn compile(
        &self,
        lp: &Loop,
        machine: &Machine,
        choice: &SchedulerChoice,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        let _hint = ThreadsHintGuard::set(self.threads);
        catch_internal(|| match &self.cache {
            Some(cache) => cache.get_or_compile(lp, machine, choice),
            None => compile_loop(lp, machine, choice).map(Arc::new),
        })
    }

    /// Compile one loop with full [`CompileOptions`] (scheduler choice +
    /// verify level), consulting the cache when enabled. Panics are
    /// caught and surfaced as [`CompileError::Internal`], as in
    /// [`Driver::compile`].
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the underlying scheduler.
    pub fn compile_with(
        &self,
        lp: &Loop,
        machine: &Machine,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        let _hint = ThreadsHintGuard::set(self.threads);
        catch_internal(|| match &self.cache {
            Some(cache) => cache.get_or_compile_with(lp, machine, options),
            None => compile_loop_with(lp, machine, options).map(Arc::new),
        })
    }

    /// Run `f(0..jobs)` across the worker pool and return the results in
    /// job order. With one worker (or one job) this degenerates to a
    /// plain sequential loop on the calling thread.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the lowest-indexed panicking job — but only
    /// after **every** job has run, so one poisoned loop cannot abort its
    /// siblings mid-flight, and which panic surfaces does not depend on
    /// thread timing. Callers who need all jobs' outcomes use
    /// [`Driver::run_indexed_catching`] instead.
    pub fn run_indexed<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::with_capacity(jobs);
        for r in self.run_indexed_raw(jobs, f) {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// [`Driver::run_indexed`] with panics as data: each job yields
    /// either its result or a [`JobPanic`], in job order. Nothing
    /// unwinds out of this call; the pool always completes every job.
    pub fn run_indexed_catching<T, F>(&self, jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_indexed_raw(jobs, f)
            .into_iter()
            .enumerate()
            .map(|(job, r)| {
                r.map_err(|p| JobPanic {
                    job,
                    message: panic_message(p.as_ref()),
                })
            })
            .collect()
    }

    /// The shared engine: every job runs under `catch_unwind` (on the
    /// sequential path too, so thread count never changes what callers
    /// observe) and parks its `Result` in its own slot.
    fn run_indexed_raw<T, F>(
        &self,
        jobs: usize,
        f: F,
    ) -> Vec<Result<T, Box<dyn std::any::Any + Send>>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs)
                .map(|i| catch_unwind(AssertUnwindSafe(|| f(i))))
                .collect();
        }
        // Round-robin seeding spreads long jobs (suites and loops arrive
        // roughly sorted by size) across workers; stealing rebalances
        // whatever the seeding gets wrong.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((0..jobs).skip(w).step_by(workers).collect()))
            .collect();
        type Slot<T> = Mutex<Option<Result<T, Box<dyn std::any::Any + Send>>>>;
        let slots: Vec<Slot<T>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let slots = &slots;
                    let f = &f;
                    s.spawn(move || {
                        while let Some(job) = next_job(queues, w) {
                            let result = catch_unwind(AssertUnwindSafe(|| f(job)));
                            *slots[job].lock().expect("result slot lock") = Some(result);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker loops catch their jobs' panics");
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("queues drained, so every job ran")
            })
            .collect()
    }
}

/// Run `f` under `catch_unwind`, converting a panic into the structured
/// [`CompileError::Internal`] that quarantine reports are built from.
fn catch_internal<F>(f: F) -> Result<Arc<CompiledLoop>, CompileError>
where
    F: FnOnce() -> Result<Arc<CompiledLoop>, CompileError>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(CompileError::Internal {
            rung: None,
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Pop from our own front, else steal from a sibling's back.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(job) = queues[w].lock().expect("job queue lock").pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(job) = queues[victim].lock().expect("job queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_job_order() {
        for threads in [1, 2, 8] {
            let driver = Driver::uncached(threads);
            let out = driver.run_indexed(25, |i| i * i);
            assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let driver = Driver::new(8);
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        driver.run_indexed(counters.len(), |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_jobs_is_fine() {
        let driver = Driver::new(4);
        let out: Vec<u32> = driver.run_indexed(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_view_shares_the_cache() {
        let driver = Driver::new(4);
        let seq = driver.sequential_view();
        assert_eq!(seq.threads(), 1);
        let (a, b) = (
            driver.cache().expect("cached"),
            seq.cache().expect("cached"),
        );
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn uncached_driver_reports_zero_stats() {
        let driver = Driver::uncached(2);
        assert!(driver.cache().is_none());
        assert_eq!(driver.cache_stats(), CacheStats::default());
    }

    use crate::ladder::hush_injected_panics;

    #[test]
    fn catching_pool_survives_panicking_jobs() {
        hush_injected_panics();
        for threads in [1, 2, 8] {
            let driver = Driver::uncached(threads);
            let ran: Vec<AtomicUsize> = (0..30).map(|_| AtomicUsize::new(0)).collect();
            let out = driver.run_indexed_catching(ran.len(), |i| {
                ran[i].fetch_add(1, Ordering::Relaxed);
                assert!(i % 7 != 3, "expected: job {i}");
                i
            });
            // Every job ran exactly once, panicking or not.
            assert!(ran.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => {
                        assert_eq!(*v, i);
                        assert!(i % 7 != 3);
                    }
                    Err(p) => {
                        assert_eq!(p.job, i);
                        assert!(i % 7 == 3, "only planted panics fail");
                        assert!(p.message.contains(&format!("expected: job {i}")));
                    }
                }
            }
        }
    }

    #[test]
    fn run_indexed_resumes_the_first_panic_in_job_order() {
        hush_injected_panics();
        // Jobs 5 and 11 both panic; regardless of which thread hits which
        // first, the surfaced panic must be job 5's, and every other job
        // must still have run.
        for threads in [2, 8] {
            let driver = Driver::uncached(threads);
            let ran: Vec<AtomicUsize> = (0..20).map(|_| AtomicUsize::new(0)).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                driver.run_indexed(ran.len(), |i| {
                    ran[i].fetch_add(1, Ordering::Relaxed);
                    assert!(i != 5 && i != 11, "expected: job {i}");
                })
            }));
            let payload = caught.expect_err("a planted panic must surface");
            assert!(panic_message(payload.as_ref()).contains("expected: job 5"));
            assert!(ran.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}
