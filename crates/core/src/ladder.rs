//! The total-compilation degradation ladder.
//!
//! The paper's central production constraint is that the compiler must
//! *always* ship a schedule (§4: MOST runs under a time limit with the
//! heuristic pipeliner as fallback). This module generalizes that single
//! `fallback: bool` into an ordered ladder of increasingly conservative
//! schedulers:
//!
//! | rung | scheduler                          | failure mode it absorbs            |
//! |------|------------------------------------|------------------------------------|
//! | 0    | MOST ILP (no internal fallback)    | budget/deadline exhaustion         |
//! | 1    | CDCL SAT (no internal fallback)    | ILP-shaped intractability          |
//! | 2    | heuristic modulo scheduler         | optimal-search intractability      |
//! | 3    | heuristic, escalated budgets       | backtrack-starved or MaxII-bound   |
//! | 4    | non-pipelined list schedule        | — (total on any lint-clean loop)   |
//!
//! The SAT rung sits between ILP and the heuristic because it searches
//! the same horizon with the same optimality guarantee but a different
//! search engine: conflicts that starve branch-and-bound (fractional LP
//! relaxations, deep pivot chains) are sometimes dispatched in a handful
//! of learned clauses, so a loop the ILP budget cannot crack may still
//! get an optimal schedule before the ladder concedes rate-optimality.
//!
//! Rung 4 views the §4.1 list schedule as a degenerate modulo schedule
//! whose II is the full sequential iteration length. At that II every
//! loop-carried dependence is slack by construction (`t(to) ≥ t(from) +
//! latency − distance·II` holds because `distance·II` covers the whole
//! makespan) and the modulo reservation table equals the plain one, so a
//! lint-clean loop can always be compiled — the ladder is *total*.
//!
//! Two containment mechanisms wrap every rung:
//!
//! - **Panic isolation**: each rung runs under `catch_unwind`. A panic
//!   becomes a structured [`RungOutcome::Panicked`] entry in the attempt
//!   trace and the ladder demotes; it never unwinds into the driver pool.
//! - **Verify gate**: each rung's artifact passes through the
//!   `swp-verify` auditors ([`LadderOptions::gate`] level). An
//!   error-severity finding rejects the rung's schedule
//!   ([`RungOutcome::GateRejected`]) and demotes — PR 2's translation
//!   validation acting as a self-checking compiler rather than a report.
//!
//! [`ChaosOptions`] injects deterministic faults (forced panics, forced
//! budget exhaustion, schedule corruption reusing the `tests/audit.rs`
//! fault classes) at chosen rungs so the containment claims are
//! *demonstrated*, not assumed; `experiments chaos -D` denies on any
//! injected fault escaping its rung.

use crate::compile::{
    compile_heur, compile_ilp, compile_sat, CompileError, CompileStats, CompiledLoop,
};
use swp_codegen::{list_schedule, CodeSection, PipelinedLoop};
use swp_heur::HeurOptions;
use swp_ir::{Ddg, Loop, Schedule};
use swp_machine::Machine;
use swp_most::{MostError, MostOptions};
use swp_regalloc::{allocate, AllocOutcome};
use swp_sat::{SatError, SatOptions};
use swp_verify::{Severity, VerifyLevel};

/// One rung of the degradation ladder, most aggressive first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Rung 0: the MOST ILP pipeliner with its internal fallback off.
    Ilp,
    /// Rung 1: the CDCL SAT pipeliner (same horizon, same optimality
    /// certificate, different search engine) with its fallback off.
    Sat,
    /// Rung 2: the heuristic modulo scheduler at its configured budgets.
    Heuristic,
    /// Rung 3: the heuristic with exponentially escalated deterministic
    /// budgets (backtracks ×4 and MaxII +1·MinII per round).
    Escalated,
    /// Rung 4: the non-pipelined list schedule at II = sequential
    /// iteration length. Total on lint-clean loops.
    Sequential,
}

impl Rung {
    /// Every rung, demotion order.
    pub const ALL: [Rung; 5] = [
        Rung::Ilp,
        Rung::Sat,
        Rung::Heuristic,
        Rung::Escalated,
        Rung::Sequential,
    ];

    /// Ladder position (0 = most aggressive).
    pub fn index(self) -> usize {
        match self {
            Rung::Ilp => 0,
            Rung::Sat => 1,
            Rung::Heuristic => 2,
            Rung::Escalated => 3,
            Rung::Sequential => 4,
        }
    }

    /// Stable lowercase name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Ilp => "ilp",
            Rung::Sat => "sat",
            Rung::Heuristic => "heuristic",
            Rung::Escalated => "escalated",
            Rung::Sequential => "sequential",
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rung {} ({})", self.index(), self.name())
    }
}

/// Which way to corrupt a rung's artifact before the verify gate.
/// These are exactly the `tests/audit.rs` mutation classes, so each maps
/// to the analyzer family that must reject it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Move one op to cycle −1 in the claimed schedule (`SWP-V1xx`).
    NegativeTime,
    /// Reassign one value to a register beyond the file (`SWP-V2xx`).
    ClobberedRegister,
    /// Shift one kernel op off its cycle, breaking the op-for-op
    /// correspondence with the schedule (`SWP-V3xx`).
    TamperedExpansion,
}

/// A fault the chaos layer can inject at one rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosFault {
    /// Panic inside the rung (must be absorbed by `catch_unwind`).
    Panic,
    /// Fail the rung's scheduler as if its budget were exhausted, without
    /// running it. Deterministic by construction — unlike a real
    /// wall-clock deadline — so chaos results stay reproducible.
    Exhaust,
    /// Let the scheduler succeed, then corrupt its artifact before the
    /// gate (must be rejected by the auditors).
    Corrupt(Corruption),
}

/// Deterministic fault-injection plan for one compile. The default plan
/// injects nothing and adds zero cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosOptions {
    /// At most one fault per rung, indexed by [`Rung::index`].
    pub faults: [Option<ChaosFault>; 5],
    /// Panic at compile entry, *outside* rung isolation. This models the
    /// escape the per-rung `catch_unwind` cannot see and exercises the
    /// outer containment layers: [`crate::Driver`] converts it to
    /// [`CompileError::Internal`] and a panicking cache leader must clear
    /// its in-flight entry.
    pub panic_in_flight: bool,
}

impl ChaosOptions {
    /// The fault planned for `rung`, if any.
    pub fn fault_at(&self, rung: Rung) -> Option<ChaosFault> {
        self.faults[rung.index()]
    }

    /// Builder-style: plan `fault` at `rung`.
    pub fn with_fault(mut self, rung: Rung, fault: ChaosFault) -> ChaosOptions {
        self.faults[rung.index()] = Some(fault);
        self
    }

    /// Whether this plan injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.faults.iter().all(Option::is_none) && !self.panic_in_flight
    }
}

/// Configuration of the whole ladder.
#[derive(Debug, Clone)]
pub struct LadderOptions {
    /// Rung-0 budgets. The internal heuristic fallback is forced off when
    /// the rung runs ([`MostOptions::without_fallback`]); demotion is the
    /// ladder's job.
    pub most: MostOptions,
    /// Rung-1 budgets ([`SatOptions::without_fallback`] applies, as for
    /// the ILP rung).
    pub sat: SatOptions,
    /// Rung-2 configuration; rung 3 escalates from it.
    pub heur: HeurOptions,
    /// Rung-3 escalation rounds ([`HeurOptions::escalated`] 1..=N).
    pub escalation_rounds: u32,
    /// Audit level of the per-rung verify gate. The gate always runs —
    /// a ladder compile carries its report regardless of the outer
    /// [`crate::CompileOptions::verify`] setting — and error-severity
    /// findings demote. `Off` disables gating (chaos experiments use it
    /// to demonstrate what the gate is worth).
    pub gate: VerifyLevel,
    /// First rung the ladder attempts (default [`Rung::Ilp`]). Admission
    /// control demotes overloaded requests by starting lower — skipping
    /// the expensive ILP rung entirely instead of rejecting the request —
    /// while keeping every guarantee below the start rung intact.
    pub start_rung: Rung,
    /// Fault-injection plan (quiet by default).
    pub chaos: ChaosOptions,
}

impl Default for LadderOptions {
    fn default() -> LadderOptions {
        LadderOptions {
            most: MostOptions::default(),
            sat: SatOptions::default(),
            heur: HeurOptions::default(),
            escalation_rounds: 3,
            gate: VerifyLevel::Full,
            start_rung: Rung::Ilp,
            chaos: ChaosOptions::default(),
        }
    }
}

impl LadderOptions {
    /// The overload-demoted configuration admission control applies at
    /// `level` (0 = no demotion). Level 1 keeps the ILP rung but under a
    /// much tighter deterministic pivot leash; level 2+ skips straight to
    /// the heuristic rung with a reduced backtrack budget and fewer
    /// escalation rounds. Every level still ends at the sequential rung,
    /// so a demoted request always gets *an* answer — the PR 4 totality
    /// guarantee extended to the service boundary.
    pub fn demoted(&self, level: u32) -> LadderOptions {
        let mut opts = self.clone();
        match level {
            0 => {}
            1 => {
                opts.most.loop_pivot_limit = Some(
                    opts.most
                        .loop_pivot_limit
                        .map_or(100_000, |p| (p / 8).max(1)),
                );
                opts.most.pivot_limit = opts.most.pivot_limit.clamp(1, 100_000);
                opts.most.node_limit = opts.most.node_limit.clamp(1, 2_000);
                // Leash the SAT rung by the same factor, in its own
                // deterministic currency.
                opts.sat.loop_conflict_limit = Some(
                    opts.sat
                        .loop_conflict_limit
                        .map_or(25_000, |c| (c / 8).max(1)),
                );
                opts.sat.conflict_limit = opts.sat.conflict_limit.clamp(1, 25_000);
            }
            _ => {
                opts.start_rung = Rung::Heuristic;
                opts.heur.backtrack_budget = (opts.heur.backtrack_budget / 4).max(1);
                opts.escalation_rounds = opts.escalation_rounds.min(1);
            }
        }
        opts
    }
}

/// How one rung's attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung's schedule passed the gate and was shipped.
    Accepted,
    /// The input loop carries error-severity lints; no rung may certify
    /// it (recorded once, on the first rung, and the ladder stops).
    LintRejected {
        /// Error-severity lint findings.
        errors: usize,
    },
    /// The rung's scheduler returned an error.
    SchedulerFailed(String),
    /// The rung's schedule was rejected by the verify gate.
    GateRejected {
        /// Error-severity audit findings.
        errors: usize,
    },
    /// The rung panicked; `catch_unwind` absorbed it.
    Panicked(String),
}

impl RungOutcome {
    /// Stable lowercase tag for tables.
    pub fn tag(&self) -> &'static str {
        match self {
            RungOutcome::Accepted => "accepted",
            RungOutcome::LintRejected { .. } => "lint-rejected",
            RungOutcome::SchedulerFailed(_) => "sched-failed",
            RungOutcome::GateRejected { .. } => "gate-rejected",
            RungOutcome::Panicked(_) => "panicked",
        }
    }
}

/// One entry of the per-compile attempt trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: Rung,
    /// How it ended.
    pub outcome: RungOutcome,
    /// The chaos fault actually injected at this rung (`None` when the
    /// plan had one but the rung failed before it could apply — a
    /// corruption cannot be injected into a schedule that never existed).
    pub injected: Option<ChaosFault>,
    /// Whether a wall-clock deadline truncated this rung's search. Any
    /// true entry makes the whole ladder outcome host-dependent, so the
    /// schedule cache refuses to memoize it.
    pub deadline_hit: bool,
}

impl RungAttempt {
    /// Whether an injected fault escaped its containment: a planned panic
    /// not absorbed as [`RungOutcome::Panicked`], a planned exhaustion
    /// not surfacing as [`RungOutcome::SchedulerFailed`], or a planted
    /// corruption that the verify gate failed to reject. This is the
    /// predicate `experiments chaos -D` denies on.
    pub fn escaped(&self) -> bool {
        match (&self.injected, &self.outcome) {
            (None, _) => false,
            (Some(ChaosFault::Panic), RungOutcome::Panicked(_)) => false,
            (Some(ChaosFault::Exhaust), RungOutcome::SchedulerFailed(_)) => false,
            (Some(ChaosFault::Corrupt(_)), RungOutcome::GateRejected { .. }) => false,
            (Some(_), _) => true,
        }
    }

    /// One-line rendering for quarantine reports and proptest messages.
    pub fn render(&self) -> String {
        let mut out = format!("{}: {}", self.rung, self.outcome.tag());
        match &self.outcome {
            RungOutcome::SchedulerFailed(m) | RungOutcome::Panicked(m) => {
                out.push_str(&format!(" ({m})"));
            }
            RungOutcome::LintRejected { errors } | RungOutcome::GateRejected { errors } => {
                out.push_str(&format!(" ({errors} error findings)"));
            }
            RungOutcome::Accepted => {}
        }
        if let Some(f) = &self.injected {
            out.push_str(&format!(" [injected {f:?}]"));
        }
        if self.deadline_hit {
            out.push_str(" [deadline]");
        }
        out
    }
}

/// Render a whole attempt trace, one rung per line — the
/// shrinker-friendly failure message of the total-compilation proptest.
pub fn render_attempts(attempts: &[RungAttempt]) -> String {
    attempts
        .iter()
        .map(RungAttempt::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Chaos runs and panic-isolation tests inject panics on purpose, and
/// every injected payload is prefixed `"chaos:"` (harness tests also
/// use `"expected:"`). This installs a process-wide panic hook that
/// suppresses the default backtrace spew for those recognizable
/// payloads while real panics keep printing. Idempotent; safe to call
/// from concurrent tests.
pub fn hush_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            let injected =
                message.is_some_and(|m| m.starts_with("chaos:") || m.starts_with("expected:"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// What one rung produced before the gate.
enum RungResult {
    Scheduled(Box<CompiledLoop>),
    Failed { message: String, deadline_hit: bool },
}

/// Compile `lp` down the degradation ladder: try each rung in order under
/// panic isolation, gate every produced schedule through the `swp-verify`
/// auditors, and ship the first one that passes. The result's
/// [`CompiledLoop::rung`] names the winning rung and
/// [`CompiledLoop::attempts`] traces every demotion that led there.
///
/// # Errors
///
/// [`CompileError::LadderExhausted`] when every rung is rejected — only
/// possible for loops that fail the IR lints (nothing may certify them),
/// for empty loops, or under chaos injection at the final rung.
///
/// # Panics
///
/// Only via [`ChaosOptions::panic_in_flight`], which deliberately panics
/// *outside* rung isolation to exercise the outer containment layers.
pub fn compile_ladder(
    lp: &Loop,
    machine: &Machine,
    opts: &LadderOptions,
) -> Result<CompiledLoop, CompileError> {
    assert!(
        !opts.chaos.panic_in_flight,
        "chaos: injected in-flight panic (outside rung isolation)"
    );
    // Lint once, up front. Error lints mean the input itself is invalid:
    // no rung's output could pass a gate that includes them, so record a
    // single rejection instead of burning five rungs' budgets.
    let lints = if opts.gate == VerifyLevel::Full {
        swp_verify::lint_findings(lp, machine)
    } else {
        Vec::new()
    };
    let lint_errors = lints
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    if lint_errors > 0 {
        return Err(CompileError::LadderExhausted {
            attempts: vec![RungAttempt {
                rung: opts.start_rung,
                outcome: RungOutcome::LintRejected {
                    errors: lint_errors,
                },
                injected: None,
                deadline_hit: false,
            }],
        });
    }

    let mut attempts: Vec<RungAttempt> = Vec::new();
    for rung in Rung::ALL
        .into_iter()
        .filter(|r| r.index() >= opts.start_rung.index())
    {
        let fault = opts.chaos.fault_at(rung);
        let rung_span = swp_obs::span("ladder.rung").with_s("rung", rung.name());
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            attempt_rung(lp, machine, opts, rung, fault)
        }));
        let (outcome, injected, deadline_hit, compiled) = match run {
            Err(payload) => (
                RungOutcome::Panicked(panic_message(payload.as_ref())),
                fault,
                false,
                None,
            ),
            Ok(RungResult::Failed {
                message,
                deadline_hit,
            }) => {
                // A planned corruption never applied to a failed rung.
                let injected = match fault {
                    Some(ChaosFault::Corrupt(_)) => None,
                    f => f,
                };
                (
                    RungOutcome::SchedulerFailed(message),
                    injected,
                    deadline_hit,
                    None,
                )
            }
            Ok(RungResult::Scheduled(compiled)) => {
                let mut report = swp_verify::audit(&compiled.code, machine, opts.gate);
                report.findings.splice(0..0, lints.clone());
                match report.gate() {
                    Ok(()) => (
                        RungOutcome::Accepted,
                        fault,
                        compiled.stats.deadline_hit,
                        Some((compiled, report)),
                    ),
                    Err(errors) => (
                        RungOutcome::GateRejected { errors },
                        fault,
                        compiled.stats.deadline_hit,
                        None,
                    ),
                }
            }
        };
        drop(rung_span);
        let attempt = RungAttempt {
            rung,
            outcome,
            injected,
            deadline_hit,
        };
        flush_attempt(&attempt, compiled.is_some());
        attempts.push(attempt);
        if let Some((compiled, report)) = compiled {
            let mut compiled = *compiled;
            // Any deadline-truncated attempt (even a failed earlier rung)
            // made *which rung won* host-dependent; taint the result so
            // the cache refuses to memoize it.
            compiled.stats.deadline_hit = attempts.iter().any(|a| a.deadline_hit);
            compiled.audit = Some(report);
            compiled.rung = Some(rung);
            compiled.attempts = attempts;
            return Ok(compiled);
        }
    }
    Err(CompileError::LadderExhausted { attempts })
}

/// Flush one rung attempt's telemetry: what the rung did, whether chaos
/// was involved, and whether the ladder demoted past it. An attempt that
/// did not produce accepted code counts as a demotion — including a
/// rejected final rung, which "demotes" into ladder exhaustion.
fn flush_attempt(attempt: &RungAttempt, accepted: bool) {
    use swp_obs::{count, Counter};
    match &attempt.outcome {
        RungOutcome::Panicked(_) => count(Counter::LadderPanicsCaught, 1),
        RungOutcome::GateRejected { .. } => count(Counter::LadderGateRejections, 1),
        _ => {}
    }
    if !accepted {
        count(Counter::LadderDemotions, 1);
    }
    if attempt.injected.is_some() {
        count(Counter::LadderChaosInjected, 1);
    }
    if attempt.escaped() {
        count(Counter::LadderChaosEscapes, 1);
    }
}

/// Run one rung's scheduler (with chaos injection) and hand back either a
/// compiled-but-ungated artifact or a structured failure. Called inside
/// `catch_unwind`; panics here are the ladder's to absorb.
fn attempt_rung(
    lp: &Loop,
    machine: &Machine,
    opts: &LadderOptions,
    rung: Rung,
    fault: Option<ChaosFault>,
) -> RungResult {
    match fault {
        Some(ChaosFault::Panic) => panic!("chaos: injected panic at {rung}"),
        Some(ChaosFault::Exhaust) => {
            return RungResult::Failed {
                message: format!("chaos: injected budget exhaustion at {rung}"),
                deadline_hit: false,
            };
        }
        _ => {}
    }
    let result = match rung {
        Rung::Ilp => compile_ilp(lp, machine, &opts.most.without_fallback()),
        Rung::Sat => compile_sat(lp, machine, &opts.sat.without_fallback()),
        Rung::Heuristic => compile_heur(lp, machine, &opts.heur),
        Rung::Escalated => {
            let mut last = None;
            for round in 1..=opts.escalation_rounds.max(1) {
                match compile_heur(lp, machine, &opts.heur.escalated(round)) {
                    Ok(c) => {
                        last = Some(Ok(c));
                        break;
                    }
                    Err(e) => last = Some(Err(e)),
                }
            }
            last.expect("at least one escalation round runs")
        }
        Rung::Sequential => compile_sequential(lp, machine),
    };
    match result {
        Ok(mut compiled) => {
            if let Some(ChaosFault::Corrupt(how)) = fault {
                compiled.code = corrupt(&compiled.code, how);
            }
            RungResult::Scheduled(Box::new(compiled))
        }
        Err(e) => {
            let deadline_hit = matches!(
                &e,
                CompileError::Ilp(MostError::NoSchedule {
                    deadline_hit: true,
                    ..
                }) | CompileError::Sat(SatError::NoSchedule {
                    deadline_hit: true,
                    ..
                })
            );
            RungResult::Failed {
                message: e.to_string(),
                deadline_hit,
            }
        }
    }
}

/// Rung 3: the §4.1 list schedule, expanded through the *same* artifact
/// pipeline as the pipelining rungs. With II = sequential iteration
/// length every op sits in stage 0, so the "pipelined" loop degenerates
/// to an empty prologue/epilogue around a one-iteration kernel — but it
/// is a bona fide [`PipelinedLoop`] the auditors can certify and the
/// simulator can run, which is what makes the gate meaningful on the
/// final rung too.
fn compile_sequential(lp: &Loop, machine: &Machine) -> Result<CompiledLoop, CompileError> {
    if lp.is_empty() {
        return Err(CompileError::Heuristic(swp_heur::PipelineError::EmptyLoop));
    }
    let t0 = std::time::Instant::now();
    let ddg = Ddg::build(lp, machine);
    let base = list_schedule(lp, &ddg, machine);
    let schedule = base.as_schedule();
    let sched_ns = elapsed_ns(t0);
    let (outcome, alloc_ns) =
        swp_obs::timed_ns("regalloc.attempt", || allocate(lp, &schedule, machine));
    let allocation = match outcome {
        AllocOutcome::Allocated(a) => a,
        AllocOutcome::Failed { .. } => {
            // Unreachable for machine-sized loops (one non-overlapped
            // iteration has minimal pressure), but a structured error
            // beats a panic if a generated loop ever proves otherwise.
            return Err(CompileError::Internal {
                rung: Some(Rung::Sequential),
                message: "sequential rung: register allocation failed".to_owned(),
            });
        }
    };
    let (code, expand_ns) = swp_obs::timed_ns("expand", || {
        PipelinedLoop::expand(lp, &schedule, &allocation)
    });
    Ok(CompiledLoop {
        stats: CompileStats {
            min_ii: ddg.min_ii(),
            ii: code.ii(),
            fell_back: false,
            optimal: false,
            search_effort: 0,
            pivots: 0,
            deadline_hit: false,
            opt_passes: Vec::new(),
            spills: 0,
            driver_threads: crate::par::driver_threads_hint(),
            sched_ns,
            alloc_ns,
            expand_ns,
        },
        code,
        audit: None,
        rung: None,
        attempts: Vec::new(),
    })
}

fn elapsed_ns(t: std::time::Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Apply one deterministic corruption to a compiled artifact. Each class
/// is constructed to be *provably* wrong (cycle −1, register 999, a
/// kernel op off its row), so a gate that fails to reject it has
/// regressed — which is exactly what the chaos harness exists to catch.
fn corrupt(code: &PipelinedLoop, how: Corruption) -> PipelinedLoop {
    match how {
        Corruption::NegativeTime => {
            let s = code.schedule();
            let mut times = s.times().to_vec();
            match times.first_mut() {
                Some(t) => *t = -1,
                None => return code.clone(),
            }
            code.with_tampered_schedule(Schedule::new(s.ii(), times))
        }
        Corruption::ClobberedRegister => {
            match code.body().ops().iter().find_map(|o| o.result) {
                Some(v) => {
                    code.with_tampered_allocation(code.allocation().with_assignment(v, 0, 999))
                }
                // A store-only body defines nothing to clobber; fall back
                // to the expansion corruption so the injection still lands.
                None => corrupt(code, Corruption::TamperedExpansion),
            }
        }
        Corruption::TamperedExpansion => {
            let Some(&op) = code.kernel().first() else {
                return code.clone();
            };
            let mut op = op;
            op.cycle += 1;
            code.with_tampered_op(CodeSection::Kernel, 0, op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_loop, SchedulerChoice};
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    /// Deterministic ladder budgets: node/pivot counts only, no wall
    /// clocks, so tests reproduce on any host.
    fn quick() -> LadderOptions {
        LadderOptions {
            most: MostOptions {
                node_limit: 20_000,
                pivot_limit: 400_000,
                time_limit: None,
                loop_time_limit: None,
                loop_pivot_limit: Some(1_200_000),
                max_ops: 64,
                ..MostOptions::default()
            },
            sat: SatOptions {
                conflict_limit: 20_000,
                propagation_limit: 2_000_000,
                time_limit: None,
                loop_time_limit: None,
                loop_conflict_limit: Some(60_000),
                max_ops: 64,
                ..SatOptions::default()
            },
            ..LadderOptions::default()
        }
    }

    #[test]
    fn quiet_ladder_ships_rung_0_with_a_clean_gate() {
        let m = Machine::r8000();
        let c = compile_ladder(&saxpy(), &m, &quick()).expect("total");
        assert_eq!(c.rung, Some(Rung::Ilp));
        assert_eq!(c.attempts.len(), 1);
        assert_eq!(c.attempts[0].outcome, RungOutcome::Accepted);
        let report = c.audit.as_ref().expect("gate always audits");
        assert!(report.is_clean(), "{}", report.render_human());
        // Rung 0 matches a plain ILP compile of the same budgets.
        let plain = compile_loop(
            &saxpy(),
            &m,
            &SchedulerChoice::IlpWith(quick().most.without_fallback()),
        )
        .expect("ilp");
        assert_eq!(c.stats.ii, plain.stats.ii);
        assert!(!c.stats.fell_back);
    }

    #[test]
    fn injected_panic_demotes_and_is_traced() {
        hush_injected_panics();
        let m = Machine::r8000();
        let opts = LadderOptions {
            chaos: ChaosOptions::default().with_fault(Rung::Ilp, ChaosFault::Panic),
            ..quick()
        };
        let c = compile_ladder(&saxpy(), &m, &opts).expect("total");
        assert_eq!(c.rung, Some(Rung::Sat));
        assert!(matches!(c.attempts[0].outcome, RungOutcome::Panicked(_)));
        assert_eq!(c.attempts[0].injected, Some(ChaosFault::Panic));
        assert!(!c.attempts[0].escaped(), "panic was contained");
        assert_eq!(c.attempts[1].outcome, RungOutcome::Accepted);
    }

    #[test]
    fn faults_at_every_upper_rung_land_on_the_sequential_rung() {
        hush_injected_panics();
        let m = Machine::r8000();
        for fault in [
            ChaosFault::Panic,
            ChaosFault::Exhaust,
            ChaosFault::Corrupt(Corruption::NegativeTime),
            ChaosFault::Corrupt(Corruption::ClobberedRegister),
            ChaosFault::Corrupt(Corruption::TamperedExpansion),
        ] {
            let opts = LadderOptions {
                chaos: ChaosOptions::default()
                    .with_fault(Rung::Ilp, fault)
                    .with_fault(Rung::Sat, fault)
                    .with_fault(Rung::Heuristic, fault)
                    .with_fault(Rung::Escalated, fault),
                ..quick()
            };
            let c = compile_ladder(&saxpy(), &m, &opts).expect("rung 4 is total");
            assert_eq!(c.rung, Some(Rung::Sequential), "{fault:?}");
            assert_eq!(c.attempts.len(), 5);
            assert!(
                c.attempts.iter().all(|a| !a.escaped()),
                "{fault:?} escaped:\n{}",
                render_attempts(&c.attempts)
            );
            let report = c.audit.as_ref().expect("gated");
            assert!(report.is_clean(), "{}", report.render_human());
            // The sequential rung really is non-pipelined: one stage, no
            // fill/drain code, II covering the whole iteration.
            assert_eq!(c.code.stage_count(), 1);
            assert!(c.code.prologue().is_empty());
            assert!(c.code.epilogue().is_empty());
            assert!(c.stats.ii >= c.stats.min_ii);
        }
    }

    #[test]
    fn corruption_is_rejected_by_the_gate_not_shipped() {
        let m = Machine::r8000();
        let opts = LadderOptions {
            chaos: ChaosOptions::default().with_fault(
                Rung::Heuristic,
                ChaosFault::Corrupt(Corruption::NegativeTime),
            ),
            most: MostOptions {
                // Push rungs 0 and 1 out of the way deterministically.
                max_ops: 0,
                ..quick().most
            },
            sat: SatOptions {
                max_ops: 0,
                ..quick().sat
            },
            ..quick()
        };
        let c = compile_ladder(&saxpy(), &m, &opts).expect("total");
        assert!(matches!(
            c.attempts[2].outcome,
            RungOutcome::GateRejected { errors } if errors > 0
        ));
        assert_eq!(c.rung, Some(Rung::Escalated));
        assert!(c.audit.as_ref().is_some_and(|r| r.is_clean()));
    }

    #[test]
    fn gate_off_lets_a_corrupted_schedule_escape() {
        // The negative control: what the verify gate is worth.
        let m = Machine::r8000();
        let opts = LadderOptions {
            gate: VerifyLevel::Off,
            chaos: ChaosOptions::default().with_fault(
                Rung::Heuristic,
                ChaosFault::Corrupt(Corruption::NegativeTime),
            ),
            most: MostOptions {
                max_ops: 0,
                ..quick().most
            },
            sat: SatOptions {
                max_ops: 0,
                ..quick().sat
            },
            ..quick()
        };
        let c = compile_ladder(&saxpy(), &m, &opts).expect("compiles");
        assert_eq!(c.rung, Some(Rung::Heuristic));
        assert!(
            c.attempts[2].escaped(),
            "without the gate the corruption ships — and the trace says so"
        );
    }

    #[test]
    fn empty_loop_exhausts_the_ladder() {
        let m = Machine::r8000();
        let empty = LoopBuilder::new("empty").finish();
        let e = compile_ladder(&empty, &m, &quick()).expect_err("nothing to schedule");
        match e {
            CompileError::LadderExhausted { attempts } => {
                assert!(!attempts.is_empty());
                assert!(
                    attempts.iter().all(|a| a.outcome != RungOutcome::Accepted),
                    "{}",
                    render_attempts(&attempts)
                );
            }
            other => panic!("expected LadderExhausted, got {other:?}"),
        }
    }

    #[test]
    fn escalation_widens_budgets_exponentially() {
        let base = HeurOptions::default();
        let r1 = base.escalated(1);
        let r2 = base.escalated(2);
        assert_eq!(r1.backtrack_budget, base.backtrack_budget * 4);
        assert_eq!(r2.backtrack_budget, base.backtrack_budget * 16);
        assert_eq!(r2.max_ii_factor, base.max_ii_factor + 2);
    }
}
