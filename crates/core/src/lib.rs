//! # Software Pipelining Showdown
//!
//! A full reproduction of *"Software Pipelining Showdown: Optimal vs.
//! Heuristic Methods in a Production Compiler"* (Ruttenberg, Gao,
//! Stoutchinin, Lichtenstein — PLDI 1996) as a Rust library:
//!
//! - [`swp_heur`]: the SGI MIPSpro-style heuristic modulo scheduler —
//!   branch-and-bound enumeration with catch-point pruning, four priority
//!   heuristics, two-phase II search, modulo renaming + Chaitin–Briggs
//!   register allocation, exponential spilling, and memory-bank pairing;
//! - [`swp_most`]: the McGill MOST-style "optimal" pipeliner — an
//!   integer-linear-programming formulation solved by the built-in
//!   [`swp_ilp`] simplex/branch-and-bound solver, with the study's three
//!   adjustments and the heuristic pipeliner as fallback;
//! - [`swp_sat`]: a third optimal backend — a CDCL difference-logic
//!   scheduler searching MOST's horizon, raced against the other two by
//!   [`SchedulerChoice::Portfolio`];
//! - [`swp_machine`]/[`swp_sim`]: an R8000-like machine model and a
//!   cycle-accurate simulator including the two-banked cache and its
//!   bellows queue;
//! - [`swp_kernels`]: the 24 Livermore loops and 14 SPEC92fp-like suites.
//!
//! This crate is the front door: [`compile_loop`] runs either pipeliner
//! end-to-end, [`compare`] produces the paper's side-by-side measurements,
//! and [`run_suite`] scores whole benchmark suites. [`Driver`] fans those
//! entry points across a work-stealing thread pool and memoizes compiles
//! in a [`ScheduleCache`], with results guaranteed identical to the
//! sequential paths.
//!
//! # Examples
//!
//! ```
//! use showdown::{compare, SchedulerChoice};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("saxpy");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let y = b.array("y", 8);
//! let xv = b.load(x, 0, 8);
//! let yv = b.load(y, 0, 8);
//! let r = b.fmadd(a, xv, yv);
//! b.store(y, 0, 8, r);
//! let lp = b.finish();
//!
//! let c = compare(&lp, &m, &SchedulerChoice::Heuristic, &SchedulerChoice::Ilp, 10, 1000)?;
//! // §5.0: "Only very rarely does the optimal technique schedule ... at a
//! // lower II than the heuristics" — never on a loop this simple.
//! assert_eq!(c.heuristic.ii, c.ilp.ii);
//! # Ok::<(), showdown::CompileError>(())
//! ```

mod cache;
mod compare;
mod compile;
mod ladder;
mod par;
mod portfolio;
mod suite;

pub use cache::{cache_key, cache_key_with, CacheStats, ScheduleCache};
pub use compare::{compare, compare_with, LoopComparison, Measured};
pub use compile::{
    compile_baseline, compile_loop, compile_loop_with, CompileError, CompileOptions, CompileStats,
    CompiledLoop, SchedulerChoice,
};
pub use ladder::{
    compile_ladder, hush_injected_panics, render_attempts, ChaosFault, ChaosOptions, Corruption,
    LadderOptions, Rung, RungAttempt, RungOutcome,
};
pub use par::{Driver, JobPanic};
pub use portfolio::{compile_portfolio, PortfolioOptions};
pub use suite::{
    audit_suite_with, geometric_mean, ladder_suite_with, run_suite, run_suite_baseline,
    run_suite_baseline_with, run_suite_with, LadderLoopReport, LadderSuccess, LoopAudit,
    SuiteAudit, SuiteLadder, SuiteResult,
};
pub use swp_ir::{OptFinding, OptLevel, OptOutcome, PassManager};
pub use swp_obs::{CancelToken, Counter, CounterSnapshot, Histo, HistogramSnapshot, Telemetry};
pub use swp_verify::{Finding, Severity, VerifyLevel, VerifyReport};

// Re-export the component crates so downstream users need one dependency.
pub use {
    swp_codegen, swp_heur, swp_ilp, swp_ir, swp_kernels, swp_machine, swp_most, swp_obs,
    swp_regalloc, swp_sat, swp_sim, swp_verify,
};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::LoopComparison>();
        assert_send_sync::<crate::SuiteResult>();
        assert_send_sync::<crate::Driver>();
        assert_send_sync::<crate::ScheduleCache>();
    }
}
