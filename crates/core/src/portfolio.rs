//! Portfolio racing: run the backends concurrently, ship the best.
//!
//! The paper's production tension is optimal-but-slow (MOST) versus
//! fast-but-heuristic (§2); the ladder resolves it *sequentially* by
//! demotion. The portfolio resolves it in *wall-clock* terms: every
//! enabled backend races on its own scoped thread, and as soon as a
//! backend succeeds, every **strictly lower-priority** racer is
//! cooperatively cancelled — their results can no longer matter.
//!
//! Determinism is the load-bearing property. The winner is chosen by
//! fixed backend priority (ILP > SAT > heuristic) **at join**, never by
//! completion order, and a backend may only be cancelled once a
//! higher-priority backend has already succeeded — at which point its own
//! outcome is irrelevant to both the winner and the all-fail error. ILP,
//! the highest priority, is never cancelled at all. Consequently the
//! shipped code is bit-identical across hosts, driver thread counts, and
//! scheduling jitter (up to the backends' own wall-clock budgets, which
//! taint results via `deadline_hit` exactly as in direct compiles).
//!
//! Racer threads are fresh scoped threads and therefore carry **no**
//! thread-local telemetry collector: losers record nothing, so counters
//! cannot leak nondeterministic work measures. The calling thread records
//! the race-level counters (`portfolio.races`, `portfolio.winner.*`,
//! `portfolio.cancellations`) and expands the winning schedule itself.

use crate::compile::{CompileError, CompileStats, CompiledLoop};
use crate::ladder::Rung;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::time::Instant;
use swp_codegen::PipelinedLoop;
use swp_heur::HeurOptions;
use swp_ir::Loop;
use swp_machine::Machine;
use swp_most::{MostError, MostOptions};
use swp_obs::CancelToken;
use swp_sat::{SatError, SatOptions};

/// Configuration of one portfolio race.
///
/// The per-backend `cancel` fields inside [`MostOptions`], [`SatOptions`]
/// and [`HeurOptions`] are overridden for the SAT and heuristic racers:
/// the portfolio owns their cancellation. ILP keeps the caller's token —
/// it is never cancelled by the race itself.
#[derive(Debug, Clone)]
pub struct PortfolioOptions {
    /// Race the MOST ILP backend (priority 0, never cancelled).
    pub use_ilp: bool,
    /// Race the CDCL SAT backend (priority 1).
    pub use_sat: bool,
    /// Race the heuristic pipeliner (priority 2).
    pub use_heur: bool,
    /// ILP racer budgets (internal fallback forced off; the heuristic
    /// racer plays that role).
    pub most: MostOptions,
    /// SAT racer budgets (internal fallback forced off, ditto).
    pub sat: SatOptions,
    /// Heuristic racer budgets.
    pub heur: HeurOptions,
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            use_ilp: true,
            use_sat: true,
            use_heur: true,
            most: MostOptions::default(),
            sat: SatOptions::default(),
            heur: HeurOptions::default(),
        }
    }
}

/// A racing backend, in priority order (lower index wins ties at join).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Ilp,
    Sat,
    Heur,
}

impl Backend {
    fn rung(self) -> Rung {
        match self {
            Backend::Ilp => Rung::Ilp,
            Backend::Sat => Rung::Sat,
            Backend::Heur => Rung::Heuristic,
        }
    }

    fn name(self) -> &'static str {
        self.rung().name()
    }
}

/// A racer's successful product, still in backend-native form; the
/// calling thread expands only the winner.
enum RacerOk {
    Ilp(Box<swp_most::MostPipelined>),
    Sat(Box<swp_sat::SatPipelined>),
    Heur(Box<swp_heur::Pipelined>),
}

/// What one racer produced, plus its scheduling wall time.
type RacerResult = (Result<RacerOk, CompileError>, u64);

/// Race the enabled backends and ship the highest-priority success.
///
/// # Errors
///
/// When every racer fails, the highest-priority enabled backend's error
/// is returned (deterministic: an all-fail race by construction involved
/// no cancellation). [`CompileError::Internal`] when no backend is
/// enabled or a racer panicked and won by default.
pub fn compile_portfolio(
    lp: &Loop,
    machine: &Machine,
    opts: &PortfolioOptions,
) -> Result<CompiledLoop, CompileError> {
    let backends: Vec<Backend> = [
        (opts.use_ilp, Backend::Ilp),
        (opts.use_sat, Backend::Sat),
        (opts.use_heur, Backend::Heur),
    ]
    .into_iter()
    .filter_map(|(on, b)| on.then_some(b))
    .collect();
    if backends.is_empty() {
        return Err(CompileError::Internal {
            rung: None,
            message: "portfolio: no backends enabled".to_owned(),
        });
    }
    swp_obs::count(swp_obs::Counter::PortfolioRaces, 1);
    let _span = swp_obs::span("portfolio")
        .with_s("loop", lp.name())
        .with_i("backends", backends.len() as i64);

    let tokens: Vec<CancelToken> = backends.iter().map(|_| CancelToken::new()).collect();
    let slots: Vec<Mutex<Option<RacerResult>>> =
        backends.iter().map(|_| Mutex::new(None)).collect();
    let mut cancellations = 0u64;
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, bool)>();
        for (i, &backend) in backends.iter().enumerate() {
            let tx = tx.clone();
            let token = tokens[i].clone();
            let slots = &slots;
            s.spawn(move || {
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_backend(lp, machine, opts, backend, token)
                }))
                .unwrap_or_else(|payload| {
                    Err(CompileError::Internal {
                        rung: Some(backend.rung()),
                        message: crate::ladder::panic_message(payload.as_ref()),
                    })
                });
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let ok = result.is_ok();
                *slots[i].lock().expect("racer slot lock") = Some((result, ns));
                // The scope owns the receiver's lifetime; a racer outliving
                // it is impossible, so a send failure is, too.
                let _ = tx.send((i, ok));
            });
        }
        drop(tx);
        // As success notifications arrive, cancel every racer that can no
        // longer win. Completion *order* only affects how early losers
        // stop burning cycles — never which backend wins.
        let mut cancelled = vec![false; backends.len()];
        while let Ok((i, ok)) = rx.recv() {
            if !ok {
                continue;
            }
            for (j, c) in cancelled.iter_mut().enumerate().skip(i + 1) {
                if !*c {
                    *c = true;
                    tokens[j].cancel();
                    cancellations += 1;
                }
            }
        }
    });
    swp_obs::count(swp_obs::Counter::PortfolioCancellations, cancellations);

    let results: Vec<RacerResult> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("racer slot lock")
                .expect("scope joined, so every racer reported")
        })
        .collect();
    let winner = results.iter().position(|(r, _)| r.is_ok());
    let Some(w) = winner else {
        // All failed ⇒ nothing was ever cancelled ⇒ every error is as
        // deterministic as its backend; report the highest-priority one.
        let (err, _) = results.into_iter().next().expect("non-empty portfolio");
        let Err(err) = err else {
            unreachable!("no winner, so every racer failed");
        };
        return Err(err);
    };
    // A deadline-truncated failure *above* the winner makes which backend
    // won host-dependent; taint the result so the cache skips it (losers
    // below the winner were cancelled or outranked — irrelevant).
    let outranked_by_deadline = results[..w].iter().any(|(r, _)| match r {
        Err(CompileError::Ilp(MostError::NoSchedule { deadline_hit, .. }))
        | Err(CompileError::Sat(SatError::NoSchedule { deadline_hit, .. })) => *deadline_hit,
        _ => false,
    });
    let backend = backends[w];
    let (result, sched_wall_ns) = results.into_iter().nth(w).expect("winner index in range");
    let won = result.expect("winner is Ok");
    swp_obs::count(
        match backend {
            Backend::Ilp => swp_obs::Counter::PortfolioWinnerIlp,
            Backend::Sat => swp_obs::Counter::PortfolioWinnerSat,
            Backend::Heur => swp_obs::Counter::PortfolioWinnerHeuristic,
        },
        1,
    );
    let winner_span = swp_obs::span("portfolio.winner").with_s("backend", backend.name());
    let mut compiled = expand_winner(won, sched_wall_ns);
    drop(winner_span);
    compiled.stats.deadline_hit |= outranked_by_deadline;
    compiled.rung = Some(backend.rung());
    Ok(compiled)
}

/// Run one backend with the race's cancellation discipline: ILP keeps
/// the caller's token (it is never cancelled by the race), SAT and the
/// heuristic get the racer token. Internal fallbacks are off — the
/// heuristic racer *is* the fallback, running concurrently.
fn run_backend(
    lp: &Loop,
    machine: &Machine,
    opts: &PortfolioOptions,
    backend: Backend,
    token: CancelToken,
) -> Result<RacerOk, CompileError> {
    match backend {
        Backend::Ilp => swp_most::pipeline_most(lp, machine, &opts.most.without_fallback())
            .map(|p| RacerOk::Ilp(Box::new(p)))
            .map_err(CompileError::Ilp),
        Backend::Sat => {
            let sat_opts = SatOptions {
                cancel: token,
                ..opts.sat.without_fallback()
            };
            swp_sat::pipeline_sat(lp, machine, &sat_opts)
                .map(|p| RacerOk::Sat(Box::new(p)))
                .map_err(CompileError::Sat)
        }
        Backend::Heur => {
            let heur_opts = HeurOptions {
                cancel: token,
                ..opts.heur.clone()
            };
            swp_heur::pipeline(lp, machine, &heur_opts)
                .map(|p| RacerOk::Heur(Box::new(p)))
                .map_err(CompileError::Heuristic)
        }
    }
}

/// Expand the winning racer's schedule on the calling thread (which has
/// the telemetry collector) and assemble the compile result. The racer
/// measured its own scheduling wall time; allocation time is separated
/// out of it the same way the direct compile paths do.
fn expand_winner(won: RacerOk, sched_wall_ns: u64) -> CompiledLoop {
    let (body, schedule, allocation, stats) = match won {
        RacerOk::Ilp(p) => {
            if let Some(buffers) = p.stats.buffers {
                swp_obs::observe(swp_obs::Histo::Buffers, u64::from(buffers));
            }
            let stats = CompileStats {
                min_ii: p.stats.min_ii,
                ii: p.schedule.ii(),
                optimal: p.stats.optimal_ii,
                search_effort: p.stats.nodes,
                pivots: p.stats.pivots,
                deadline_hit: p.stats.deadline_hit,
                alloc_ns: p.stats.alloc_ns,
                ..CompileStats::default()
            };
            (p.body, p.schedule, p.allocation, stats)
        }
        RacerOk::Sat(p) => {
            let stats = CompileStats {
                min_ii: p.stats.min_ii,
                ii: p.schedule.ii(),
                optimal: p.stats.optimal_ii,
                search_effort: p.stats.conflicts,
                pivots: p.stats.propagations,
                deadline_hit: p.stats.deadline_hit,
                alloc_ns: p.stats.alloc_ns,
                ..CompileStats::default()
            };
            (p.body, p.schedule, p.allocation, stats)
        }
        RacerOk::Heur(p) => {
            let stats = CompileStats {
                min_ii: p.stats.min_ii,
                ii: p.schedule.ii(),
                search_effort: u64::from(p.stats.backtracks),
                spills: p.stats.spills,
                alloc_ns: p.stats.alloc_ns,
                ..CompileStats::default()
            };
            (p.body, p.schedule, p.allocation, stats)
        }
    };
    let (code, expand_ns) = swp_obs::timed_ns("expand", || {
        PipelinedLoop::expand(&body, &schedule, &allocation)
    });
    CompiledLoop {
        code,
        stats: CompileStats {
            driver_threads: crate::par::driver_threads_hint(),
            sched_ns: sched_wall_ns.saturating_sub(stats.alloc_ns),
            expand_ns,
            ..stats
        },
        audit: None,
        rung: None,
        attempts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    /// Deterministic racer budgets: work measures only, no wall clocks.
    fn quick() -> PortfolioOptions {
        PortfolioOptions {
            most: MostOptions {
                node_limit: 20_000,
                pivot_limit: 400_000,
                time_limit: None,
                loop_time_limit: None,
                loop_pivot_limit: Some(1_200_000),
                max_ops: 64,
                ..MostOptions::default()
            },
            sat: SatOptions {
                conflict_limit: 20_000,
                propagation_limit: 2_000_000,
                time_limit: None,
                loop_time_limit: None,
                loop_conflict_limit: Some(60_000),
                ..SatOptions::default()
            },
            ..PortfolioOptions::default()
        }
    }

    #[test]
    fn ilp_outranks_everyone_when_it_succeeds() {
        let m = Machine::r8000();
        let c = compile_portfolio(&saxpy(), &m, &quick()).expect("races");
        assert_eq!(c.rung, Some(Rung::Ilp));
        assert!(c.stats.optimal);
    }

    #[test]
    fn winner_is_fixed_priority_not_wall_clock() {
        // With ILP pushed aside (max_ops 0, fallback off), SAT must win
        // even though the heuristic almost always finishes first.
        let m = Machine::r8000();
        let opts = PortfolioOptions {
            most: MostOptions {
                max_ops: 0,
                ..quick().most
            },
            ..quick()
        };
        for _ in 0..3 {
            let c = compile_portfolio(&saxpy(), &m, &opts).expect("races");
            assert_eq!(c.rung, Some(Rung::Sat));
        }
    }

    #[test]
    fn subset_portfolio_ships_the_heuristic() {
        let m = Machine::r8000();
        let opts = PortfolioOptions {
            use_ilp: false,
            use_sat: false,
            ..quick()
        };
        let c = compile_portfolio(&saxpy(), &m, &opts).expect("races");
        assert_eq!(c.rung, Some(Rung::Heuristic));
    }

    #[test]
    fn empty_portfolio_is_an_error() {
        let m = Machine::r8000();
        let opts = PortfolioOptions {
            use_ilp: false,
            use_sat: false,
            use_heur: false,
            ..quick()
        };
        assert!(matches!(
            compile_portfolio(&saxpy(), &m, &opts),
            Err(CompileError::Internal { .. })
        ));
    }

    #[test]
    fn all_fail_returns_the_top_priority_error() {
        let m = Machine::r8000();
        let empty = LoopBuilder::new("empty").finish();
        let e = compile_portfolio(&empty, &m, &quick()).expect_err("nothing schedules");
        assert!(matches!(e, CompileError::Ilp(_)), "got {e:?}");
    }
}
