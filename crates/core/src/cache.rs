//! Memoizing schedule cache.
//!
//! The paper's cost asymmetry (§4.7: 67,634 s of ILP scheduling vs 261 s
//! heuristic) makes compilation the bottleneck of every experiment, and
//! the figure harness recompiles identical (loop body, machine, options)
//! triples across configurations — fig5 alone compiles each suite loop
//! with the same MOST options twice. The cache keys compiles by a
//! *stable* 64-bit fingerprint of the loop body, the machine, and the
//! scheduler options, and returns the previously expanded
//! [`CompiledLoop`] on a hit.
//!
//! Guarantees:
//! - **Keying** covers everything scheduling reads: op classes and
//!   semantics, operand/value topology, memory-access descriptors, array
//!   shapes, machine identity (name + allocatable registers), and every
//!   scheduler option. Debug names and the loop name are excluded — two
//!   α-equivalent bodies schedule identically.
//! - **In-flight dedup**: concurrent requests for one key block on the
//!   first compile instead of duplicating it, so a parallel run compiles
//!   each distinct triple exactly once and every consumer observes the
//!   *same* result object (determinism even for schedulers with
//!   wall-clock budgets).
//! - **Invalidation** is unnecessary by construction: keys are pure
//!   functions of immutable inputs. A process restart empties the cache.
//!
//! Errors are cached too: a loop MOST cannot schedule under given
//! budgets fails identically on re-query (budget options are part of the
//! key, so raising the budget creates a fresh entry). The one exception
//! is **wall-clock truncation**: a result (success *or* failure) whose
//! search was cut short by a deadline depends on host load, not on the
//! key, so memoizing it would pin a transient outcome for the whole
//! process lifetime. Such results are returned to the caller but never
//! enter the table — a re-query recompiles. Deterministic budgets
//! (`node_limit`, `pivot_limit`) never set that flag and stay fully
//! memoizable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::compile::{
    compile_loop_with, CompileError, CompileOptions, CompiledLoop, SchedulerChoice,
};
use crate::ladder::{ChaosFault, ChaosOptions, Corruption, LadderOptions};
use crate::portfolio::PortfolioOptions;
use swp_heur::HeurOptions;
use swp_ir::{Loop, OptLevel};
use swp_machine::{Machine, RegClass};
use swp_most::MostOptions;
use swp_sat::SatOptions;
use swp_verify::VerifyLevel;

/// FNV-1a, with explicit length prefixes where variable-length data is
/// folded in. Stable across runs and platforms (unlike `DefaultHasher`,
/// which documents no such guarantee).
struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> StableHasher {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.byte(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.byte(1);
                self.u64(v);
            }
            None => self.byte(0),
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

fn fold_loop(h: &mut StableHasher, lp: &Loop) {
    h.u64(lp.ops().len() as u64);
    for op in lp.ops() {
        h.u64(op.class as u64);
        h.u64(op.sem as u64);
        h.opt_u64(op.result.map(|v| u64::from(v.0)));
        h.u64(op.operands.len() as u64);
        for operand in &op.operands {
            h.u64(u64::from(operand.value.0));
            h.u64(u64::from(operand.distance));
        }
        match op.mem {
            Some(m) => {
                h.byte(1);
                h.u64(u64::from(m.array.0));
                h.i64(m.offset);
                h.i64(m.stride);
                h.bool(m.indirect);
            }
            None => h.byte(0),
        }
    }
    h.u64(lp.values().len() as u64);
    for v in lp.values() {
        h.u64(v.class as u64);
        h.opt_u64(v.def.map(|d| u64::from(d.0)));
        // Literal bits feed constant folding and strength reduction, so
        // two loops differing only in a constant must not share a key.
        h.opt_u64(v.literal);
    }
    h.u64(lp.arrays().len() as u64);
    for a in lp.arrays() {
        h.u64(u64::from(a.elem_bytes));
        h.u64(a.base_align);
    }
}

fn fold_machine(h: &mut StableHasher, machine: &Machine) {
    h.str(machine.name());
    for class in RegClass::ALL {
        h.u64(u64::from(machine.allocatable(class)));
    }
}

fn fold_heur_options(h: &mut StableHasher, opts: &HeurOptions) {
    h.byte(b'H');
    h.u64(opts.heuristics.len() as u64);
    for &heur in &opts.heuristics {
        h.u64(heur as u64);
    }
    h.u64(u64::from(opts.backtrack_budget));
    h.bool(opts.bank_pairing);
    h.u64(u64::from(opts.max_ii_factor));
    h.bool(opts.enable_spilling);
    h.bool(opts.two_phase_search);
    h.bool(opts.explore_stalls);
}

fn fold_most_options(h: &mut StableHasher, opts: &MostOptions) {
    h.byte(b'M');
    h.bool(opts.minimize_buffers);
    h.u64(opts.node_limit);
    h.u64(opts.pivot_limit);
    h.opt_u64(
        opts.time_limit
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
    );
    h.bool(opts.use_priority_orders);
    h.u64(u64::from(opts.max_ii_factor));
    h.bool(opts.fallback);
    h.opt_u64(
        opts.loop_time_limit
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
    );
    h.opt_u64(opts.loop_pivot_limit);
    h.u64(opts.max_ops as u64);
}

/// Every deterministic SAT knob; the cancel token is deliberately
/// excluded (like telemetry, cancellation cannot change what a
/// *completed* compile produced, and truncated results are never
/// memoized anyway — see [`is_transient`]).
fn fold_sat_options(h: &mut StableHasher, opts: &SatOptions) {
    h.byte(b'S');
    h.u64(opts.conflict_limit);
    h.u64(opts.propagation_limit);
    h.opt_u64(
        opts.time_limit
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
    );
    h.u64(u64::from(opts.max_ii_factor));
    h.bool(opts.fallback);
    h.opt_u64(
        opts.loop_time_limit
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
    );
    h.opt_u64(opts.loop_conflict_limit);
    h.u64(opts.max_ops as u64);
}

fn fold_portfolio_options(h: &mut StableHasher, opts: &PortfolioOptions) {
    h.byte(b'P');
    h.bool(opts.use_ilp);
    h.bool(opts.use_sat);
    h.bool(opts.use_heur);
    fold_most_options(h, &opts.most);
    fold_sat_options(h, &opts.sat);
    fold_heur_options(h, &opts.heur);
}

fn fold_chaos(h: &mut StableHasher, chaos: &ChaosOptions) {
    h.byte(b'C');
    for f in &chaos.faults {
        h.byte(match f {
            None => 0,
            Some(ChaosFault::Panic) => 1,
            Some(ChaosFault::Exhaust) => 2,
            Some(ChaosFault::Corrupt(Corruption::NegativeTime)) => 3,
            Some(ChaosFault::Corrupt(Corruption::ClobberedRegister)) => 4,
            Some(ChaosFault::Corrupt(Corruption::TamperedExpansion)) => 5,
        });
    }
    h.bool(chaos.panic_in_flight);
}

fn fold_ladder_options(h: &mut StableHasher, opts: &LadderOptions) {
    h.byte(b'L');
    fold_most_options(h, &opts.most);
    fold_sat_options(h, &opts.sat);
    fold_heur_options(h, &opts.heur);
    h.u64(u64::from(opts.escalation_rounds));
    // A demoted (lower-start) compile is a different artifact from a full
    // ladder run and must never alias one — overload demotion would
    // otherwise poison the cache (and the disk store) for quiet requests.
    h.byte(b'R');
    h.byte(opts.start_rung.index() as u8);
    h.byte(b'G');
    h.byte(match opts.gate {
        VerifyLevel::Off => 0,
        VerifyLevel::Schedule => 1,
        VerifyLevel::Full => 2,
    });
    // The chaos plan is part of the key: a fault-injected compile (its
    // demotions, its rung trace, possibly its gate rejections) must never
    // be served to — or pollute the memoized entry of — a quiet request
    // for the same loop.
    fold_chaos(h, &opts.chaos);
}

fn fold_choice(h: &mut StableHasher, choice: &SchedulerChoice) {
    // `Heuristic` and `HeuristicWith(default)` request the same compile,
    // so they must share a key; likewise for `Ilp` and `Ladder`.
    match choice {
        SchedulerChoice::Heuristic => fold_heur_options(h, &HeurOptions::default()),
        SchedulerChoice::HeuristicWith(opts) => fold_heur_options(h, opts),
        SchedulerChoice::Ilp => fold_most_options(h, &MostOptions::default()),
        SchedulerChoice::IlpWith(opts) => fold_most_options(h, opts),
        SchedulerChoice::Sat => fold_sat_options(h, &SatOptions::default()),
        SchedulerChoice::SatWith(opts) => fold_sat_options(h, opts),
        SchedulerChoice::Ladder => fold_ladder_options(h, &LadderOptions::default()),
        SchedulerChoice::LadderWith(opts) => fold_ladder_options(h, opts),
        SchedulerChoice::Portfolio => fold_portfolio_options(h, &PortfolioOptions::default()),
        SchedulerChoice::PortfolioWith(opts) => fold_portfolio_options(h, opts),
    }
}

fn fold_verify(h: &mut StableHasher, level: VerifyLevel) {
    h.byte(b'V');
    h.byte(match level {
        VerifyLevel::Off => 0,
        VerifyLevel::Schedule => 1,
        VerifyLevel::Full => 2,
    });
}

fn fold_opt(h: &mut StableHasher, level: OptLevel) {
    h.byte(b'O');
    h.byte(match level {
        OptLevel::Off => 0,
        OptLevel::Basic => 1,
        OptLevel::Full => 2,
    });
}

/// Compute the cache key for one compile request (verification off).
pub fn cache_key(lp: &Loop, machine: &Machine, choice: &SchedulerChoice) -> u64 {
    cache_key_with(lp, machine, &CompileOptions::from(choice.clone()))
}

/// Compute the cache key for one compile request with full options. The
/// verify level is part of the key: a verified entry carries its audit
/// report, so it must not be served to an unverified request (and vice
/// versa — an `Off` entry has no report to serve).
///
/// The telemetry handle is deliberately **excluded**: unlike chaos or
/// ladder options it cannot change the compiled artifact, so a traced
/// compile must alias an untraced one (and vice versa) instead of
/// recompiling — and, worse, double-counting — per observer.
pub fn cache_key_with(lp: &Loop, machine: &Machine, options: &CompileOptions) -> u64 {
    let mut h = StableHasher::new();
    fold_loop(&mut h, lp);
    fold_machine(&mut h, machine);
    fold_choice(&mut h, &options.choice);
    fold_verify(&mut h, options.verify);
    fold_opt(&mut h, options.opt);
    h.finish()
}

enum Slot {
    /// A compile for this key is in flight on some thread.
    Pending,
    /// The memoized outcome.
    Ready(Result<Arc<CompiledLoop>, CompileError>),
}

/// One lock's worth of the table. The map and its condition variable
/// travel together: a waiter blocked on `ready` always re-checks the
/// `slots` guarded by the *same* shard, so notifications cannot be lost
/// between shards.
#[derive(Default)]
struct Shard {
    slots: Mutex<HashMap<u64, Slot>>,
    ready: Condvar,
}

/// Unwind protection for the in-flight dedup protocol: the leader that
/// inserted a `Pending` slot owes its waiters a wake-up. If the compile
/// panics, this guard's `Drop` runs during unwind, removes the orphaned
/// `Pending` entry, and notifies — so a blocked waiter re-checks, finds
/// the slot empty, and becomes the new leader instead of sleeping forever
/// on a key nobody owns. Disarmed on the normal publish path.
struct PendingGuard<'a> {
    shard: &'a Shard,
    key: u64,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // The compile runs outside the slot lock, so the lock cannot be
        // poisoned by the panic being unwound; `if let` keeps this drop
        // panic-free even if that invariant ever breaks.
        if let Ok(mut slots) = self.shard.slots.lock() {
            slots.remove(&self.key);
        }
        self.shard.ready.notify_all();
    }
}

/// Whether a compile outcome was truncated by a wall-clock deadline and
/// therefore depends on host load. Transient results must not be
/// memoized: under PR 1's unconditional error memoization a timeout on a
/// loaded host would pin the failure for the whole process, flaking
/// determinism tests whose budgets were generous enough on a quiet run.
fn is_transient(result: &Result<Arc<CompiledLoop>, CompileError>) -> bool {
    match result {
        // Accepted ladder results OR `deadline_hit` across every rung
        // attempted, so a deadline-demoted (hence host-dependent) win on a
        // lower rung is covered by this same arm.
        Ok(c) => c.stats.deadline_hit,
        Err(CompileError::Ilp(swp_most::MostError::NoSchedule { deadline_hit, .. })) => {
            *deadline_hit
        }
        Err(CompileError::Sat(swp_sat::SatError::NoSchedule { deadline_hit, .. })) => *deadline_hit,
        // A cancelled heuristic search (a losing portfolio racer, or a
        // caller-owned token) was truncated by something other than its
        // deterministic budgets — never memoize it.
        Err(CompileError::Heuristic(swp_heur::PipelineError::Cancelled)) => true,
        Err(CompileError::LadderExhausted { attempts }) => attempts.iter().any(|a| a.deadline_hit),
        Err(_) => false,
    }
}

/// Aggregate cache counters, for reporting hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a memoized entry (including requests that
    /// waited on an in-flight compile of the same key).
    pub hits: u64,
    /// Requests that performed the compile.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all requests (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo table from compile requests to compiled loops,
/// sharded by key hash so concurrent requests for *different* keys never
/// contend on one lock. Each shard is an independent map + condvar pair;
/// the in-flight dedup protocol (Pending slots, leader/waiter wake-ups,
/// panic recovery) runs entirely within a key's home shard.
pub struct ScheduleCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Default shard count: enough to make lock collisions rare at the thread
/// counts the `Driver` and the compile service run (8–32 workers), small
/// enough that `len`/`clear` sweeps stay trivial.
const DEFAULT_SHARDS: usize = 16;

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache::with_shards(DEFAULT_SHARDS)
    }
}

impl ScheduleCache {
    /// An empty cache with the default shard count.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// An empty cache with an explicit shard count (clamped to at least
    /// 1). `with_shards(1)` is the pre-sharding single-lock behavior —
    /// benchmarks use it as the contention baseline.
    pub fn with_shards(shards: usize) -> ScheduleCache {
        ScheduleCache {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards (for reports and tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of a key. The FNV key is already well mixed; fold
    /// the high half in so shard choice and any power-of-two table
    /// indexing inside the map never correlate.
    fn shard_of(&self, key: u64) -> &Shard {
        let mixed = key ^ (key >> 32);
        &self.shards[(mixed % self.shards.len() as u64) as usize]
    }

    /// Compile `lp` with `choice`, or return the memoized result of an
    /// identical earlier request. Concurrent requests for the same key
    /// block until the first finishes and then share its result.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`CompileError`] from the underlying
    /// compile.
    pub fn get_or_compile(
        &self,
        lp: &Loop,
        machine: &Machine,
        choice: &SchedulerChoice,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        self.get_or_compile_with(lp, machine, &CompileOptions::from(choice.clone()))
    }

    /// [`Self::get_or_compile`] with full [`CompileOptions`]: verified
    /// compiles are memoized *with* their audit report attached, under a
    /// key that includes the verify level.
    ///
    /// # Errors
    ///
    /// Propagates (and memoizes) [`CompileError`] from the underlying
    /// compile. Deadline-truncated outcomes are propagated but *not*
    /// memoized (see the module docs).
    pub fn get_or_compile_with(
        &self,
        lp: &Loop,
        machine: &Machine,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledLoop>, CompileError> {
        // Install the request's telemetry for the whole call so hits,
        // waits, and the compile itself (on whichever thread wins the
        // leader race) all land on the requester's collector.
        let _telemetry = options
            .telemetry
            .is_enabled()
            .then(|| options.telemetry.install());
        let lookup = swp_obs::span("cache.lookup").with_s("loop", lp.name());
        let key = cache_key_with(lp, machine, options);
        let shard = self.shard_of(key);
        {
            let mut slots = shard.slots.lock().expect("cache lock");
            loop {
                match slots.get(&key) {
                    Some(Slot::Ready(r)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        swp_obs::count(swp_obs::Counter::CacheHits, 1);
                        return r.clone();
                    }
                    Some(Slot::Pending) => {
                        swp_obs::count(swp_obs::Counter::CacheInflightWaits, 1);
                        slots = shard.ready.wait(slots).expect("cache lock");
                    }
                    None => {
                        slots.insert(key, Slot::Pending);
                        break;
                    }
                }
            }
        }
        drop(lookup);
        self.misses.fetch_add(1, Ordering::Relaxed);
        swp_obs::count(swp_obs::Counter::CacheMisses, 1);
        let mut guard = PendingGuard {
            shard,
            key,
            armed: true,
        };
        let result = compile_loop_with(lp, machine, options).map(Arc::new);
        guard.armed = false;
        let mut slots = shard.slots.lock().expect("cache lock");
        if is_transient(&result) {
            // Deadline-truncated outcome: hand it to this caller but do
            // not memoize — drop the Pending slot so waiters (and future
            // requests) recompile instead of inheriting a host-load
            // artifact.
            slots.remove(&key);
        } else {
            slots.insert(key, Slot::Ready(result.clone()));
        }
        shard.ready.notify_all();
        result
    }

    /// Look up a *ready* entry by its precomputed key without compiling,
    /// waiting on in-flight leaders, or touching the hit/miss counters.
    /// Layered caches (the compile service's memory → disk → compile
    /// chain) use this to decide whether the disk store even needs to be
    /// consulted; `None` covers both "absent" and "still in flight".
    pub fn peek(&self, key: u64) -> Option<Result<Arc<CompiledLoop>, CompileError>> {
        match self
            .shard_of(key)
            .slots
            .lock()
            .expect("cache lock")
            .get(&key)
        {
            Some(Slot::Ready(r)) => Some(r.clone()),
            _ => None,
        }
    }

    /// Whether an entry (ready or in flight) exists for this request.
    pub fn contains(&self, lp: &Loop, machine: &Machine, choice: &SchedulerChoice) -> bool {
        let key = cache_key(lp, machine, choice);
        self.shard_of(key)
            .slots
            .lock()
            .expect("cache lock")
            .contains_key(&key)
    }

    /// Memoized entries (ready only).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .slots
                    .lock()
                    .expect("cache lock")
                    .values()
                    .filter(|s| matches!(s, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drop every memoized entry and zero the counters. Shards are
    /// cleared one at a time; in-flight compiles keep their Pending slots
    /// so their waiters still get woken.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut slots = shard.slots.lock().expect("cache lock");
            slots.retain(|_, s| matches!(s, Slot::Pending));
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy(name: &str) -> Loop {
        let mut b = LoopBuilder::new(name);
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let a = cache
            .get_or_compile(&lp, &m, &SchedulerChoice::Heuristic)
            .expect("compiles");
        let b = cache
            .get_or_compile(&lp, &m, &SchedulerChoice::Heuristic)
            .expect("compiles");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_ignores_debug_names_but_not_structure() {
        let m = Machine::r8000();
        let c = SchedulerChoice::Heuristic;
        assert_eq!(
            cache_key(&saxpy("a"), &m, &c),
            cache_key(&saxpy("b"), &m, &c)
        );
        let mut b = LoopBuilder::new("other");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        b.store(x, 800, 8, v);
        let other = b.finish();
        assert_ne!(cache_key(&saxpy("a"), &m, &c), cache_key(&other, &m, &c));
    }

    #[test]
    fn default_and_explicit_default_options_share_a_key() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        assert_eq!(
            cache_key(&lp, &m, &SchedulerChoice::Heuristic),
            cache_key(
                &lp,
                &m,
                &SchedulerChoice::HeuristicWith(HeurOptions::default())
            )
        );
        assert_eq!(
            cache_key(&lp, &m, &SchedulerChoice::Ilp),
            cache_key(&lp, &m, &SchedulerChoice::IlpWith(MostOptions::default()))
        );
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Heuristic),
            cache_key(&lp, &m, &SchedulerChoice::Ilp)
        );
    }

    #[test]
    fn options_and_machine_are_part_of_the_key() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        let tweaked = HeurOptions {
            backtrack_budget: 6400,
            ..HeurOptions::default()
        };
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Heuristic),
            cache_key(&lp, &m, &SchedulerChoice::HeuristicWith(tweaked))
        );
        let unbanked = Machine::r8000_unbanked();
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Heuristic),
            cache_key(&lp, &unbanked, &SchedulerChoice::Heuristic)
        );
    }

    #[test]
    fn concurrent_requests_compile_once_and_share() {
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let results: Vec<Arc<CompiledLoop>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .get_or_compile(&lp, &m, &SchedulerChoice::Heuristic)
                            .expect("compiles")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one real compile");
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn verify_level_is_part_of_the_key_and_the_report_is_memoized() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        let off = CompileOptions::from(SchedulerChoice::Heuristic);
        let full = CompileOptions {
            choice: SchedulerChoice::Heuristic,
            verify: VerifyLevel::Full,
            ..CompileOptions::default()
        };
        assert_ne!(
            cache_key_with(&lp, &m, &off),
            cache_key_with(&lp, &m, &full)
        );
        assert_eq!(cache_key(&lp, &m, &SchedulerChoice::Heuristic), {
            cache_key_with(&lp, &m, &off)
        });
        let cache = ScheduleCache::new();
        let a = cache.get_or_compile_with(&lp, &m, &full).expect("compiles");
        assert!(a.audit.as_ref().is_some_and(|r| r.is_clean()));
        let b = cache.get_or_compile_with(&lp, &m, &full).expect("compiles");
        assert!(Arc::ptr_eq(&a, &b), "verified entry is shared");
        let plain = cache
            .get_or_compile(&lp, &m, &SchedulerChoice::Heuristic)
            .expect("compiles");
        assert!(plain.audit.is_none(), "unverified request compiled fresh");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn opt_level_is_part_of_the_key_and_optimized_entries_do_not_alias() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        let off = CompileOptions::from(SchedulerChoice::Heuristic);
        let full = CompileOptions {
            choice: SchedulerChoice::Heuristic,
            opt: OptLevel::Full,
            ..CompileOptions::default()
        };
        let basic = CompileOptions {
            choice: SchedulerChoice::Heuristic,
            opt: OptLevel::Basic,
            ..CompileOptions::default()
        };
        let keys = [
            cache_key_with(&lp, &m, &off),
            cache_key_with(&lp, &m, &basic),
            cache_key_with(&lp, &m, &full),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        let cache = ScheduleCache::new();
        let opt = cache.get_or_compile_with(&lp, &m, &full).expect("compiles");
        assert!(!opt.stats.opt_passes.is_empty(), "pipeline ran");
        let plain = cache.get_or_compile_with(&lp, &m, &off).expect("compiles");
        assert!(
            plain.stats.opt_passes.is_empty(),
            "off entry compiled fresh"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn literal_bits_are_part_of_the_key() {
        let m = Machine::r8000();
        let mk = |c: f64| {
            let mut b = LoopBuilder::new("lit");
            let k = b.const_f("k", c);
            let x = b.array("x", 8);
            let v = b.load(x, 0, 8);
            let r = b.fmul(k, v);
            b.store(x, 0, 8, r);
            b.finish()
        };
        assert_ne!(
            cache_key(&mk(2.0), &m, &SchedulerChoice::Heuristic),
            cache_key(&mk(4.0), &m, &SchedulerChoice::Heuristic),
            "loops differing only in a constant must not share a key"
        );
    }

    #[test]
    fn telemetry_is_not_part_of_the_key_and_hit_rates_match_with_tracing() {
        let m = Machine::r8000();
        let lp = saxpy("t");
        let untraced = CompileOptions::from(SchedulerChoice::Heuristic);
        let traced = CompileOptions {
            telemetry: swp_obs::Telemetry::with_tracing(),
            ..CompileOptions::from(SchedulerChoice::Heuristic)
        };
        assert_eq!(
            cache_key_with(&lp, &m, &untraced),
            cache_key_with(&lp, &m, &traced),
            "observing a compile must not change its identity"
        );

        // A traced compile aliases an untraced one and vice versa.
        let cache = ScheduleCache::new();
        let a = cache
            .get_or_compile_with(&lp, &m, &untraced)
            .expect("compiles");
        let b = cache
            .get_or_compile_with(&lp, &m, &traced)
            .expect("compiles");
        assert!(Arc::ptr_eq(&a, &b), "traced request served from cache");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });

        // Hit-rate parity: an identical request sequence produces
        // identical hit/miss totals with tracing on and off. The loops
        // must differ *structurally* (the key ignores names).
        let loops: Vec<Loop> = (0..3)
            .map(|i| {
                let mut b = LoopBuilder::new("parity");
                let x = b.array("x", 8);
                let v = b.load(x, i, 8);
                b.store(x, i + 16, 8, v);
                b.finish()
            })
            .collect();
        let run = |options: &CompileOptions| {
            let cache = ScheduleCache::new();
            for _ in 0..2 {
                for lp in &loops {
                    cache
                        .get_or_compile_with(lp, &m, options)
                        .expect("compiles");
                }
            }
            cache.stats()
        };
        let off = run(&untraced);
        let on = run(&traced);
        assert_eq!(off, on, "hit rate must not depend on tracing");
        assert_eq!(off, CacheStats { hits: 3, misses: 3 });
        // The traced handle observed every cache event of its requests:
        // one hit up top, then three misses and three hits in the sweep.
        let snap = traced.telemetry.counters();
        assert_eq!(snap.get(swp_obs::Counter::CacheHits), 4);
        assert_eq!(snap.get(swp_obs::Counter::CacheMisses), 3);
    }

    #[test]
    fn errors_are_memoized() {
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let empty = LoopBuilder::new("empty").finish();
        let choice = SchedulerChoice::IlpWith(MostOptions {
            fallback: false,
            ..MostOptions::default()
        });
        let first = cache.get_or_compile(&empty, &m, &choice);
        let second = cache.get_or_compile(&empty, &m, &choice);
        assert!(first.is_err());
        assert_eq!(first.err(), second.err());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn deadline_truncated_failures_are_not_memoized() {
        // A zero wall-clock budget forces the deadline path
        // deterministically; a failure it causes must not be pinned in
        // the table, or a transient timeout on a loaded host would
        // poison every later query of the same key.
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let choice = SchedulerChoice::IlpWith(MostOptions {
            loop_time_limit: Some(std::time::Duration::ZERO),
            fallback: false,
            ..MostOptions::default()
        });
        let first = cache.get_or_compile(&lp, &m, &choice);
        let second = cache.get_or_compile(&lp, &m, &choice);
        for r in [&first, &second] {
            assert!(
                matches!(
                    r,
                    Err(CompileError::Ilp(swp_most::MostError::NoSchedule {
                        deadline_hit: true,
                        ..
                    }))
                ),
                "expected deadline-truncated failure, got {r:?}"
            );
        }
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 0, misses: 2 },
            "both requests must recompile"
        );
        assert!(cache.is_empty(), "no entry may be memoized");
    }

    #[test]
    fn deadline_truncated_successes_are_not_memoized_either() {
        // With the fallback on, a zero loop budget still yields a valid
        // schedule (the heuristic's), but one flagged deadline_hit: the
        // *decision to fall back* was host-dependent, so the result is
        // just as unmemoizable as a failure.
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let choice = SchedulerChoice::IlpWith(MostOptions {
            loop_time_limit: Some(std::time::Duration::ZERO),
            fallback: true,
            ..MostOptions::default()
        });
        let first = cache.get_or_compile(&lp, &m, &choice).expect("fallback");
        assert!(first.stats.deadline_hit);
        assert!(first.stats.fell_back);
        let second = cache.get_or_compile(&lp, &m, &choice).expect("fallback");
        assert!(!Arc::ptr_eq(&first, &second), "second request recompiled");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert!(cache.is_empty());
    }

    #[test]
    fn deterministic_budget_truncation_is_memoized() {
        // Node/pivot budgets are pure work measures: truncation by them
        // reproduces exactly, so those results stay cacheable.
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let choice = SchedulerChoice::IlpWith(MostOptions {
            node_limit: 1,
            pivot_limit: 10,
            time_limit: None,
            loop_time_limit: None,
            fallback: true,
            ..MostOptions::default()
        });
        let first = cache.get_or_compile(&lp, &m, &choice).expect("schedules");
        assert!(!first.stats.deadline_hit);
        let second = cache.get_or_compile(&lp, &m, &choice).expect("schedules");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn pivot_limit_is_part_of_the_key() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        let tweaked = MostOptions {
            pivot_limit: 1234,
            ..MostOptions::default()
        };
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Ilp),
            cache_key(&lp, &m, &SchedulerChoice::IlpWith(tweaked))
        );
        let loop_tweaked = MostOptions {
            loop_pivot_limit: Some(1234),
            ..MostOptions::default()
        };
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Ilp),
            cache_key(&lp, &m, &SchedulerChoice::IlpWith(loop_tweaked))
        );
    }

    #[test]
    fn ladder_and_chaos_options_are_part_of_the_key() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        // `Ladder` and an explicit default share a key; the ladder is a
        // distinct request from either direct scheduler.
        assert_eq!(
            cache_key(&lp, &m, &SchedulerChoice::Ladder),
            cache_key(&lp, &m, &SchedulerChoice::LadderWith(Box::default()))
        );
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Ladder),
            cache_key(&lp, &m, &SchedulerChoice::Ilp)
        );
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Ladder),
            cache_key(&lp, &m, &SchedulerChoice::Heuristic)
        );
        // Every knob separates: escalation rounds, gate level, and each
        // distinct chaos plan gets its own entry.
        let quiet = cache_key(&lp, &m, &SchedulerChoice::Ladder);
        let rounds = SchedulerChoice::LadderWith(Box::new(LadderOptions {
            escalation_rounds: 5,
            ..LadderOptions::default()
        }));
        assert_ne!(quiet, cache_key(&lp, &m, &rounds));
        let gate_off = SchedulerChoice::LadderWith(Box::new(LadderOptions {
            gate: VerifyLevel::Off,
            ..LadderOptions::default()
        }));
        assert_ne!(quiet, cache_key(&lp, &m, &gate_off));
        let mut chaos_keys = vec![quiet];
        for fault in [
            ChaosFault::Panic,
            ChaosFault::Exhaust,
            ChaosFault::Corrupt(Corruption::NegativeTime),
            ChaosFault::Corrupt(Corruption::ClobberedRegister),
            ChaosFault::Corrupt(Corruption::TamperedExpansion),
        ] {
            let choice = SchedulerChoice::LadderWith(Box::new(LadderOptions {
                chaos: ChaosOptions::default().with_fault(crate::ladder::Rung::Ilp, fault),
                ..LadderOptions::default()
            }));
            chaos_keys.push(cache_key(&lp, &m, &choice));
        }
        let in_flight = SchedulerChoice::LadderWith(Box::new(LadderOptions {
            chaos: ChaosOptions {
                panic_in_flight: true,
                ..ChaosOptions::default()
            },
            ..LadderOptions::default()
        }));
        chaos_keys.push(cache_key(&lp, &m, &in_flight));
        let distinct: std::collections::HashSet<u64> = chaos_keys.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            chaos_keys.len(),
            "chaos runs must never collide with quiet results or each other"
        );
    }

    #[test]
    fn sat_and_portfolio_keys_never_alias_the_other_backends() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        // Defaults and explicit defaults alias within a backend…
        assert_eq!(
            cache_key(&lp, &m, &SchedulerChoice::Sat),
            cache_key(&lp, &m, &SchedulerChoice::SatWith(SatOptions::default()))
        );
        assert_eq!(
            cache_key(&lp, &m, &SchedulerChoice::Portfolio),
            cache_key(&lp, &m, &SchedulerChoice::PortfolioWith(Box::default()))
        );
        // …but every backend family keys separately: a SAT or portfolio
        // record must never be served to (or overwrite) a heuristic, ILP,
        // or ladder request for the same loop.
        let keys = [
            cache_key(&lp, &m, &SchedulerChoice::Heuristic),
            cache_key(&lp, &m, &SchedulerChoice::Ilp),
            cache_key(&lp, &m, &SchedulerChoice::Sat),
            cache_key(&lp, &m, &SchedulerChoice::Ladder),
            cache_key(&lp, &m, &SchedulerChoice::Portfolio),
        ];
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len(), "backend families collided");
        // Every deterministic SAT knob separates…
        let base = cache_key(&lp, &m, &SchedulerChoice::Sat);
        for tweaked in [
            SatOptions {
                conflict_limit: 1234,
                ..SatOptions::default()
            },
            SatOptions {
                propagation_limit: 1234,
                ..SatOptions::default()
            },
            SatOptions {
                loop_conflict_limit: Some(1234),
                ..SatOptions::default()
            },
            SatOptions {
                max_ops: 7,
                ..SatOptions::default()
            },
            SatOptions::default().without_fallback(),
        ] {
            assert_ne!(
                base,
                cache_key(&lp, &m, &SchedulerChoice::SatWith(tweaked.clone())),
                "{tweaked:?} aliased the default"
            );
        }
        // …while the cancel token, like telemetry, must NOT: observing or
        // aborting a compile never changes its identity.
        let token = swp_obs::CancelToken::new();
        assert_eq!(
            base,
            cache_key(
                &lp,
                &m,
                &SchedulerChoice::SatWith(SatOptions {
                    cancel: token,
                    ..SatOptions::default()
                })
            )
        );
        // Portfolio backend subsets and racer budgets separate too.
        let pbase = cache_key(&lp, &m, &SchedulerChoice::Portfolio);
        for tweaked in [
            PortfolioOptions {
                use_sat: false,
                ..PortfolioOptions::default()
            },
            PortfolioOptions {
                use_ilp: false,
                ..PortfolioOptions::default()
            },
            PortfolioOptions {
                sat: SatOptions {
                    conflict_limit: 99,
                    ..SatOptions::default()
                },
                ..PortfolioOptions::default()
            },
        ] {
            assert_ne!(
                pbase,
                cache_key(&lp, &m, &SchedulerChoice::PortfolioWith(Box::new(tweaked)))
            );
        }
        // The ladder's SAT rung budgets are part of the ladder key.
        let sat_tweaked_ladder = SchedulerChoice::LadderWith(Box::new(LadderOptions {
            sat: SatOptions {
                conflict_limit: 99,
                ..SatOptions::default()
            },
            ..LadderOptions::default()
        }));
        assert_ne!(
            cache_key(&lp, &m, &SchedulerChoice::Ladder),
            cache_key(&lp, &m, &sat_tweaked_ladder)
        );
    }

    #[test]
    fn shard_counts_are_configurable_and_behavior_matches_single_lock() {
        let m = Machine::r8000();
        assert_eq!(ScheduleCache::new().shard_count(), DEFAULT_SHARDS);
        assert_eq!(ScheduleCache::with_shards(0).shard_count(), 1);
        // Identical request sequences produce identical hit/miss totals
        // and entry counts at any shard count, including the single-lock
        // baseline.
        let loops: Vec<Loop> = (0..6)
            .map(|i| {
                let mut b = LoopBuilder::new("shardy");
                let x = b.array("x", 8);
                let v = b.load(x, i, 8);
                b.store(x, i + 64, 8, v);
                b.finish()
            })
            .collect();
        let run = |shards: usize| {
            let cache = ScheduleCache::with_shards(shards);
            for _ in 0..2 {
                for lp in &loops {
                    cache
                        .get_or_compile(lp, &m, &SchedulerChoice::Heuristic)
                        .expect("compiles");
                }
            }
            (cache.stats(), cache.len())
        };
        let single = run(1);
        for shards in [2, 16, 64] {
            assert_eq!(run(shards), single, "{shards} shards");
        }
        assert_eq!(single.0, CacheStats { hits: 6, misses: 6 });
        assert_eq!(single.1, 6);
    }

    #[test]
    fn clear_works_across_shards() {
        let m = Machine::r8000();
        let cache = ScheduleCache::with_shards(4);
        for i in 0..5 {
            let mut b = LoopBuilder::new("c");
            let x = b.array("x", 8);
            let v = b.load(x, i, 8);
            b.store(x, i + 64, 8, v);
            cache
                .get_or_compile(&b.finish(), &m, &SchedulerChoice::Heuristic)
                .expect("compiles");
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn start_rung_is_part_of_the_key() {
        let m = Machine::r8000();
        let lp = saxpy("s");
        let quiet = cache_key(&lp, &m, &SchedulerChoice::Ladder);
        for level in [1, 2] {
            let demoted =
                SchedulerChoice::LadderWith(Box::new(LadderOptions::default().demoted(level)));
            assert_ne!(
                quiet,
                cache_key(&lp, &m, &demoted),
                "demotion level {level} must not alias the full ladder"
            );
        }
        assert_eq!(
            cache_key(
                &lp,
                &m,
                &SchedulerChoice::LadderWith(Box::new(LadderOptions::default().demoted(0)))
            ),
            quiet,
            "level 0 is no demotion at all"
        );
    }

    #[test]
    fn orphaned_pending_slot_is_cleared_by_the_guard() {
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        let key = cache_key(&lp, &m, &SchedulerChoice::Heuristic);
        let shard = cache.shard_of(key);
        shard
            .slots
            .lock()
            .expect("cache lock")
            .insert(key, Slot::Pending);
        drop(PendingGuard {
            shard,
            key,
            armed: true,
        });
        assert!(
            !shard.slots.lock().expect("cache lock").contains_key(&key),
            "an armed guard must clear its Pending slot on drop"
        );
        // With the slot cleared, a fresh request compiles normally.
        cache
            .get_or_compile(&lp, &m, &SchedulerChoice::Heuristic)
            .expect("compiles");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_leader_neither_hangs_waiters_nor_poisons_the_slot() {
        crate::ladder::hush_injected_panics();
        let m = Machine::r8000();
        let cache = ScheduleCache::new();
        let lp = saxpy("s");
        // Every rung-isolated fault is caught inside compile_ladder;
        // panic_in_flight is the one that unwinds through the cache
        // leader itself, exactly the path the PendingGuard exists for.
        let chaotic = SchedulerChoice::LadderWith(Box::new(LadderOptions {
            chaos: ChaosOptions {
                panic_in_flight: true,
                ..ChaosOptions::default()
            },
            ..LadderOptions::default()
        }));
        // Hammer one key from many threads for several rounds: leaders
        // keep panicking, waiters must keep being woken and promoted, and
        // nobody may deadlock or observe a poisoned lock.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        for _ in 0..4 {
                            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                cache.get_or_compile(&lp, &m, &chaotic)
                            }));
                            assert!(r.is_err(), "the injected panic must propagate");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("no waiter hangs or dies of poisoning");
            }
        });
        assert!(
            cache.is_empty(),
            "a panicked compile must leave nothing behind"
        );
        let chaotic_key = cache_key(&lp, &m, &chaotic);
        assert!(
            !cache
                .shard_of(chaotic_key)
                .slots
                .lock()
                .expect("cache lock stays healthy")
                .contains_key(&chaotic_key),
            "no orphaned Pending entry"
        );
        // The same cache still serves quiet compiles of the same loop.
        let quiet = cache
            .get_or_compile(&lp, &m, &SchedulerChoice::Ladder)
            .expect("quiet ladder compile succeeds");
        assert!(quiet.audit.as_ref().is_some_and(|r| r.is_clean()));
    }
}
