//! The showdown itself: side-by-side measurement of the two pipeliners on
//! one loop, with the paper's static and dynamic quality measures.

use crate::compile::{compile_loop, CompileError, CompiledLoop, SchedulerChoice};
use crate::par::Driver;
use swp_ir::Loop;
use swp_machine::Machine;
use swp_sim::{simulate, SimResult};

/// Everything measured about one scheduler's output on one loop.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Achieved II.
    pub ii: u32,
    /// MinII lower bound.
    pub min_ii: u32,
    /// Total registers (FP + integer), Figure 7's first metric.
    pub total_regs: u32,
    /// Pipeline entry/exit overhead in cycles, Figure 7's second metric.
    pub overhead_cycles: i64,
    /// Overlapped stages in the steady state.
    pub stages: u32,
    /// Simulated execution at the short trip count.
    pub short: SimResult,
    /// Simulated execution at the long trip count.
    pub long: SimResult,
    /// Whether the ILP fell back to the heuristic (always false for the
    /// heuristic row).
    pub fell_back: bool,
}

impl Measured {
    fn from_compiled(c: &CompiledLoop, machine: &Machine, short: u64, long: u64) -> Measured {
        Measured {
            ii: c.stats.ii,
            min_ii: c.stats.min_ii,
            total_regs: c.code.total_regs(),
            overhead_cycles: c.code.overhead().total_cycles(),
            stages: c.code.stage_count(),
            short: simulate(&c.code, short, machine),
            long: simulate(&c.code, long, machine),
            fell_back: c.stats.fell_back,
        }
    }
}

/// Heuristic-vs-ILP comparison on one loop (one row of Figures 6 and 7).
#[derive(Debug, Clone)]
pub struct LoopComparison {
    /// Loop name.
    pub name: String,
    /// The heuristic pipeliner's measurements.
    pub heuristic: Measured,
    /// The ILP pipeliner's measurements.
    pub ilp: Measured,
}

impl LoopComparison {
    /// Figure 7's register delta: `MIPSpro − ILP` total registers.
    pub fn reg_delta(&self) -> i64 {
        i64::from(self.heuristic.total_regs) - i64::from(self.ilp.total_regs)
    }

    /// Figure 7's overhead delta: `MIPSpro − ILP` entry/exit cycles.
    pub fn overhead_delta(&self) -> i64 {
        self.heuristic.overhead_cycles - self.ilp.overhead_cycles
    }

    /// Figure 6's relative performance (ILP time / heuristic time) at the
    /// short trip count; < 1 means ILP-scheduled code is faster.
    pub fn relative_short(&self) -> f64 {
        self.heuristic.short.cycles as f64 / self.ilp.short.cycles.max(1) as f64
    }

    /// Figure 6's relative performance at the long trip count.
    pub fn relative_long(&self) -> f64 {
        self.heuristic.long.cycles as f64 / self.ilp.long.cycles.max(1) as f64
    }
}

/// Run both pipeliners on a loop and measure everything the paper reports.
///
/// # Errors
///
/// Propagates whichever pipeliner fails first.
pub fn compare(
    lp: &Loop,
    machine: &Machine,
    heur: &SchedulerChoice,
    ilp: &SchedulerChoice,
    short_trip: u64,
    long_trip: u64,
) -> Result<LoopComparison, CompileError> {
    let h = compile_loop(lp, machine, heur)?;
    let i = compile_loop(lp, machine, ilp)?;
    Ok(LoopComparison {
        name: lp.name().to_owned(),
        heuristic: Measured::from_compiled(&h, machine, short_trip, long_trip),
        ilp: Measured::from_compiled(&i, machine, short_trip, long_trip),
    })
}

/// [`compare`] through a [`Driver`]: both compiles go through the
/// driver's schedule cache (the ILP compile of a Livermore kernel is by
/// far the most expensive step of Figures 6/7, and fig7 repeats fig6's
/// compiles exactly).
///
/// # Errors
///
/// Propagates whichever pipeliner fails, heuristic first.
pub fn compare_with(
    driver: &Driver,
    lp: &Loop,
    machine: &Machine,
    heur: &SchedulerChoice,
    ilp: &SchedulerChoice,
    short_trip: u64,
    long_trip: u64,
) -> Result<LoopComparison, CompileError> {
    let h = driver.compile(lp, machine, heur)?;
    let i = driver.compile(lp, machine, ilp)?;
    Ok(LoopComparison {
        name: lp.name().to_owned(),
        heuristic: Measured::from_compiled(&h, machine, short_trip, long_trip),
        ilp: Measured::from_compiled(&i, machine, short_trip, long_trip),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    #[test]
    fn comparison_produces_both_rows() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let c = compare(
            &lp,
            &m,
            &SchedulerChoice::Heuristic,
            &SchedulerChoice::Ilp,
            10,
            1000,
        )
        .expect("compares");
        assert_eq!(c.heuristic.ii, c.ilp.ii, "identical IIs on a trivial loop");
        assert!(c.heuristic.long.cycles > c.heuristic.short.cycles);
        assert!(c.relative_long() > 0.0);
    }
}
