//! Warm-started dual re-solves must agree with cold solves.
//!
//! The branch-and-bound correctness argument rests on one property: after
//! any sequence of bound changes, a warm [`LpEngine`] re-solve reaches the
//! same feasibility verdict and the same optimal objective as a fresh
//! engine solving the same bounds from scratch. This file checks that
//! property over random models and random single-bound changes — exactly
//! the perturbation shape a branch-and-bound node applies.

use proptest::prelude::*;
use swp_ilp::{LpEngine, LpOutcome, Model, Sense};

/// Small deterministic generator (SplitMix64) so one `u64` seed strategy
/// yields a whole random LP — the vendored proptest shim has no
/// collection strategies.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

struct RandomLp {
    model: Model,
    nvars: usize,
    upper: Vec<f64>,
    /// Bound changes to apply one at a time: (var, new_lo, new_hi).
    changes: Vec<(usize, f64, f64)>,
}

fn random_lp(seed: u64) -> RandomLp {
    let mut g = Gen(seed);
    let nvars = 2 + g.below(4);
    let nrows = 1 + g.below(5);
    let sense = if g.below(2) == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..nvars).map(|j| m.continuous(&format!("x{j}"))).collect();
    m.set_objective(vars.iter().map(|&v| (v, g.range(0.0, 4.0))));
    for _ in 0..nrows {
        let nterms = 1 + g.below(nvars);
        let terms: Vec<_> = (0..nterms)
            .map(|_| (vars[g.below(nvars)], g.range(-3.0, 3.0)))
            .collect();
        let rhs = g.range(-4.0, 8.0);
        match g.below(3) {
            0 => m.add_le(terms, rhs),
            1 => m.add_ge(terms, rhs),
            _ => m.add_eq(terms, rhs),
        }
    }
    let upper: Vec<f64> = (0..nvars).map(|_| g.range(0.5, 10.0)).collect();
    let changes: Vec<_> = (0..1 + g.below(4))
        .map(|_| {
            let j = g.below(nvars);
            let a = g.range(0.0, 3.0);
            let b = g.range(0.0, 6.0);
            (j, a.min(b), a.max(b).max(a.min(b) + 0.25))
        })
        .collect();
    RandomLp {
        model: m,
        nvars,
        upper,
        changes,
    }
}

fn verdict(o: &LpOutcome) -> &'static str {
    match o {
        LpOutcome::Optimal(_) => "optimal",
        LpOutcome::Infeasible => "infeasible",
        LpOutcome::Unbounded => "unbounded",
        LpOutcome::IterLimit => "limit",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// After each single-bound change, a warm re-solve matches a cold
    /// solve of the same bounds: identical verdict, objective within 1e-6.
    #[test]
    fn warm_resolve_matches_cold(seed in 0u64..1_000_000_000) {
        let lp = random_lp(seed);
        let mut warm = LpEngine::new(&lp.model);
        let mut lower = vec![0.0; lp.nvars];
        let mut upper = lp.upper.clone();
        // Establish the warm basis at the root bounds.
        let root = warm.solve(&lower, &upper);
        let cold_root = LpEngine::new(&lp.model).solve(&lower, &upper);
        prop_assert_eq!(verdict(&root), verdict(&cold_root), "seed {} root", seed);
        for &(j, lo, hi) in &lp.changes {
            lower[j] = lo;
            upper[j] = hi;
            let w = warm.solve(&lower, &upper);
            let c = LpEngine::new(&lp.model).solve(&lower, &upper);
            prop_assert_eq!(
                verdict(&w), verdict(&c),
                "seed {}: bound change x{} -> [{}, {}]", seed, j, lo, hi
            );
            if let (LpOutcome::Optimal(ws), LpOutcome::Optimal(cs)) = (&w, &c) {
                prop_assert!(
                    (ws.objective - cs.objective).abs() < 1e-6,
                    "seed {}: warm {} vs cold {}", seed, ws.objective, cs.objective
                );
            }
        }
    }
}
