//! Depth-first branch-and-bound over the LP relaxation.
//!
//! One [`LpEngine`] is built per solve and shared by every node. Each node
//! differs from the last solved one only in variable bounds, so the
//! engine's basis stays dual feasible and node re-solves are warm dual
//! re-solves — typically a handful of pivots instead of a cold
//! Phase-I/Phase-II. The search budget is a deterministic **pivot count**
//! (plus the node limit); wall-clock limits are opt-in and reported
//! separately via [`IlpResult::deadline_hit`] so callers can tell
//! host-dependent truncation apart from the reproducible budgets.

use crate::model::{ConstraintOp, Model, Sense, VarId, VarKind};
use crate::simplex::{Budget, LpEngine, LpOutcome, LpSolution};
use std::time::{Duration, Instant};

/// Branch-and-bound controls.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Maximum number of explored nodes (deterministic budget).
    pub node_limit: u64,
    /// Maximum total simplex pivots across all nodes (deterministic work
    /// budget — unlike wall-clock time, a pivot count reproduces exactly
    /// on any host).
    pub pivot_limit: u64,
    /// Optional wall-clock budget. The paper used 3 minutes per solve
    /// (§3.3); experiments may set this, tests and quick budgets rely on
    /// `node_limit`/`pivot_limit` instead.
    pub time_limit: Option<Duration>,
    /// Branch variable priority: the first *fractional* variable in this
    /// order is branched on. §3.3(3) of the paper found this ordering to be
    /// "by far the most important factor" in solving scheduling ILPs.
    pub branch_order: Option<Vec<VarId>>,
    /// SOS1-style branch groups, consulted before `branch_order`: for the
    /// first group containing a fractional member, branch on the member
    /// with the **largest** relaxation value. Scheduling models group the
    /// `a[i][t]` slot binaries of each op (`Σ_t a[i][t] = 1`); branching
    /// on the LP-preferred slot instead of the first fractional one lets
    /// the dive place each op where the relaxation wants it, which on
    /// large loops is the difference between ~1 node per op and an
    /// exponential backtracking thrash.
    pub branch_groups: Option<Vec<Vec<VarId>>>,
    /// Tolerance for considering a relaxation value integral.
    pub integrality_tol: f64,
    /// Stop at the first integral solution (feasibility problems).
    pub stop_at_first: bool,
    /// Explore the upper child (binary fixed to 1 / round up) first even
    /// when the relaxation value is below one half. Assignment-structured
    /// models (`Σ_t a[i][t] = 1`) spread relaxation mass thinly across
    /// every slot, so nearest-value branching dives into long chains of
    /// `a = 0` fixings that barely change the LP; fixing `a = 1` first
    /// *places* the op, turning the dive into a priority-guided list
    /// scheduler that reaches an integral leaf in roughly one node per
    /// variable in the branch order.
    pub branch_up_first: bool,
    /// Cooperative cancellation, polled per pivot batch and per node —
    /// exactly where `time_limit` is polled. A cancelled solve reports
    /// [`IlpResult::deadline_hit`] for the same reason a deadline does:
    /// the truncation point is host-dependent.
    pub cancel: swp_obs::CancelToken,
    /// A known integral solution installed as the starting incumbent
    /// (after a feasibility check against the model): the search begins
    /// with a valid solution and an armed objective cutoff instead of
    /// having to dive for one. Unlike steering the dive toward the known
    /// solution — which anchors a truncated search at that (often poor)
    /// leaf — the warm start leaves branching entirely LP-guided, so the
    /// first dive goes where the relaxation points and the known solution
    /// only serves as a pruning floor and a fallback answer.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            node_limit: 200_000,
            pivot_limit: u64::MAX,
            time_limit: None,
            branch_order: None,
            branch_groups: None,
            integrality_tol: 1e-5,
            stop_at_first: false,
            branch_up_first: false,
            cancel: swp_obs::CancelToken::never(),
            warm_start: None,
        }
    }
}

/// Outcome classification of an ILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Best possible integral solution found and proved.
    Optimal,
    /// An integral solution was found but the search was truncated by a
    /// budget (or stopped at the first solution on request).
    Feasible,
    /// Proved that no integral solution exists.
    Infeasible,
    /// Budget exhausted with no integral solution found.
    Unknown,
}

/// Result of [`solve_ilp`].
#[derive(Debug, Clone)]
pub struct IlpResult {
    /// How the search ended.
    pub status: Status,
    /// Best integral solution, if any (integer variables rounded exactly).
    pub solution: Option<LpSolution>,
    /// Nodes explored.
    pub nodes: u64,
    /// Simplex pivots performed across all nodes.
    pub pivots: u64,
    /// `B⁻¹` refactorizations performed by the shared engine.
    pub refactorizations: u64,
    /// Dual-repair bound flips performed by the shared engine.
    pub bound_flips: u64,
    /// Whether the wall-clock deadline (if any) caused truncation. Results
    /// with this flag set are host-dependent and must not be memoized.
    pub deadline_hit: bool,
}

impl IlpResult {
    /// Value of a variable in the best solution.
    ///
    /// # Panics
    ///
    /// Panics if there is no solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.solution.as_ref().expect("no solution").values[v.index()]
    }
}

/// Solve a mixed 0/1-integer linear program by branch and bound.
///
/// Returns the best integral solution found within the budgets. With
/// default options and no limits hit the result is optimal.
pub fn solve_ilp(model: &Model, options: &SolveOptions) -> IlpResult {
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

    let deadline = options.time_limit.map(|d| Instant::now() + d);
    let mut budget = Budget::new(options.pivot_limit, deadline, options.cancel.clone());
    let mut engine = LpEngine::new(model);
    let minimize = model.sense == Sense::Minimize;
    let _span = swp_obs::span("ilp.solve")
        .with_i("vars", model.vars.len() as i64)
        .with_i("rows", engine.rows() as i64);

    let mut incumbent: Option<LpSolution> = None;
    let mut nodes: u64 = 0;
    let mut prunes: u64 = 0;
    let mut warm_hit = false;
    let mut truncated = false;

    struct Frame {
        var: usize,
        saved_lo: f64,
        saved_hi: f64,
        alts: [(f64, f64); 2],
        next: usize,
    }
    let mut stack: Vec<Frame> = Vec::new();

    // Returns true when a should replace b as incumbent.
    let better = |a: f64, b: f64| if minimize { a < b - 1e-9 } else { a > b + 1e-9 };
    // Returns true when relaxation bound cannot beat the incumbent.
    let dominated = |bound: f64, inc: f64| {
        if minimize {
            bound >= inc - 1e-9
        } else {
            bound <= inc + 1e-9
        }
    };

    if let Some(start) = options
        .warm_start
        .as_ref()
        .filter(|v| warm_start_feasible(model, v, options.integrality_tol))
    {
        let mut sol = LpSolution {
            values: start.clone(),
            objective: 0.0,
        };
        for (j, v) in sol.values.iter_mut().enumerate() {
            if model.vars[j].kind != VarKind::Continuous {
                *v = v.round();
            }
        }
        sol.objective = model
            .objective
            .iter()
            .map(|&(v, c)| c * sol.values[v.index()])
            .sum();
        let cut = if minimize {
            sol.objective
        } else {
            -sol.objective
        };
        engine.set_cutoff(Some(cut));
        incumbent = Some(sol);
        warm_hit = true;
    }

    'search: loop {
        if nodes >= options.node_limit || budget.pivots >= budget.pivot_limit || budget.poll() {
            truncated = true;
            break;
        }
        nodes += 1;

        let outcome = engine.solve_budgeted(&lower, &upper, &mut budget);
        match outcome {
            LpOutcome::Optimal(sol) => {
                let prune = incumbent
                    .as_ref()
                    .is_some_and(|inc| dominated(sol.objective, inc.objective));
                if prune {
                    prunes += 1;
                }
                if !prune {
                    match pick_branch(model, &sol, options) {
                        None => {
                            // Integral: round and record.
                            let mut rounded = sol.clone();
                            for (j, v) in rounded.values.iter_mut().enumerate() {
                                if model.vars[j].kind != VarKind::Continuous {
                                    *v = v.round();
                                }
                            }
                            rounded.objective = model
                                .objective
                                .iter()
                                .map(|&(v, c)| c * rounded.values[v.index()])
                                .sum();
                            let replace = incumbent
                                .as_ref()
                                .is_none_or(|inc| better(rounded.objective, inc.objective));
                            if replace {
                                // Arm the engine's mid-solve cutoff: node
                                // re-solves whose dual bound cannot beat
                                // this incumbent stop after a few pivots.
                                let cut = if minimize {
                                    rounded.objective
                                } else {
                                    -rounded.objective
                                };
                                engine.set_cutoff(Some(cut));
                                incumbent = Some(rounded);
                                if options.stop_at_first {
                                    truncated = true;
                                    break 'search;
                                }
                            }
                        }
                        Some(j) => {
                            let v = sol.values[j];
                            let kind = model.vars[j].kind;
                            let (lo, hi) = (lower[j], upper[j]);
                            let alts =
                                branch_alternatives(kind, v, lo, hi, options.branch_up_first);
                            stack.push(Frame {
                                var: j,
                                saved_lo: lo,
                                saved_hi: hi,
                                alts,
                                next: 0,
                            });
                        }
                    }
                }
            }
            LpOutcome::Infeasible => {}
            LpOutcome::Unbounded => {
                // An unbounded relaxation of a node: the integer problem is
                // unbounded or ill-posed; report and stop.
                return finish(
                    Status::Unknown,
                    incumbent,
                    nodes,
                    prunes,
                    warm_hit,
                    &budget,
                    &engine,
                );
            }
            LpOutcome::IterLimit => {
                truncated = true;
                // A per-solve safety cap leaves the global budget intact —
                // skip the subtree and keep searching. A spent global
                // budget ends the whole search.
                if budget.exhausted() {
                    break 'search;
                }
            }
        }

        // Take the next alternative from the top of the stack (entering the
        // child we just pushed, or backtracking).
        loop {
            let Some(top) = stack.last_mut() else {
                break 'search;
            };
            if top.next < 2 {
                let (lo, hi) = top.alts[top.next];
                top.next += 1;
                lower[top.var] = lo;
                upper[top.var] = hi;
                break;
            }
            lower[top.var] = top.saved_lo;
            upper[top.var] = top.saved_hi;
            stack.pop();
        }
    }

    // Restore not needed; model untouched.
    let status = match (&incumbent, truncated) {
        (Some(_), false) => Status::Optimal,
        (Some(_), true) => Status::Feasible,
        (None, false) => Status::Infeasible,
        (None, true) => Status::Unknown,
    };
    finish(status, incumbent, nodes, prunes, warm_hit, &budget, &engine)
}

/// Assemble the result and flush the solve's work counters to telemetry.
/// Every exit path of [`solve_ilp`] funnels through here so the registry
/// totals and the returned fields can never disagree.
fn finish(
    status: Status,
    solution: Option<LpSolution>,
    nodes: u64,
    prunes: u64,
    warm_hit: bool,
    budget: &Budget,
    engine: &LpEngine,
) -> IlpResult {
    use swp_obs::{count, Counter};
    count(Counter::IlpSolves, 1);
    count(Counter::IlpNodes, nodes);
    count(Counter::IlpPrunes, prunes);
    count(Counter::IlpPivots, budget.pivots);
    count(Counter::IlpRefactorizations, engine.refactorizations());
    count(Counter::IlpBoundFlips, engine.bound_flips());
    count(Counter::IlpWarmStartHits, warm_hit as u64);
    IlpResult {
        status,
        solution,
        nodes,
        pivots: budget.pivots,
        refactorizations: engine.refactorizations(),
        bound_flips: engine.bound_flips(),
        deadline_hit: budget.deadline_hit,
    }
}

/// Pick the branching variable: the first fractional variable in the given
/// priority order, else the most fractional integer variable.
fn pick_branch(model: &Model, sol: &LpSolution, options: &SolveOptions) -> Option<usize> {
    let tol = options.integrality_tol;
    let frac = |x: f64| (x - x.round()).abs();
    if let Some(groups) = &options.branch_groups {
        for group in groups {
            let mut best: Option<(usize, f64)> = None;
            for &v in group {
                let j = v.index();
                let x = sol.values[j];
                if frac(x) > tol && best.is_none_or(|(_, bx)| x > bx) {
                    best = Some((j, x));
                }
            }
            if best.is_some() {
                return best.map(|(j, _)| j);
            }
        }
    }
    if let Some(order) = &options.branch_order {
        for &v in order {
            let j = v.index();
            if model.vars[j].kind != VarKind::Continuous && frac(sol.values[j]) > tol {
                return Some(j);
            }
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for (j, def) in model.vars.iter().enumerate() {
        if def.kind == VarKind::Continuous {
            continue;
        }
        let f = frac(sol.values[j]);
        if f > tol && best.is_none_or(|(_, bf)| f > bf) {
            best = Some((j, f));
        }
    }
    best.map(|(j, _)| j)
}

/// Whether a warm-start vector is a valid integral solution of the model:
/// right length, within bounds, integral where required, and satisfying
/// every constraint. A vector that fails is silently ignored rather than
/// poisoning the incumbent — the caller's warm start is an optimization,
/// not a promise.
fn warm_start_feasible(model: &Model, values: &[f64], tol: f64) -> bool {
    if values.len() != model.vars.len() {
        return false;
    }
    for (def, &x) in model.vars.iter().zip(values) {
        if x < def.lower - 1e-6 || x > def.upper + 1e-6 {
            return false;
        }
        if def.kind != VarKind::Continuous && (x - x.round()).abs() > tol {
            return false;
        }
    }
    model.constraints.iter().all(|c| {
        let lhs: f64 = c.terms.iter().map(|&(v, a)| a * values[v.index()]).sum();
        match c.op {
            ConstraintOp::Le => lhs <= c.rhs + 1e-6,
            ConstraintOp::Ge => lhs >= c.rhs - 1e-6,
            ConstraintOp::Eq => (lhs - c.rhs).abs() <= 1e-6,
        }
    })
}

/// Child bounds for a branch: nearer value first, unless `up_first`
/// forces the upper child (see [`SolveOptions::branch_up_first`]).
/// `up_first` applies to **binaries only** — those are the assignment
/// variables the option exists for; general integers (stages, buffer
/// counts) always take the nearer child first, since rounding a stage
/// count up just sprawls the schedule.
fn branch_alternatives(kind: VarKind, v: f64, lo: f64, hi: f64, up_first: bool) -> [(f64, f64); 2] {
    match kind {
        VarKind::Binary => {
            if up_first || v >= 0.5 {
                [(1.0, 1.0), (0.0, 0.0)]
            } else {
                [(0.0, 0.0), (1.0, 1.0)]
            }
        }
        _ => {
            let down = (lo, v.floor());
            let up = (v.ceil(), hi);
            if v - v.floor() > 0.5 {
                [up, down]
            } else {
                [down, up]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_optimal() {
        let mut m = Model::new(Sense::Maximize);
        let items = [(10.0, 5.0), (13.0, 7.0), (7.0, 4.0), (4.0, 3.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, _)| m.binary(&format!("x{i}")))
            .collect();
        m.set_objective(vars.iter().zip(&items).map(|(&v, &(p, _))| (v, p)));
        m.add_le(vars.iter().zip(&items).map(|(&v, &(_, w))| (v, w)), 10.0);
        let r = solve_ilp(&m, &SolveOptions::default());
        assert_eq!(r.status, Status::Optimal);
        assert!((r.solution.unwrap().objective - 17.0).abs() < 1e-6);
        assert!(r.pivots > 0);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x st 2x <= 5, x integer → 2 (relaxation 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer("x");
        m.set_objective([(x, 1.0)]);
        m.add_le([(x, 2.0)], 5.0);
        let r = solve_ilp(&m, &SolveOptions::default());
        assert_eq!(r.status, Status::Optimal);
        assert!((r.value(x) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x = 3 with x integer.
        let mut m = Model::new(Sense::Minimize);
        let x = m.integer("x");
        m.add_eq([(x, 2.0)], 3.0);
        let r = solve_ilp(&m, &SolveOptions::default());
        assert_eq!(r.status, Status::Infeasible);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs mirror the cost matrix
    fn assignment_problem() {
        // 3 jobs to 3 slots, costs; classic set partitioning.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i].push(m.binary(&format!("x{i}{j}")));
            }
        }
        m.set_objective(
            (0..3)
                .flat_map(|i| (0..3).map(move |j| (i, j)))
                .map(|(i, j)| (x[i][j], costs[i][j])),
        );
        for i in 0..3 {
            m.add_eq((0..3).map(|j| (x[i][j], 1.0)), 1.0);
        }
        for j in 0..3 {
            m.add_eq((0..3).map(|i| (x[i][j], 1.0)), 1.0);
        }
        let r = solve_ilp(&m, &SolveOptions::default());
        assert_eq!(r.status, Status::Optimal);
        // Optimal: j0→slot0(4)? rows to columns: min total = 4+3+... check
        // by exhaustion: permutations costs: (0,1,2):4+3+6=13; (0,2,1):4+7+1=12;
        // (1,0,2):2+4+6=12; (1,2,0):2+7+3=12; (2,0,1):8+4+1=13; (2,1,0):8+3+3=14.
        assert!((r.solution.unwrap().objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn stop_at_first_returns_feasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary("x");
        let y = m.binary("y");
        m.add_ge([(x, 1.0), (y, 1.0)], 1.0);
        let r = solve_ilp(
            &m,
            &SolveOptions {
                stop_at_first: true,
                ..SolveOptions::default()
            },
        );
        assert_eq!(r.status, Status::Feasible);
        assert!(r.solution.is_some());
    }

    #[test]
    fn node_limit_truncates() {
        // A problem that needs branching, with a 1-node budget.
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer("x");
        let y = m.integer("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_le([(x, 2.0), (y, 3.0)], 7.0);
        m.add_le([(x, 3.0), (y, 2.0)], 7.0);
        let r = solve_ilp(
            &m,
            &SolveOptions {
                node_limit: 1,
                ..SolveOptions::default()
            },
        );
        assert!(matches!(r.status, Status::Unknown | Status::Feasible));
        assert!(!r.deadline_hit);
    }

    #[test]
    fn pivot_limit_truncates_deterministically() {
        // The same tiny budget gives the same truncation point every run.
        let mut m = Model::new(Sense::Maximize);
        let x = m.integer("x");
        let y = m.integer("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_le([(x, 2.0), (y, 3.0)], 7.0);
        m.add_le([(x, 3.0), (y, 2.0)], 7.0);
        let opts = SolveOptions {
            pivot_limit: 2,
            ..SolveOptions::default()
        };
        let a = solve_ilp(&m, &opts);
        let b = solve_ilp(&m, &opts);
        assert!(matches!(a.status, Status::Unknown | Status::Feasible));
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.pivots, b.pivots);
        assert!(a.pivots <= 2);
        assert!(!a.deadline_hit);
    }

    #[test]
    fn branch_order_is_honored() {
        // Both orders find the optimum; the test checks the hook is safe.
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary("x");
        let y = m.binary("y");
        let z = m.binary("z");
        m.set_objective([(x, 2.0), (y, 3.0), (z, 4.0)]);
        m.add_le([(x, 1.0), (y, 1.0), (z, 1.0)], 2.0);
        let r = solve_ilp(
            &m,
            &SolveOptions {
                branch_order: Some(vec![z, y, x]),
                ..SolveOptions::default()
            },
        );
        assert_eq!(r.status, Status::Optimal);
        assert!((r.solution.unwrap().objective - 7.0).abs() < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs mirror the a[i][t] grid
    fn equality_heavy_scheduling_shape() {
        // A miniature a[i][t] shape: 3 ops × 3 slots, each op in exactly one
        // slot, at most 2 ops per slot, minimize weighted slot use.
        let mut m = Model::new(Sense::Minimize);
        let mut a = vec![vec![]; 3];
        for i in 0..3 {
            for t in 0..3 {
                a[i].push(m.binary(&format!("a{i}{t}")));
            }
        }
        for i in 0..3 {
            m.add_eq((0..3).map(|t| (a[i][t], 1.0)), 1.0);
        }
        for t in 0..3 {
            m.add_le((0..3).map(|i| (a[i][t], 1.0)), 2.0);
        }
        m.set_objective(
            (0..3)
                .flat_map(|i| (0..3).map(move |t| (i, t)))
                .map(|(i, t)| (a[i][t], (t as f64) + 1.0)),
        );
        let r = solve_ilp(&m, &SolveOptions::default());
        assert_eq!(r.status, Status::Optimal);
        // Two ops in slot 0 (cost 1 each), one in slot 1 (cost 2): total 4.
        assert!((r.solution.unwrap().objective - 4.0).abs() < 1e-6);
    }
}
