//! Dense two-phase primal simplex.
//!
//! Textbook tableau simplex with Dantzig pricing and an automatic switch to
//! Bland's rule to escape degenerate cycling. Dimensions in the
//! modulo-scheduling models are a few hundred rows by a few thousand
//! columns, well within dense range.

use crate::model::{ConstraintOp, Model, Sense};
use std::time::Instant;

const EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration budget ran out (treated as a solver failure).
    IterLimit,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Value per model variable.
    pub values: Vec<f64>,
}

/// Solve the LP relaxation of `model` (integrality ignored, model bounds
/// respected).
pub fn solve_lp(model: &Model) -> LpOutcome {
    let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    solve_lp_with_bounds(model, &lower, &upper, None)
}

/// Solve the LP relaxation with per-variable bounds overriding the model's
/// (used by branch-and-bound nodes). An optional wall-clock `deadline`
/// aborts long pivoting with [`LpOutcome::IterLimit`].
pub(crate) fn solve_lp_with_bounds(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpOutcome {
    let n = model.vars.len();
    debug_assert_eq!(lower.len(), n);
    debug_assert_eq!(upper.len(), n);

    for j in 0..n {
        if lower[j] > upper[j] + FEAS_EPS {
            return LpOutcome::Infeasible;
        }
    }

    // Which variables are fixed (substituted out as constants)?
    let fixed: Vec<Option<f64>> = (0..n)
        .map(|j| (upper[j] - lower[j] <= FEAS_EPS).then_some(lower[j]))
        .collect();

    // Shift x_j = lower_j + x'_j for free variables; build the row list.
    // Bound rows are added for finite upper bounds that are not implied by
    // a set-partitioning equality.
    let implied = model.implied_binary_upper();
    struct Row {
        terms: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        let mut rhs = c.rhs;
        let mut terms = Vec::with_capacity(c.terms.len());
        for &(v, a) in &c.terms {
            let j = v.index();
            match fixed[j] {
                Some(val) => rhs -= a * val,
                None => {
                    rhs -= a * lower[j];
                    terms.push((j, a));
                }
            }
        }
        rows.push(Row {
            terms,
            op: c.op,
            rhs,
        });
    }
    for j in 0..n {
        if fixed[j].is_some() || !upper[j].is_finite() {
            continue;
        }
        if implied[j] && lower[j] <= EPS && (upper[j] - 1.0).abs() <= EPS {
            continue; // Σ x = 1 row already caps this binary
        }
        rows.push(Row {
            terms: vec![(j, 1.0)],
            op: ConstraintOp::Le,
            rhs: upper[j] - lower[j],
        });
    }

    // Check trivially-contradictory empty rows.
    rows.retain(|r| {
        if !r.terms.is_empty() {
            return true;
        }
        // keep contradictions to force Infeasible below
        match r.op {
            ConstraintOp::Le => r.rhs < -FEAS_EPS,
            ConstraintOp::Ge => r.rhs > FEAS_EPS,
            ConstraintOp::Eq => r.rhs.abs() > FEAS_EPS,
        }
    });
    if rows.iter().any(|r| r.terms.is_empty()) {
        return LpOutcome::Infeasible;
    }

    // Map free variables to dense columns.
    let mut col_of = vec![usize::MAX; n];
    let mut var_of_col = Vec::new();
    for j in 0..n {
        if fixed[j].is_none() {
            col_of[j] = var_of_col.len();
            var_of_col.push(j);
        }
    }
    let nf = var_of_col.len();

    let m = rows.len();
    if m == 0 {
        // Unconstrained: optimum at the shifted origin unless the objective
        // improves without bound along some free column.
        let mut values: Vec<f64> = (0..n).map(|j| fixed[j].unwrap_or(lower[j])).collect();
        let dir = if model.sense == Sense::Maximize {
            1.0
        } else {
            -1.0
        };
        for &(v, c) in &model.objective {
            if fixed[v.index()].is_none() && c * dir > EPS && !upper[v.index()].is_finite() {
                return LpOutcome::Unbounded;
            }
            if fixed[v.index()].is_none() && c * dir > EPS {
                values[v.index()] = upper[v.index()];
            }
        }
        let objective = model
            .objective
            .iter()
            .map(|&(v, c)| c * values[v.index()])
            .sum();
        return LpOutcome::Optimal(LpSolution { objective, values });
    }

    // Standard form: count slacks and artificials.
    let mut nslack = 0;
    let mut nart = 0;
    for r in &rows {
        let rhs_neg = r.rhs < 0.0;
        let op = effective_op(r.op, rhs_neg);
        match op {
            ConstraintOp::Le => nslack += 1,
            ConstraintOp::Ge => {
                nslack += 1;
                nart += 1;
            }
            ConstraintOp::Eq => nart += 1,
        }
    }
    let ncols = nf + nslack + nart;
    let width = ncols + 1; // + rhs
    let mut t = vec![0.0f64; (m + 1) * width];
    let mut basis = vec![usize::MAX; m];
    let art_start = nf + nslack;

    let mut slack_cursor = nf;
    let mut art_cursor = art_start;
    for (i, r) in rows.iter().enumerate() {
        let rhs_neg = r.rhs < 0.0;
        let sign = if rhs_neg { -1.0 } else { 1.0 };
        for &(j, a) in &r.terms {
            t[i * width + col_of[j]] += sign * a;
        }
        t[i * width + ncols] = sign * r.rhs;
        match effective_op(r.op, rhs_neg) {
            ConstraintOp::Le => {
                t[i * width + slack_cursor] = 1.0;
                basis[i] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                t[i * width + slack_cursor] = -1.0;
                slack_cursor += 1;
                t[i * width + art_cursor] = 1.0;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
            ConstraintOp::Eq => {
                t[i * width + art_cursor] = 1.0;
                basis[i] = art_cursor;
                art_cursor += 1;
            }
        }
    }

    let max_iters = 200 * (m + ncols) + 2000;

    // Phase 1: minimize the sum of artificials.
    if nart > 0 {
        for c in art_start..ncols {
            t[m * width + c] = 1.0;
        }
        // Zero reduced costs of basic artificials.
        for i in 0..m {
            if basis[i] >= art_start {
                for c in 0..width {
                    t[m * width + c] -= t[i * width + c];
                }
            }
        }
        match run_simplex(
            &mut t, &mut basis, m, ncols, width, ncols, max_iters, deadline,
        ) {
            SimplexEnd::Optimal => {}
            SimplexEnd::Unbounded => return LpOutcome::Infeasible, // phase 1 is bounded below
            SimplexEnd::IterLimit => return LpOutcome::IterLimit,
        }
        let phase1 = -t[m * width + ncols];
        if phase1 > FEAS_EPS {
            return LpOutcome::Infeasible;
        }
        // Pivot remaining artificials out of the basis where possible.
        for i in 0..m {
            if basis[i] >= art_start {
                let mut pivoted = false;
                for c in 0..art_start {
                    if t[i * width + c].abs() > 1e-7 {
                        pivot(&mut t, &mut basis, m, width, i, c);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: the artificial stays basic at 0 and is
                    // barred from re-entering (columns ≥ art limit skipped).
                }
            }
        }
    }

    // Phase 2: install the real objective (as minimization).
    for c in 0..width {
        t[m * width + c] = 0.0;
    }
    let flip = if model.sense == Sense::Maximize {
        -1.0
    } else {
        1.0
    };
    for &(v, c) in &model.objective {
        let j = v.index();
        if fixed[j].is_none() {
            t[m * width + col_of[j]] += flip * c;
        }
    }
    for i in 0..m {
        let b = basis[i];
        if b < art_start {
            let cost = t[m * width + b];
            if cost.abs() > 0.0 {
                for c in 0..width {
                    t[m * width + c] -= cost * t[i * width + c];
                }
            }
        }
    }
    match run_simplex(
        &mut t, &mut basis, m, ncols, width, art_start, max_iters, deadline,
    ) {
        SimplexEnd::Optimal => {}
        SimplexEnd::Unbounded => return LpOutcome::Unbounded,
        SimplexEnd::IterLimit => return LpOutcome::IterLimit,
    }

    // Read off the solution.
    let mut xprime = vec![0.0f64; nf];
    for i in 0..m {
        if basis[i] < nf {
            xprime[basis[i]] = t[i * width + ncols];
        }
    }
    let mut values = vec![0.0f64; n];
    for j in 0..n {
        values[j] = match fixed[j] {
            Some(v) => v,
            None => lower[j] + xprime[col_of[j]].max(0.0),
        };
    }
    let objective = model
        .objective
        .iter()
        .map(|&(v, c)| c * values[v.index()])
        .sum();
    LpOutcome::Optimal(LpSolution { objective, values })
}

fn effective_op(op: ConstraintOp, rhs_negated: bool) -> ConstraintOp {
    if !rhs_negated {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

enum SimplexEnd {
    Optimal,
    Unbounded,
    IterLimit,
}

/// Run the simplex loop on the tableau. Columns `>= col_limit` (artificials
/// in phase 2) never enter the basis.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    t: &mut [f64],
    basis: &mut [usize],
    m: usize,
    ncols: usize,
    width: usize,
    col_limit: usize,
    max_iters: usize,
    deadline: Option<Instant>,
) -> SimplexEnd {
    let bland_after = max_iters / 4;
    for iter in 0..max_iters {
        if iter % 128 == 0 && deadline.is_some_and(|d| Instant::now() >= d) {
            return SimplexEnd::IterLimit;
        }
        let bland = iter >= bland_after;
        // Entering column.
        let mut enter = usize::MAX;
        let mut best = -EPS;
        for c in 0..col_limit.min(ncols) {
            let rc = t[m * width + c];
            if rc < -1e-9 {
                if bland {
                    enter = c;
                    break;
                }
                if rc < best {
                    best = rc;
                    enter = c;
                }
            }
        }
        if enter == usize::MAX {
            return SimplexEnd::Optimal;
        }
        // Ratio test.
        let mut leave = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = t[i * width + enter];
            if a > EPS {
                let ratio = t[i * width + ncols] / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave != usize::MAX && basis[i] < basis[leave]);
                if leave == usize::MAX || better {
                    best_ratio = ratio;
                    leave = i;
                }
            }
        }
        if leave == usize::MAX {
            return SimplexEnd::Unbounded;
        }
        pivot(t, basis, m, width, leave, enter);
    }
    SimplexEnd::IterLimit
}

fn pivot(t: &mut [f64], basis: &mut [usize], m: usize, width: usize, row: usize, col: usize) {
    let p = t[row * width + col];
    debug_assert!(p.abs() > EPS, "pivot on a zero element");
    let inv = 1.0 / p;
    for c in 0..width {
        t[row * width + c] *= inv;
    }
    t[row * width + col] = 1.0;
    for r in 0..=m {
        if r == row {
            continue;
        }
        let f = t[r * width + col];
        if f.abs() > 0.0 {
            for c in 0..width {
                t[r * width + c] -= f * t[row * width + c];
            }
            t[r * width + col] = 0.0;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn opt(o: LpOutcome) -> LpSolution {
        match o {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6 → x=4, y=0, obj 12.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 4.0);
        m.add_le([(x, 1.0), (y, 3.0)], 6.0);
        let s = opt(solve_lp(&m));
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + y = 3, x >= 1 → obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 3.0);
        m.add_ge([(x, 1.0)], 1.0);
        let s = opt(solve_lp(&m));
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.values[x.index()] >= 1.0 - 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        m.add_le([(x, 1.0)], 1.0);
        m.add_ge([(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        m.set_objective([(x, 1.0)]);
        m.add_ge([(x, 1.0)], 0.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x,y>=0: y >= x + 2; min y → y=2 at x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(y, 1.0)]);
        m.add_le([(x, 1.0), (y, -1.0)], -2.0);
        let s = opt(solve_lp(&m));
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn binary_bound_respected_in_relaxation() {
        // max x with x binary: relaxation caps at 1 (bound row).
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary("x");
        m.set_objective([(x, 1.0)]);
        let s = opt(solve_lp(&m));
        assert!((s.values[x.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        for k in 1..20 {
            m.add_le([(x, 1.0), (y, k as f64)], k as f64);
        }
        let s = opt(solve_lp(&m));
        assert!(s.objective <= 2.0 + 1e-6);
    }

    #[test]
    fn fixed_variables_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary("x");
        let y = m.continuous("y");
        m.set_objective([(y, 1.0)]);
        m.add_ge([(x, 2.0), (y, 1.0)], 3.0);
        let s = opt(solve_lp_with_bounds(
            &m,
            &[1.0, 0.0],
            &[1.0, f64::INFINITY],
            None,
        ));
        assert!((s.values[x.index()] - 1.0).abs() < 1e-9);
        assert!((s.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_minimization() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        m.set_objective([(x, 1.0)]);
        let s = opt(solve_lp(&m));
        assert_eq!(s.values[x.index()], 0.0);
    }
}
