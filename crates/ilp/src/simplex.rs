//! Revised simplex over bounded variables, with a warm-started dual
//! simplex for branch-and-bound re-solves.
//!
//! The old LP layer was a dense two-phase tableau that rebuilt itself from
//! scratch for every branch-and-bound node. This one keeps a persistent
//! [`LpEngine`] per model: structural columns are stored sparsely, the
//! basis inverse `B⁻¹` is held explicitly (dense, product-form rank-1
//! updates with periodic refactorization), and variable bounds live
//! outside the constraint matrix. A child node differs from its parent
//! only in one variable bound, which leaves the reduced costs untouched —
//! the engine stays **dual feasible** and re-solves in a handful of dual
//! pivots instead of a cold Phase-I/Phase-II.
//!
//! Singleton rows (`x ≤ k`, `x ≥ k`, `x = k`) never enter the row set;
//! they are folded into per-variable *context bounds* intersected with the
//! caller's bounds on every solve. The modulo-scheduling models' stage
//! bounds all take this form, which keeps `m` small.
//!
//! Anti-cycling: both the primal and dual loops watch for stretches of
//! degenerate pivots and switch to Bland's rule (smallest-index selection)
//! until progress resumes; a per-solve pivot cap backstops everything.

use crate::model::{ConstraintOp, Model, Sense};
use std::time::Instant;

const EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;
const DUAL_EPS: f64 = 1e-7;
/// Rank-1 updates between refactorizations of `B⁻¹`.
const REFACTOR_EVERY: u32 = 64;
/// Consecutive degenerate pivots before Bland's rule engages.
const STALL_LIMIT: u32 = 100;
/// Floating-point cells of pivot work between wall-clock polls: the poll
/// interval in *pivots* scales inversely with model size, so one sweep on
/// a large model can no longer overshoot a short deadline.
const POLL_WORK: u64 = 1 << 18;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot budget or deadline ran out (treated as a solver failure).
    IterLimit,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Value per model variable.
    pub values: Vec<f64>,
}

/// Deterministic work budget shared by every solve of one branch-and-bound
/// tree: a pivot count (host-independent) plus an optional wall-clock
/// deadline polled every [`POLL_WORK`] cells of pivot work.
#[derive(Debug)]
pub(crate) struct Budget {
    /// Maximum total pivots (bound flips included).
    pub pivot_limit: u64,
    /// Pivots performed so far.
    pub pivots: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Whether the deadline fired (distinguishes host-dependent truncation
    /// from the deterministic pivot/node budgets). Cooperative
    /// cancellation sets the same flag: like a deadline, whether it lands
    /// mid-solve depends on wall clock, so both truncations share the
    /// "host-dependent, never memoize" treatment downstream.
    pub deadline_hit: bool,
    /// Cooperative cancellation, polled wherever the deadline is polled.
    pub cancel: swp_obs::CancelToken,
    work_since_poll: u64,
}

impl Budget {
    pub(crate) fn new(
        pivot_limit: u64,
        deadline: Option<Instant>,
        cancel: swp_obs::CancelToken,
    ) -> Budget {
        Budget {
            pivot_limit,
            pivots: 0,
            deadline,
            deadline_hit: false,
            cancel,
            work_since_poll: 0,
        }
    }

    pub(crate) fn unlimited() -> Budget {
        Budget::new(u64::MAX, None, swp_obs::CancelToken::never())
    }

    /// Whether no further pivoting is allowed.
    pub(crate) fn exhausted(&self) -> bool {
        self.deadline_hit || self.pivots >= self.pivot_limit
    }

    /// Check the deadline and cancel flag right now (node-granularity poll).
    pub(crate) fn poll(&mut self) -> bool {
        if self.deadline_hit {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.deadline_hit = true;
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.deadline_hit = true;
                return true;
            }
        }
        false
    }

    /// Account one pivot of roughly `work` array cells. Returns `false`
    /// when the budget is spent and the solve must stop.
    fn step(&mut self, work: u64) -> bool {
        self.pivots += 1;
        if self.pivots >= self.pivot_limit {
            return false;
        }
        if self.deadline.is_some() || self.cancel.is_real() {
            self.work_since_poll = self.work_since_poll.saturating_add(work);
            if self.work_since_poll >= POLL_WORK {
                self.work_since_poll = 0;
                return !self.poll();
            }
        }
        true
    }
}

/// Where a variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    Lower,
    Upper,
}

/// How a simplex loop ended.
enum End {
    Done,
    Infeasible,
    Unbounded,
    Limit,
}

/// A persistent revised-simplex solver for one [`Model`].
///
/// Built once per branch-and-bound tree; every call to [`LpEngine::solve`]
/// re-solves under new variable bounds starting from the previous basis.
/// Because bound changes do not disturb dual feasibility, re-solves after
/// a branch normally need only a few dual pivots.
pub struct LpEngine {
    n: usize,
    m: usize,
    nnz: usize,
    // Structural columns of the kept (non-singleton) rows, CSC.
    col_start: Vec<usize>,
    col_row: Vec<usize>,
    col_val: Vec<f64>,
    /// Costs in minimization sense (flipped for maximize models), with a
    /// tiny deterministic anti-degeneracy perturbation folded in; slack
    /// columns carry pure perturbation. Pricing only — reported
    /// objectives come from `objective`.
    cost: Vec<f64>,
    /// Original objective terms (model sense) for reporting.
    objective: Vec<(usize, f64)>,
    rhs: Vec<f64>,
    /// Bounds implied by singleton rows, folded out of the row set.
    ctx_lo: Vec<f64>,
    ctx_hi: Vec<f64>,
    slack_lo: Vec<f64>,
    slack_hi: Vec<f64>,
    /// An empty row was contradictory: every solve is infeasible.
    contradiction: bool,
    // ---- warm state, persists across solves ----
    lo: Vec<f64>,
    hi: Vec<f64>,
    stat: Vec<VStat>,
    basis: Vec<usize>,
    /// Dense row-major `B⁻¹`.
    binv: Vec<f64>,
    x: Vec<f64>,
    updates: u32,
    fresh: bool,
    /// Objective cutoff (internal minimization sense); see [`Self::set_cutoff`].
    cutoff: Option<f64>,
    // ---- work counters (lifetime of the engine, read by B&B telemetry) ----
    refactorizations: u64,
    bound_flips: u64,
    // ---- scratch ----
    alpha: Vec<f64>,
    rho: Vec<f64>,
    prow: Vec<f64>,
    y: Vec<f64>,
    dj: Vec<f64>,
    work: Vec<f64>,
    fmat: Vec<f64>,
    /// Test hook: keep Dantzig pricing even through degenerate stalls, to
    /// demonstrate that classic cycling examples really cycle without the
    /// Bland fallback.
    #[cfg(test)]
    pub(crate) disable_anti_cycling: bool,
}

impl LpEngine {
    /// Build an engine for `model`. Singleton rows become context bounds;
    /// everything else becomes a sparse row with one bounded slack.
    pub fn new(model: &Model) -> LpEngine {
        let n = model.vars.len();
        let mut ctx_lo = vec![f64::NEG_INFINITY; n];
        let mut ctx_hi = vec![f64::INFINITY; n];
        let mut contradiction = false;
        let mut kept = Vec::new();
        for c in &model.constraints {
            match c.terms.len() {
                0 => {
                    contradiction |= match c.op {
                        ConstraintOp::Le => c.rhs < -FEAS_EPS,
                        ConstraintOp::Ge => c.rhs > FEAS_EPS,
                        ConstraintOp::Eq => c.rhs.abs() > FEAS_EPS,
                    };
                }
                1 => {
                    let (v, a) = c.terms[0];
                    let j = v.index();
                    let b = c.rhs / a;
                    let (tightens_lo, tightens_hi) = match (c.op, a > 0.0) {
                        (ConstraintOp::Eq, _) => (true, true),
                        (ConstraintOp::Le, true) | (ConstraintOp::Ge, false) => (false, true),
                        (ConstraintOp::Ge, true) | (ConstraintOp::Le, false) => (true, false),
                    };
                    if tightens_lo {
                        ctx_lo[j] = ctx_lo[j].max(b);
                    }
                    if tightens_hi {
                        ctx_hi[j] = ctx_hi[j].min(b);
                    }
                }
                _ => kept.push(c),
            }
        }
        let m = kept.len();
        let mut count = vec![0usize; n];
        for c in &kept {
            for &(v, _) in &c.terms {
                count[v.index()] += 1;
            }
        }
        let mut col_start = vec![0usize; n + 1];
        for j in 0..n {
            col_start[j + 1] = col_start[j] + count[j];
        }
        let nnz = col_start[n];
        let mut col_row = vec![0usize; nnz];
        let mut col_val = vec![0.0f64; nnz];
        let mut cursor = col_start.clone();
        for (i, c) in kept.iter().enumerate() {
            for &(v, a) in &c.terms {
                let j = v.index();
                col_row[cursor[j]] = i;
                col_val[cursor[j]] = a;
                cursor[j] += 1;
            }
        }
        let rhs: Vec<f64> = kept.iter().map(|c| c.rhs).collect();
        let mut slack_lo = vec![0.0f64; m];
        let mut slack_hi = vec![0.0f64; m];
        for (i, c) in kept.iter().enumerate() {
            match c.op {
                ConstraintOp::Le => slack_hi[i] = f64::INFINITY,
                ConstraintOp::Ge => slack_lo[i] = f64::NEG_INFINITY,
                ConstraintOp::Eq => {}
            }
        }
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let total = n + m;
        let mut cost = vec![0.0f64; total];
        let mut objective = Vec::with_capacity(model.objective.len());
        for &(v, c) in &model.objective {
            cost[v.index()] += flip * c;
            objective.push((v.index(), c));
        }
        // Anti-degeneracy guard: scheduling models carry large blocks of
        // zero-cost columns, which tie every dual ratio test and Dantzig
        // price at zero and degrade both simplex loops to an index-order
        // crawl. A tiny deterministic perturbation (SplitMix64 of the
        // column index) gives every column — slacks included — a distinct
        // reduced cost. It only steers pivot choice: reported objectives
        // are computed from `objective`, never from `cost`.
        let maxc = cost.iter().fold(0.0f64, |a, &c| a.max(c.abs()));
        let scale = 1e-9 * (1.0 + maxc);
        for (j, c) in cost.iter_mut().enumerate() {
            let mut z = (j as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let xi = (z >> 11) as f64 / (1u64 << 53) as f64;
            *c += scale * (0.5 + xi);
        }
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let mut stat = vec![VStat::Lower; total];
        for s in stat.iter_mut().skip(n) {
            *s = VStat::Basic;
        }
        LpEngine {
            n,
            m,
            nnz,
            col_start,
            col_row,
            col_val,
            cost,
            objective,
            rhs,
            ctx_lo,
            ctx_hi,
            slack_lo,
            slack_hi,
            contradiction,
            lo: vec![0.0; total],
            hi: vec![0.0; total],
            stat,
            basis: (n..total).collect(),
            binv,
            x: vec![0.0; total],
            updates: 0,
            fresh: true,
            cutoff: None,
            refactorizations: 0,
            bound_flips: 0,
            alpha: vec![0.0; m],
            rho: vec![0.0; m],
            prow: vec![0.0; m],
            y: vec![0.0; m],
            dj: vec![0.0; total],
            work: vec![0.0; m],
            fmat: vec![0.0; m * m],
            #[cfg(test)]
            disable_anti_cycling: false,
        }
    }

    /// Number of non-singleton rows the engine actually pivots on.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Total `B⁻¹` refactorizations over the engine's lifetime.
    pub fn refactorizations(&self) -> u64 {
        self.refactorizations
    }

    /// Total dual-repair bound flips over the engine's lifetime.
    pub fn bound_flips(&self) -> u64 {
        self.bound_flips
    }

    /// Solve under the given per-variable bounds with no budget.
    pub fn solve(&mut self, lower: &[f64], upper: &[f64]) -> LpOutcome {
        self.solve_budgeted(lower, upper, &mut Budget::unlimited())
    }

    /// Install an objective cutoff (internal minimization sense) for
    /// subsequent solves, or clear it with `None`. A dual-simplex run
    /// whose objective — a valid lower bound at every dual-feasible
    /// basis — exceeds the cutoff by a safety margin stops early and
    /// reports the node infeasible-for-our-purposes, sparing the pivots
    /// a full solve of a doomed branch-and-bound node would cost.
    pub fn set_cutoff(&mut self, cutoff: Option<f64>) {
        self.cutoff = cutoff;
    }

    /// Solve under the given bounds, charging pivots to `budget`.
    pub(crate) fn solve_budgeted(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        budget: &mut Budget,
    ) -> LpOutcome {
        debug_assert_eq!(lower.len(), self.n);
        debug_assert_eq!(upper.len(), self.n);
        if self.contradiction {
            return LpOutcome::Infeasible;
        }
        for j in 0..self.n {
            let l = lower[j].max(self.ctx_lo[j]);
            let u = upper[j].min(self.ctx_hi[j]);
            if l > u + FEAS_EPS {
                return LpOutcome::Infeasible;
            }
            self.lo[j] = l;
            self.hi[j] = u.max(l);
        }
        for i in 0..self.m {
            self.lo[self.n + i] = self.slack_lo[i];
            self.hi[self.n + i] = self.slack_hi[i];
        }
        // Re-seat nonbasic variables resting on a bound that no longer
        // exists (or everything, on the first solve).
        for j in 0..self.n + self.m {
            let reseat = match self.stat[j] {
                VStat::Basic => false,
                _ if self.fresh => true,
                VStat::Lower => !self.lo[j].is_finite(),
                VStat::Upper => !self.hi[j].is_finite(),
            };
            if reseat {
                self.seat(j);
            }
        }
        self.fresh = false;
        self.compute_x();
        match self.optimize(budget) {
            End::Done => LpOutcome::Optimal(self.extract()),
            End::Infeasible => LpOutcome::Infeasible,
            End::Unbounded => LpOutcome::Unbounded,
            End::Limit => LpOutcome::IterLimit,
        }
    }

    /// Rest `j` on its dual-feasible side where possible.
    fn seat(&mut self, j: usize) {
        let c = self.cost[j];
        self.stat[j] = match (self.lo[j].is_finite(), self.hi[j].is_finite()) {
            (true, true) => {
                if c < 0.0 {
                    VStat::Upper
                } else {
                    VStat::Lower
                }
            }
            (true, false) => VStat::Lower,
            (false, true) => VStat::Upper,
            (false, false) => VStat::Lower,
        };
    }

    /// Drive the current basis to a primal- and dual-feasible point.
    fn optimize(&mut self, budget: &mut Budget) -> End {
        for _round in 0..6 {
            self.price(false);
            let (pf, df) = (self.primal_feasible(), self.dual_feasible());
            let end = match (pf, df) {
                (true, true) => return End::Done,
                (false, true) => self.dual_simplex(budget, false),
                (true, false) => self.primal_simplex(budget),
                // Both broken: first try to repair dual feasibility by
                // bound flips alone — a nonbasic variable's reduced cost
                // does not depend on which bound it rests at, so moving
                // wrong-sign variables to their other finite bound fixes
                // the duals with zero pivots and hands a warm basis to
                // the dual simplex. (Backtracking in branch-and-bound
                // relaxes bounds and routinely lands here.) Phase 1 — a
                // dual simplex with zero costs, for which any basis is
                // dual feasible — remains the fallback when a wrong-sign
                // variable has no opposite finite bound.
                (false, false) => {
                    if self.dual_repair() {
                        self.dual_simplex(budget, false)
                    } else {
                        match self.dual_simplex(budget, true) {
                            End::Done => self.primal_simplex(budget),
                            e => e,
                        }
                    }
                }
            };
            match end {
                End::Done => {} // re-verify both conditions
                e => return e,
            }
        }
        End::Limit
    }

    /// Reduced costs for every column: `dj = c − yᵀA`, `y = c_B ᵀB⁻¹`.
    fn price(&mut self, zero_costs: bool) {
        let m = self.m;
        self.y.iter_mut().for_each(|v| *v = 0.0);
        if zero_costs {
            self.dj.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        for i in 0..m {
            let b = self.basis[i];
            let cb = self.cost[b];
            if cb != 0.0 {
                let row = &self.binv[i * m..(i + 1) * m];
                for (yk, r) in self.y.iter_mut().zip(row) {
                    *yk += cb * r;
                }
            }
        }
        for j in 0..self.n {
            let mut d = self.cost[j];
            for idx in self.col_start[j]..self.col_start[j + 1] {
                d -= self.y[self.col_row[idx]] * self.col_val[idx];
            }
            self.dj[j] = d;
        }
        for i in 0..m {
            self.dj[self.n + i] = self.cost[self.n + i] - self.y[i];
        }
    }

    /// Flip dual-infeasible nonbasic variables to their other bound.
    /// Requires fresh `dj` (a `price` call). Returns whether every dual
    /// infeasibility was repairable (i.e. the other bound was finite).
    fn dual_repair(&mut self) -> bool {
        let mut flipped = false;
        let mut ok = true;
        for j in 0..self.n + self.m {
            if self.hi[j] - self.lo[j] <= EPS {
                continue;
            }
            match self.stat[j] {
                VStat::Basic => {}
                VStat::Lower if self.dj[j] < -DUAL_EPS => {
                    if self.hi[j].is_finite() {
                        self.stat[j] = VStat::Upper;
                        self.bound_flips += 1;
                        flipped = true;
                    } else {
                        ok = false;
                    }
                }
                VStat::Upper if self.dj[j] > DUAL_EPS => {
                    if self.lo[j].is_finite() {
                        self.stat[j] = VStat::Lower;
                        self.bound_flips += 1;
                        flipped = true;
                    } else {
                        ok = false;
                    }
                }
                _ => {}
            }
        }
        if flipped {
            self.compute_x();
        }
        ok
    }

    fn primal_feasible(&self) -> bool {
        (0..self.m).all(|i| {
            let b = self.basis[i];
            self.x[b] >= self.lo[b] - FEAS_EPS && self.x[b] <= self.hi[b] + FEAS_EPS
        })
    }

    fn dual_feasible(&self) -> bool {
        (0..self.n + self.m).all(|j| {
            if self.hi[j] - self.lo[j] <= EPS {
                return true; // fixed: can never move
            }
            match self.stat[j] {
                VStat::Basic => true,
                VStat::Lower => self.dj[j] >= -DUAL_EPS,
                VStat::Upper => self.dj[j] <= DUAL_EPS,
            }
        })
    }

    fn anti_cycling_off(&self) -> bool {
        #[cfg(test)]
        {
            self.disable_anti_cycling
        }
        #[cfg(not(test))]
        {
            false
        }
    }

    fn per_solve_cap(&self) -> u64 {
        2000 + 200 * (self.n + 2 * self.m) as u64
    }

    fn pivot_work(&self) -> u64 {
        (3 * self.m * self.m + 2 * self.nnz + 64) as u64
    }

    /// Dual simplex: from a dual-feasible basis, drive out primal bound
    /// violations. With `zero_costs` this is Phase 1 (everything is dual
    /// feasible for `c = 0`, so only the sign-eligibility rules apply).
    fn dual_simplex(&mut self, budget: &mut Budget, zero_costs: bool) -> End {
        let (n, m) = (self.n, self.m);
        let mut bland = false;
        let mut stall: u32 = 0;
        // Phase 1 earns only a short leash: it runs when a node's basis
        // was too damaged to repair, and on adversarial nodes its Bland
        // tail can wander for tens of thousands of pivots — enough to
        // drain the whole tree's budget proving one subtree infeasible.
        // Hitting the cap abandons just that subtree (`End::Limit`).
        let cap = if zero_costs {
            4 * m as u64 + 200
        } else {
            self.per_solve_cap()
        };
        for _iter in 0..cap {
            self.price(zero_costs);
            // Objective cutoff: at a dual-feasible basis the (perturbed)
            // objective is a lower bound on this node's optimum, so once
            // it clears the incumbent by a margin that swallows the
            // perturbation there is nothing here worth finding. Zero-cost
            // phase 1 carries no bound and is exempt.
            if !zero_costs {
                if let Some(cut) = self.cutoff {
                    let z: f64 = (0..n + m)
                        .filter(|&j| self.x[j] != 0.0)
                        .map(|j| self.cost[j] * self.x[j])
                        .sum();
                    if z >= cut + 0.5 {
                        return End::Infeasible;
                    }
                }
            }
            // Leaving row: worst bound violation (Bland: smallest basic
            // variable index among the violated).
            let mut row = usize::MAX;
            let mut worst = FEAS_EPS;
            for i in 0..m {
                let b = self.basis[i];
                let v = if self.x[b] < self.lo[b] - FEAS_EPS {
                    self.lo[b] - self.x[b]
                } else if self.x[b] > self.hi[b] + FEAS_EPS {
                    self.x[b] - self.hi[b]
                } else {
                    continue;
                };
                if bland {
                    if row == usize::MAX || b < self.basis[row] {
                        row = i;
                    }
                } else if v > worst {
                    worst = v;
                    row = i;
                }
            }
            if row == usize::MAX {
                return End::Done;
            }
            let leave = self.basis[row];
            let below = self.x[leave] < self.lo[leave];
            self.rho.copy_from_slice(&self.binv[row * m..(row + 1) * m]);
            // Entering column: dual ratio test over sign-eligible
            // nonbasics. Near-ties (ubiquitous when whole cost blocks are
            // zero) are broken by the largest pivot magnitude — taking the
            // steepest column instead of the lowest index turns phase 1
            // from an index-order crawl into a handful of real steps. The
            // Bland fallback reverts to smallest-index ties so the
            // anti-cycling guarantee is preserved.
            let mut enter = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut best_piv = 0.0f64;
            for j in 0..n + m {
                if self.stat[j] == VStat::Basic || self.hi[j] - self.lo[j] <= EPS {
                    continue;
                }
                let a = self.row_coeff(j);
                let eligible = if below {
                    (self.stat[j] == VStat::Lower && a < -EPS)
                        || (self.stat[j] == VStat::Upper && a > EPS)
                } else {
                    (self.stat[j] == VStat::Lower && a > EPS)
                        || (self.stat[j] == VStat::Upper && a < -EPS)
                };
                if !eligible {
                    continue;
                }
                let ratio = (self.dj[j] / a).abs();
                let tol = 1e-9 * (1.0 + best_ratio.min(1e30));
                let better = if enter == usize::MAX || ratio < best_ratio - tol {
                    true
                } else if bland {
                    false // smallest index among ties already held
                } else {
                    ratio <= best_ratio + tol && a.abs() > best_piv
                };
                if better {
                    best_ratio = best_ratio.min(ratio);
                    best_piv = a.abs();
                    enter = j;
                }
            }
            if enter == usize::MAX {
                // No column can push the row back inside its bounds: the
                // primal problem is infeasible (bounded-variable dual
                // simplex infeasibility certificate, costs irrelevant).
                return End::Infeasible;
            }
            self.compute_alpha(enter);
            let piv = self.alpha[row];
            if piv.abs() < 1e-8 {
                // B⁻¹ drifted: the pivot-row estimate and the recomputed
                // column disagree. Refactorize once and retry.
                if self.updates > 0 {
                    self.refactor();
                    continue;
                }
                return End::Limit;
            }
            let target = if below {
                self.lo[leave]
            } else {
                self.hi[leave]
            };
            let delta = self.x[leave] - target;
            let dq = delta / piv;
            for i in 0..m {
                let a = self.alpha[i];
                if a != 0.0 {
                    self.x[self.basis[i]] -= a * dq;
                }
            }
            self.x[enter] += dq;
            self.x[leave] = target;
            self.stat[enter] = VStat::Basic;
            self.stat[leave] = if below { VStat::Lower } else { VStat::Upper };
            self.basis[row] = enter;
            self.update_binv(row);
            // A stall is a *degenerate* pivot: the leaving variable was
            // already at its target bound, so the basis changed but no
            // primal value moved. (Not `ratio * delta`: phase 1 has every
            // ratio at zero by construction, and treating its perfectly
            // productive pivots as stalls would trap it in Bland mode.)
            if delta.abs() <= 1e-9 {
                stall += 1;
            } else {
                stall = 0;
            }
            if stall > STALL_LIMIT && !self.anti_cycling_off() {
                bland = true;
            }
            if !budget.step(self.pivot_work()) {
                return End::Limit;
            }
        }
        End::Limit
    }

    /// Primal simplex with bounded variables (Dantzig pricing, bound
    /// flips, Bland fallback on degenerate stalls).
    fn primal_simplex(&mut self, budget: &mut Budget) -> End {
        let (n, m) = (self.n, self.m);
        let mut bland = false;
        let mut stall: u32 = 0;
        for _iter in 0..self.per_solve_cap() {
            self.price(false);
            let mut enter = usize::MAX;
            let mut best = DUAL_EPS;
            for j in 0..n + m {
                if self.stat[j] == VStat::Basic || self.hi[j] - self.lo[j] <= EPS {
                    continue;
                }
                let viol = match self.stat[j] {
                    VStat::Lower => -self.dj[j],
                    VStat::Upper => self.dj[j],
                    VStat::Basic => unreachable!(),
                };
                if viol > DUAL_EPS {
                    if bland {
                        enter = j;
                        break;
                    }
                    if viol > best {
                        best = viol;
                        enter = j;
                    }
                }
            }
            if enter == usize::MAX {
                return End::Done;
            }
            let dir = if self.stat[enter] == VStat::Lower {
                1.0
            } else {
                -1.0
            };
            self.compute_alpha(enter);
            // Ratio test: first basic variable to hit a bound, or the
            // entering variable's own opposite bound (a bound flip).
            let range = self.hi[enter] - self.lo[enter];
            let mut t_piv = f64::INFINITY;
            let mut leave_row = usize::MAX;
            for i in 0..m {
                let a = self.alpha[i] * dir;
                let b = self.basis[i];
                let room = if a > EPS {
                    if !self.lo[b].is_finite() {
                        continue;
                    }
                    self.x[b] - self.lo[b]
                } else if a < -EPS {
                    if !self.hi[b].is_finite() {
                        continue;
                    }
                    self.hi[b] - self.x[b]
                } else {
                    continue;
                };
                let t = room.max(0.0) / a.abs();
                let replace = t < t_piv - 1e-12
                    || (t < t_piv + 1e-12 && leave_row != usize::MAX && b < self.basis[leave_row]);
                if leave_row == usize::MAX || replace {
                    t_piv = t;
                    leave_row = i;
                }
            }
            if leave_row == usize::MAX && !range.is_finite() {
                return End::Unbounded;
            }
            if leave_row == usize::MAX || range < t_piv - 1e-12 {
                // Bound flip: the entering variable crosses to its other
                // bound before any basic variable blocks.
                let dq = dir * range;
                for i in 0..m {
                    let a = self.alpha[i];
                    if a != 0.0 {
                        self.x[self.basis[i]] -= a * dq;
                    }
                }
                self.stat[enter] = if dir > 0.0 {
                    VStat::Upper
                } else {
                    VStat::Lower
                };
                self.x[enter] = if dir > 0.0 {
                    self.hi[enter]
                } else {
                    self.lo[enter]
                };
                stall = 0; // a flip moves by the full (positive) range
                if !budget.step((2 * m + 64) as u64) {
                    return End::Limit;
                }
                continue;
            }
            let t = t_piv.max(0.0);
            let dq = dir * t;
            for i in 0..m {
                let a = self.alpha[i];
                if a != 0.0 {
                    self.x[self.basis[i]] -= a * dq;
                }
            }
            self.x[enter] += dq;
            let leave = self.basis[leave_row];
            let hits_lower = self.alpha[leave_row] * dir > 0.0;
            self.x[leave] = if hits_lower {
                self.lo[leave]
            } else {
                self.hi[leave]
            };
            self.stat[leave] = if hits_lower {
                VStat::Lower
            } else {
                VStat::Upper
            };
            self.stat[enter] = VStat::Basic;
            self.basis[leave_row] = enter;
            self.update_binv(leave_row);
            if t <= 1e-10 {
                stall += 1;
            } else {
                stall = 0;
            }
            if stall > STALL_LIMIT && !self.anti_cycling_off() {
                bland = true;
            }
            if !budget.step(self.pivot_work()) {
                return End::Limit;
            }
        }
        End::Limit
    }

    /// `ρ · A_j` where `ρ` is the current pivot row of `B⁻¹`.
    fn row_coeff(&self, j: usize) -> f64 {
        if j < self.n {
            let mut s = 0.0;
            for idx in self.col_start[j]..self.col_start[j + 1] {
                s += self.rho[self.col_row[idx]] * self.col_val[idx];
            }
            s
        } else {
            self.rho[j - self.n]
        }
    }

    /// `α = B⁻¹ A_j` into `self.alpha`.
    fn compute_alpha(&mut self, j: usize) {
        let m = self.m;
        self.alpha.iter_mut().for_each(|v| *v = 0.0);
        if j < self.n {
            for idx in self.col_start[j]..self.col_start[j + 1] {
                let r = self.col_row[idx];
                let a = self.col_val[idx];
                for i in 0..m {
                    self.alpha[i] += self.binv[i * m + r] * a;
                }
            }
        } else {
            let r = j - self.n;
            for i in 0..m {
                self.alpha[i] = self.binv[i * m + r];
            }
        }
    }

    /// Rank-1 product-form update of `B⁻¹` after `alpha`'s column entered
    /// at `row`; refactorizes periodically to cap drift.
    fn update_binv(&mut self, row: usize) {
        let m = self.m;
        let inv = 1.0 / self.alpha[row];
        for k in 0..m {
            self.binv[row * m + k] *= inv;
        }
        self.prow
            .copy_from_slice(&self.binv[row * m..(row + 1) * m]);
        for i in 0..m {
            if i == row {
                continue;
            }
            let f = self.alpha[i];
            if f.abs() > 1e-13 {
                let r = &mut self.binv[i * m..(i + 1) * m];
                for (c, p) in r.iter_mut().zip(&self.prow) {
                    *c -= f * p;
                }
            }
        }
        self.updates += 1;
        if self.updates >= REFACTOR_EVERY {
            self.refactor();
        }
    }

    /// Recompute `B⁻¹` from scratch (Gauss-Jordan with partial pivoting)
    /// and refresh `x`. A singular basis resets to the all-slack basis — a
    /// cold but always-valid restart.
    fn refactor(&mut self) {
        self.refactorizations += 1;
        let m = self.m;
        self.fmat.iter_mut().for_each(|v| *v = 0.0);
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                for idx in self.col_start[b]..self.col_start[b + 1] {
                    self.fmat[self.col_row[idx] * m + i] = self.col_val[idx];
                }
            } else {
                self.fmat[(b - self.n) * m + i] = 1.0;
            }
        }
        self.binv.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        let mut singular = false;
        for k in 0..m {
            let mut p = k;
            let mut best = self.fmat[k * m + k].abs();
            for r in k + 1..m {
                let v = self.fmat[r * m + k].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-10 {
                singular = true;
                break;
            }
            if p != k {
                for c in 0..m {
                    self.fmat.swap(p * m + c, k * m + c);
                    self.binv.swap(p * m + c, k * m + c);
                }
            }
            let inv = 1.0 / self.fmat[k * m + k];
            for c in 0..m {
                self.fmat[k * m + c] *= inv;
                self.binv[k * m + c] *= inv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = self.fmat[r * m + k];
                if f != 0.0 {
                    for c in 0..m {
                        self.fmat[r * m + c] -= f * self.fmat[k * m + c];
                        self.binv[r * m + c] -= f * self.binv[k * m + c];
                    }
                }
            }
        }
        if singular {
            self.reset_basis();
            return;
        }
        self.updates = 0;
        self.compute_x();
    }

    fn reset_basis(&mut self) {
        let (n, m) = (self.n, self.m);
        for j in 0..n + m {
            if self.stat[j] == VStat::Basic {
                self.stat[j] = VStat::Lower;
                self.seat(j);
            }
        }
        for i in 0..m {
            self.basis[i] = n + i;
            self.stat[n + i] = VStat::Basic;
        }
        self.binv.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        self.updates = 0;
        self.compute_x();
    }

    /// Nonbasic resting value of `j`.
    fn nb_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            VStat::Lower => {
                if self.lo[j].is_finite() {
                    self.lo[j]
                } else {
                    0.0
                }
            }
            VStat::Upper => {
                if self.hi[j].is_finite() {
                    self.hi[j]
                } else {
                    0.0
                }
            }
            VStat::Basic => self.x[j],
        }
    }

    /// Recompute every `x`: nonbasics at their bounds, `x_B = B⁻¹(b − N x_N)`.
    fn compute_x(&mut self) {
        let (n, m) = (self.n, self.m);
        for j in 0..n + m {
            if self.stat[j] != VStat::Basic {
                self.x[j] = self.nb_value(j);
            }
        }
        self.work.copy_from_slice(&self.rhs);
        for j in 0..n {
            if self.stat[j] == VStat::Basic {
                continue;
            }
            let v = self.x[j];
            if v != 0.0 {
                for idx in self.col_start[j]..self.col_start[j + 1] {
                    self.work[self.col_row[idx]] -= self.col_val[idx] * v;
                }
            }
        }
        for i in 0..m {
            let sj = n + i;
            if self.stat[sj] != VStat::Basic {
                self.work[i] -= self.x[sj];
            }
        }
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            let s: f64 = row.iter().zip(&self.work).map(|(a, b)| a * b).sum();
            self.x[self.basis[i]] = s;
        }
    }

    fn extract(&self) -> LpSolution {
        let mut values: Vec<f64> = self.x[..self.n].to_vec();
        for (j, v) in values.iter_mut().enumerate() {
            *v = v.clamp(self.lo[j], self.hi[j]);
        }
        let objective = self.objective.iter().map(|&(j, c)| c * values[j]).sum();
        LpSolution { objective, values }
    }
}

/// Solve the LP relaxation of `model` (integrality ignored, model bounds
/// respected).
pub fn solve_lp(model: &Model) -> LpOutcome {
    let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    solve_lp_with_bounds(model, &lower, &upper, None)
}

/// One-shot solve with per-variable bounds overriding the model's. Cold:
/// builds a fresh [`LpEngine`]; branch-and-bound keeps its own engine warm
/// across nodes instead of calling this.
pub(crate) fn solve_lp_with_bounds(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    deadline: Option<Instant>,
) -> LpOutcome {
    let mut budget = Budget::new(u64::MAX, deadline, swp_obs::CancelToken::never());
    LpEngine::new(model).solve_budgeted(lower, upper, &mut budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn opt(o: LpOutcome) -> LpSolution {
        match o {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6 → x=4, y=0, obj 12.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 4.0);
        m.add_le([(x, 1.0), (y, 3.0)], 6.0);
        let s = opt(solve_lp(&m));
        assert!((s.objective - 12.0).abs() < 1e-6);
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + y = 3, x >= 1 → obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 3.0);
        m.add_ge([(x, 1.0)], 1.0);
        let s = opt(solve_lp(&m));
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(s.values[x.index()] >= 1.0 - 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        m.add_le([(x, 1.0)], 1.0);
        m.add_ge([(x, 1.0)], 2.0);
        assert_eq!(solve_lp(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        m.set_objective([(x, 1.0)]);
        m.add_ge([(x, 1.0)], 0.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x,y>=0: y >= x + 2; min y → y=2 at x=0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(y, 1.0)]);
        m.add_le([(x, 1.0), (y, -1.0)], -2.0);
        let s = opt(solve_lp(&m));
        assert!((s.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn binary_bound_respected_in_relaxation() {
        // max x with x binary: relaxation caps at 1 (context bound).
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary("x");
        m.set_objective([(x, 1.0)]);
        let s = opt(solve_lp(&m));
        assert!((s.values[x.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        for k in 1..20 {
            m.add_le([(x, 1.0), (y, k as f64)], k as f64);
        }
        let s = opt(solve_lp(&m));
        assert!(s.objective <= 2.0 + 1e-6);
    }

    #[test]
    fn fixed_variables_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.binary("x");
        let y = m.continuous("y");
        m.set_objective([(y, 1.0)]);
        m.add_ge([(x, 2.0), (y, 1.0)], 3.0);
        let s = opt(solve_lp_with_bounds(
            &m,
            &[1.0, 0.0],
            &[1.0, f64::INFINITY],
            None,
        ));
        assert!((s.values[x.index()] - 1.0).abs() < 1e-9);
        assert!((s.values[y.index()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_minimization() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        m.set_objective([(x, 1.0)]);
        let s = opt(solve_lp(&m));
        assert_eq!(s.values[x.index()], 0.0);
    }

    /// Beale's classic cycling LP. Under pure Dantzig pricing with
    /// lowest-index tie-breaks the tableau revisits the same degenerate
    /// bases forever; the Bland fallback must break the cycle. The `x3 ≤ 1`
    /// row is written with an explicit surplus variable so it stays a row
    /// (a singleton would be folded into a bound and change the classic
    /// all-at-zero degenerate start).
    fn beale() -> Model {
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.continuous("x1");
        let x2 = m.continuous("x2");
        let x3 = m.continuous("x3");
        let x4 = m.continuous("x4");
        let x5 = m.continuous("x5");
        m.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
        m.add_le([(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        m.add_le([(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        m.add_le([(x3, 1.0), (x5, 1.0)], 1.0);
        m
    }

    #[test]
    fn beale_cycles_without_anti_cycling() {
        let m = beale();
        let lower = vec![0.0; 5];
        let upper = vec![f64::INFINITY; 5];
        let mut engine = LpEngine::new(&m);
        engine.disable_anti_cycling = true;
        let r = engine.solve_budgeted(&lower, &upper, &mut Budget::unlimited());
        assert_eq!(r, LpOutcome::IterLimit, "expected the classic cycle");
    }

    #[test]
    fn beale_solves_with_anti_cycling() {
        let s = opt(solve_lp(&beale()));
        assert!((s.objective - (-0.05)).abs() < 1e-9, "got {}", s.objective);
    }

    #[test]
    fn warm_resolve_tracks_bound_changes() {
        // min x + 2y st x + y >= 4: optimum (4, 0). Then force x <= 1:
        // warm dual re-solve must land on (1, 3).
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.set_objective([(x, 1.0), (y, 2.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], 4.0);
        let mut engine = LpEngine::new(&m);
        let inf = f64::INFINITY;
        let s1 = match engine.solve(&[0.0, 0.0], &[inf, inf]) {
            LpOutcome::Optimal(s) => s,
            o => panic!("cold: {o:?}"),
        };
        assert!((s1.objective - 4.0).abs() < 1e-6);
        let s2 = match engine.solve(&[0.0, 0.0], &[1.0, inf]) {
            LpOutcome::Optimal(s) => s,
            o => panic!("warm: {o:?}"),
        };
        assert!((s2.objective - 7.0).abs() < 1e-6);
        assert!((s2.values[x.index()] - 1.0).abs() < 1e-6);
        // And relaxing the bound again returns to the original optimum.
        let s3 = match engine.solve(&[0.0, 0.0], &[inf, inf]) {
            LpOutcome::Optimal(s) => s,
            o => panic!("relaxed: {o:?}"),
        };
        assert!((s3.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_heavy_phase1_terminates() {
        // MRT-style block: every op in exactly one slot (equality rows,
        // violated at the all-zero start), a σ variable tied to its slot
        // by another equality, slots capacity-limited, maximize Σσ. The σ
        // columns are unbounded above with negative internal cost, so the
        // initial basis is dual infeasible too — this drives the
        // zero-cost Phase-1 dual simplex and then the primal.
        let mut m = Model::new(Sense::Maximize);
        let mut a = vec![vec![]; 4];
        let mut sigma = vec![];
        for (i, row) in a.iter_mut().enumerate() {
            for t in 0..4 {
                row.push(m.binary(&format!("a{i}{t}")));
            }
            sigma.push(m.integer(&format!("s{i}")));
        }
        for (i, row) in a.iter().enumerate() {
            m.add_eq(row.iter().map(|&v| (v, 1.0)), 1.0);
            let mut link: Vec<_> = (0..4).map(|t| (row[t], -(t as f64))).collect();
            link.push((sigma[i], 1.0));
            m.add_eq(link, 0.0);
        }
        for t in 0..4 {
            m.add_le(a.iter().map(|row| (row[t], 1.0)), 1.0);
        }
        m.set_objective(sigma.iter().map(|&s| (s, 1.0)));
        let s = opt(solve_lp(&m));
        // Doubly-stochastic slot usage caps Σσ at 0+1+2+3.
        assert!((s.objective - 6.0).abs() < 1e-6, "got {}", s.objective);
    }
}
