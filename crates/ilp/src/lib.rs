//! A self-contained linear / integer-linear programming solver.
//!
//! The paper's "optimal" pipeliner (MOST, §3) formulates modulo scheduling
//! as an integer linear program and hands it to "one of a number of
//! standard ILP solving packages". This crate is that package: a revised
//! simplex over bounded variables with an explicit basis inverse
//! ([`LpEngine`], one-shot entry point [`solve_lp`]) and a depth-first
//! branch-and-bound wrapper ([`solve_ilp`]) with
//!
//! - **warm-started dual re-solves**: every node shares one engine, and a
//!   child differs from its parent only in a variable bound, so node LPs
//!   re-solve in a few dual pivots from the inherited basis,
//! - incumbent tracking and best-bound pruning,
//! - deterministic node *and pivot* budgets (wall-clock limits are opt-in
//!   and flagged separately, keeping solver behaviour reproducible),
//! - a caller-supplied **branching priority order** — the hook §3.3(3) of
//!   the paper identifies as "by far the most important factor" for
//!   solving the scheduling ILPs.
//!
//! # Examples
//!
//! A tiny 0/1 knapsack:
//!
//! ```
//! use swp_ilp::{Model, Sense, SolveOptions, Status};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.binary("x");
//! let y = m.binary("y");
//! let z = m.binary("z");
//! m.set_objective([(x, 10.0), (y, 13.0), (z, 7.0)]);
//! m.add_le([(x, 5.0), (y, 7.0), (z, 4.0)], 10.0); // capacity
//! let r = swp_ilp::solve_ilp(&m, &SolveOptions::default());
//! assert_eq!(r.status, Status::Optimal);
//! let best = r.solution.expect("optimal solution");
//! assert!((best.objective - 17.0).abs() < 1e-6); // x + z
//! ```

mod bb;
mod model;
mod simplex;

pub use bb::{solve_ilp, IlpResult, SolveOptions, Status};
pub use model::{ConstraintOp, Model, Sense, VarId, VarKind};
pub use simplex::{solve_lp, LpEngine, LpOutcome, LpSolution};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Model>();
        assert_send_sync::<crate::IlpResult>();
    }
}
