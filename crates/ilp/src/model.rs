//! Model-building API: variables, linear constraints, objective.

use std::fmt;

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Integrality class of a variable. All variables are non-negative; binary
/// variables additionally have an upper bound of 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Continuous, `x ≥ 0`.
    Continuous,
    /// Integer, `x ≥ 0`.
    Integer,
    /// Binary, `x ∈ {0, 1}`.
    Binary,
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective (the modulo-scheduling formulations minimize
    /// buffers or registers).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`.
    Le,
    /// `expr ≥ rhs`.
    Ge,
    /// `expr = rhs`.
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    /// Lower bound (0 unless tightened).
    pub lower: f64,
    /// Upper bound (`f64::INFINITY` = none; binaries start at 1).
    pub upper: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// An ILP/LP model under construction.
///
/// Variables are non-negative; binaries carry an implicit `≤ 1`. Bounds of
/// any kind never become solver rows: the revised simplex handles them
/// directly as bounded variables, and single-variable constraints (the
/// modulo-scheduling stage bounds, for instance) are folded into variable
/// bounds as well — only genuinely multi-variable rows cost pivot work.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<(VarId, f64)>,
}

impl Model {
    /// Create an empty model.
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Add a continuous variable `x ≥ 0`.
    pub fn continuous(&mut self, name: &str) -> VarId {
        self.var(name, VarKind::Continuous)
    }

    /// Add an integer variable `x ≥ 0`.
    pub fn integer(&mut self, name: &str) -> VarId {
        self.var(name, VarKind::Integer)
    }

    /// Add a binary variable.
    pub fn binary(&mut self, name: &str) -> VarId {
        self.var(name, VarKind::Binary)
    }

    fn var(&mut self, name: &str, kind: VarKind) -> VarId {
        let id = VarId(self.vars.len() as u32);
        let upper = if kind == VarKind::Binary {
            1.0
        } else {
            f64::INFINITY
        };
        self.vars.push(VarDef {
            name: name.to_owned(),
            kind,
            lower: 0.0,
            upper,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable kind.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Variable name.
    pub fn name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Set the objective as `(variable, coefficient)` terms. Terms for the
    /// same variable accumulate.
    pub fn set_objective<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I) {
        self.objective = accumulate(terms);
    }

    /// Add `Σ terms ≤ rhs`.
    pub fn add_le<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I, rhs: f64) {
        self.add(terms, ConstraintOp::Le, rhs);
    }

    /// Add `Σ terms ≥ rhs`.
    pub fn add_ge<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I, rhs: f64) {
        self.add(terms, ConstraintOp::Ge, rhs);
    }

    /// Add `Σ terms = rhs`.
    pub fn add_eq<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I, rhs: f64) {
        self.add(terms, ConstraintOp::Eq, rhs);
    }

    fn add<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I, op: ConstraintOp, rhs: f64) {
        let terms = accumulate(terms);
        for &(v, _) in &terms {
            assert!(
                v.index() < self.vars.len(),
                "constraint uses unknown variable"
            );
        }
        self.constraints.push(Constraint { terms, op, rhs });
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model: {} vars, {} constraints, {}",
            self.vars.len(),
            self.constraints.len(),
            match self.sense {
                Sense::Minimize => "minimize",
                Sense::Maximize => "maximize",
            }
        )
    }
}

fn accumulate<I: IntoIterator<Item = (VarId, f64)>>(terms: I) -> Vec<(VarId, f64)> {
    let mut out: Vec<(VarId, f64)> = Vec::new();
    for (v, c) in terms {
        match out.iter_mut().find(|(w, _)| *w == v) {
            Some((_, acc)) => *acc += c,
            None => out.push((v, c)),
        }
    }
    out.retain(|&(_, c)| c != 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_accumulate() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        m.add_le([(x, 1.0), (x, 2.0)], 5.0);
        assert_eq!(m.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.continuous("x");
        let y = m.continuous("y");
        m.add_ge([(x, 1.0), (y, 0.0)], 1.0);
        assert_eq!(m.constraints[0].terms.len(), 1);
    }
}
