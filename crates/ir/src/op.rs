//! Core IR types: operations, values, memory accesses, and the [`Loop`].

use swp_machine::{OpClass, RegClass};

/// Identifier of an operation within one [`Loop`] body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a virtual register (a loop value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an array (memory symbol) referenced by the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A use of a value. `distance` is the number of iterations ago the value
/// was produced: 0 for same-iteration uses, ≥ 1 for loop-carried uses
/// (recurrences). Uses of loop invariants always have distance 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// The value read.
    pub value: ValueId,
    /// Iteration distance of the reaching definition.
    pub distance: u32,
}

impl Operand {
    /// A same-iteration use.
    pub fn now(value: ValueId) -> Operand {
        Operand { value, distance: 0 }
    }

    /// A loop-carried use from `distance` iterations ago.
    pub fn carried(value: ValueId, distance: u32) -> Operand {
        Operand { value, distance }
    }
}

/// An affine (or indirect) memory access: `base(array) + offset + stride*i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// The array symbol referenced.
    pub array: ArrayId,
    /// Constant byte offset from the array base at iteration 0.
    pub offset: i64,
    /// Byte stride per loop iteration.
    pub stride: i64,
    /// True when the address is data-dependent (e.g. `a[idx[i]]`), in which
    /// case `offset`/`stride` are meaningless, dependence analysis is
    /// conservative, and the memory bank cannot be known at compile time
    /// (§4.3's mdljdp2 discussion).
    pub indirect: bool,
}

impl MemAccess {
    /// Byte address of this access at iteration `i`, relative to the array
    /// base. Meaningless for indirect accesses.
    pub fn addr_at(&self, i: u64) -> i64 {
        self.offset + self.stride * i as i64
    }
}

/// Arithmetic meaning of an operation, for the functional interpreter.
/// Distinct from [`OpClass`]: e.g. both add and subtract execute on the FP
/// adder (`OpClass::FAdd`) but differ semantically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sem {
    /// `a + b`.
    Add,
    /// `a − b`.
    Sub,
    /// `a · b`.
    Mul,
    /// `a / b`.
    Div,
    /// `√a`.
    Sqrt,
    /// `a·b + c`.
    Madd,
    /// `a < b` (1.0 / 0.0).
    Lt,
    /// `c ≠ 0 ? a : b`.
    Select,
    /// Identity.
    Copy,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
}

/// One operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Identity within the loop.
    pub id: OpId,
    /// Architectural class (drives latency and resources).
    pub class: OpClass,
    /// Arithmetic meaning (drives the functional interpreter).
    pub sem: Sem,
    /// The value defined, if any (stores define none).
    pub result: Option<ValueId>,
    /// Values read, with iteration distances.
    pub operands: Vec<Operand>,
    /// Memory access descriptor for loads and stores.
    pub mem: Option<MemAccess>,
}

impl Op {
    /// Whether this op is a memory reference.
    pub fn is_mem(&self) -> bool {
        self.mem.is_some()
    }
}

/// Descriptive information about a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueInfo {
    /// Register class the value will occupy.
    pub class: RegClass,
    /// Defining operation; `None` for loop invariants (live-in values that
    /// stay in one register for the whole loop).
    pub def: Option<OpId>,
    /// Debug name.
    pub name: String,
    /// Known compile-time constant, stored as `f64` bits so the type stays
    /// `Eq`/hashable. Only invariants may carry a literal; it is the seed
    /// the interpreter uses in place of the default invariant value, and
    /// what constant folding operates on.
    pub literal: Option<u64>,
}

impl ValueInfo {
    /// Whether the value is a loop invariant (no definition in the body).
    pub fn is_invariant(&self) -> bool {
        self.def.is_none()
    }

    /// The literal constant as an `f64`, if one is known.
    pub fn literal_f64(&self) -> Option<f64> {
        self.literal.map(f64::from_bits)
    }
}

/// Descriptive information about an array symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Debug name.
    pub name: String,
    /// Element size in bytes (4 = single precision, 8 = double).
    pub elem_bytes: u32,
    /// Byte alignment of the array base relative to the bank granule. The
    /// R8000 banks on 8-byte boundaries, so `base_align % 16` decides which
    /// bank `a[0]` hits. Kernels default to 0 (even-bank aligned).
    pub base_align: u64,
}

/// An innermost loop ready for software pipelining.
///
/// Invariants (enforced by [`crate::LoopBuilder`]):
/// - every value is defined by at most one op;
/// - operands reference existing values; same-iteration operand references
///   are acyclic except through explicitly carried uses (distance ≥ 1);
/// - loads/stores carry a [`MemAccess`]; nothing else does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    pub(crate) name: String,
    pub(crate) ops: Vec<Op>,
    pub(crate) values: Vec<ValueInfo>,
    pub(crate) arrays: Vec<ArrayInfo>,
}

impl Loop {
    /// Assemble a loop directly from its parts, validating every builder
    /// invariant. This is the decoder-side constructor: wire formats and
    /// stores that ship loop bodies between processes reconstruct them
    /// here without replaying a [`crate::LoopBuilder`] program.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (see [`Loop::validate`]) —
    /// untrusted input must never yield a structurally invalid loop.
    pub fn from_raw_parts(
        name: String,
        ops: Vec<Op>,
        values: Vec<ValueInfo>,
        arrays: Vec<ArrayInfo>,
    ) -> Result<Loop, String> {
        let lp = Loop {
            name,
            ops,
            values,
            arrays,
        };
        for op in &lp.ops {
            if let Some(m) = op.mem {
                if m.array.index() >= lp.arrays.len() {
                    return Err(format!(
                        "op {:?} references unknown array {:?}",
                        op.id, m.array
                    ));
                }
            }
        }
        lp.validate()?;
        Ok(lp)
    }

    /// Loop name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations in body order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Look up one operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// All values (indexed by [`ValueId`]).
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Look up one value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.index()]
    }

    /// All arrays (indexed by [`ArrayId`]).
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Look up one array.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.index()]
    }

    /// Number of operations in the body.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Histogram of op classes, as consumed by
    /// [`swp_machine::Machine::res_mii`].
    pub fn class_counts(&self) -> Vec<(OpClass, u32)> {
        let mut counts: Vec<(OpClass, u32)> = Vec::new();
        for op in &self.ops {
            match counts.iter_mut().find(|(c, _)| *c == op.class) {
                Some((_, n)) => *n += 1,
                None => counts.push((op.class, 1)),
            }
        }
        counts
    }

    /// Iterator over the memory-reference operations.
    pub fn mem_ops(&self) -> impl Iterator<Item = &Op> {
        self.ops.iter().filter(|o| o.is_mem())
    }

    /// The uses of each value, as `(user op, operand index)` pairs, indexed
    /// by value.
    pub fn uses(&self) -> Vec<Vec<(OpId, usize)>> {
        let mut uses = vec![Vec::new(); self.values.len()];
        for op in &self.ops {
            for (i, operand) in op.operands.iter().enumerate() {
                uses[operand.value.index()].push((op.id, i));
            }
        }
        uses
    }

    /// Run internal consistency checks; used by tests and `debug_assert!`s.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut def_seen = vec![false; self.values.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if op.id.index() != i {
                return Err(format!("op {} has id {:?}", i, op.id));
            }
            if let Some(r) = op.result {
                let info = self
                    .values
                    .get(r.index())
                    .ok_or_else(|| format!("op {i} defines unknown value {r:?}"))?;
                if info.def != Some(op.id) {
                    return Err(format!("value {r:?} def mismatch at op {i}"));
                }
                if def_seen[r.index()] {
                    return Err(format!("value {r:?} defined twice"));
                }
                def_seen[r.index()] = true;
            }
            for operand in &op.operands {
                if operand.value.index() >= self.values.len() {
                    return Err(format!("op {i} reads unknown value {:?}", operand.value));
                }
                let info = &self.values[operand.value.index()];
                if info.is_invariant() && operand.distance != 0 {
                    return Err(format!(
                        "op {i} carried use of invariant {:?}",
                        operand.value
                    ));
                }
            }
            if op.class.is_memory() != op.mem.is_some() {
                return Err(format!("op {i} memory descriptor mismatch"));
            }
            if op.class.has_result() != op.result.is_some() {
                return Err(format!("op {i} result mismatch for class {}", op.class));
            }
        }
        for (v, info) in self.values.iter().enumerate() {
            if let Some(d) = info.def {
                if self.ops.get(d.index()).and_then(|o| o.result) != Some(ValueId(v as u32)) {
                    return Err(format!(
                        "value {v} claims def {d:?} which does not define it"
                    ));
                }
                if info.literal.is_some() {
                    return Err(format!("op-defined value {v} carries a literal"));
                }
            }
        }
        Ok(())
    }
}
