//! Modulo schedules and their validation.

use crate::ddg::Ddg;
use crate::op::{Loop, OpId};
use swp_machine::{Machine, ResourceClass};

/// A modulo schedule: an absolute issue cycle per operation at a fixed II.
///
/// Row (`time % II`) decides resource usage in the kernel; stage
/// (`time / II`) decides how many iterations overlap in the steady state.
///
/// # Examples
///
/// ```
/// use swp_ir::{LoopBuilder, Schedule};
/// let mut b = LoopBuilder::new("t");
/// let x = b.array("x", 8);
/// let v = b.load(x, 0, 8);
/// b.store(x, 800, 8, v);
/// let lp = b.finish();
/// let s = Schedule::new(2, vec![0, 4]);
/// assert_eq!(s.row(lp.ops()[1].id), 0);
/// assert_eq!(s.stage(lp.ops()[1].id), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    ii: u32,
    times: Vec<i64>,
}

/// A violated schedule constraint, from [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Wrong number of op times.
    WrongLength {
        /// Ops in the loop.
        expected: usize,
        /// Times supplied.
        actual: usize,
    },
    /// An op was scheduled before cycle 0.
    NegativeTime(OpId),
    /// A dependence arc is violated.
    Dependence {
        /// Arc source.
        from: OpId,
        /// Arc destination.
        to: OpId,
        /// Required minimum separation at this II.
        needed: i64,
        /// Actual separation.
        actual: i64,
    },
    /// A modulo reservation row is over-subscribed.
    Resource {
        /// Kernel row.
        row: u32,
        /// Resource class over-used.
        class: ResourceClass,
        /// Uses in that row.
        used: u32,
        /// Available units.
        units: u32,
    },
}

impl ScheduleError {
    /// Stable diagnostic code shared with the `swp-verify` lint namespace
    /// (DESIGN.md §7); the single `Display` implementation below prefixes
    /// every rendering with it.
    pub fn lint_code(&self) -> &'static str {
        match self {
            ScheduleError::WrongLength { .. } => "SWP-V101",
            ScheduleError::NegativeTime(_) => "SWP-V102",
            ScheduleError::Dependence { .. } => "SWP-V103",
            ScheduleError::Resource { .. } => "SWP-V104",
        }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.lint_code())?;
        match self {
            ScheduleError::WrongLength { expected, actual } => {
                write!(f, "schedule has {actual} times for {expected} ops")
            }
            ScheduleError::NegativeTime(op) => write!(f, "op {op:?} scheduled before cycle 0"),
            ScheduleError::Dependence {
                from,
                to,
                needed,
                actual,
            } => write!(
                f,
                "dependence {from:?}→{to:?} violated: separation {actual} < {needed}"
            ),
            ScheduleError::Resource {
                row,
                class,
                used,
                units,
            } => {
                write!(f, "row {row} uses {used} {class} units of {units}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Wrap raw times at an II.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, times: Vec<i64>) -> Schedule {
        assert!(ii > 0, "II must be positive");
        Schedule { ii, times }
    }

    /// The iteration interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Issue cycle of an op.
    pub fn time(&self, op: OpId) -> i64 {
        self.times[op.index()]
    }

    /// All times, op-indexed.
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// Kernel row of an op (`time mod II`).
    pub fn row(&self, op: OpId) -> u32 {
        (self.time(op).rem_euclid(i64::from(self.ii))) as u32
    }

    /// Pipeline stage of an op (`time div II`).
    pub fn stage(&self, op: OpId) -> u32 {
        (self.time(op).div_euclid(i64::from(self.ii))) as u32
    }

    /// Latest issue cycle.
    pub fn span(&self) -> i64 {
        self.times.iter().copied().max().unwrap_or(0)
    }

    /// Number of overlapped stages in the steady state.
    pub fn stage_count(&self) -> u32 {
        (self.span() / i64::from(self.ii)) as u32 + 1
    }

    /// Check dependence and modulo resource constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, lp: &Loop, ddg: &Ddg, machine: &Machine) -> Result<(), ScheduleError> {
        if self.times.len() != lp.len() {
            return Err(ScheduleError::WrongLength {
                expected: lp.len(),
                actual: self.times.len(),
            });
        }
        for op in lp.ops() {
            if self.time(op.id) < 0 {
                return Err(ScheduleError::NegativeTime(op.id));
            }
        }
        let ii = i64::from(self.ii);
        for e in ddg.edges() {
            let needed = e.latency - ii * i64::from(e.distance);
            let actual = self.time(e.to) - self.time(e.from);
            if actual < needed {
                return Err(ScheduleError::Dependence {
                    from: e.from,
                    to: e.to,
                    needed,
                    actual,
                });
            }
        }
        // Modulo reservation table.
        let mut table = vec![[0u32; 4]; self.ii as usize];
        for op in lp.ops() {
            for r in machine.reservations(op.class) {
                for d in 0..r.duration {
                    let row = ((self.time(op.id) + i64::from(d)).rem_euclid(ii)) as usize;
                    table[row][r.class.index()] += 1;
                }
            }
        }
        for (row, counts) in table.iter().enumerate() {
            for class in ResourceClass::ALL {
                let used = counts[class.index()];
                let units = machine.units(class);
                if used > units {
                    return Err(ScheduleError::Resource {
                        row: row as u32,
                        class,
                        used,
                        units,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use swp_machine::Machine;

    fn pair_loop() -> Loop {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        b.finish()
    }

    #[test]
    fn valid_schedule_passes() {
        let m = Machine::r8000();
        let lp = pair_loop();
        let ddg = Ddg::build(&lp, &m);
        // load@0, fadd@4, store@8 at II=1.
        let s = Schedule::new(1, vec![0, 4, 8]);
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
        assert_eq!(s.stage_count(), 9);
    }

    #[test]
    fn latency_violation_detected() {
        let m = Machine::r8000();
        let lp = pair_loop();
        let ddg = Ddg::build(&lp, &m);
        let s = Schedule::new(2, vec![0, 2, 8]); // fadd 2 cycles after load (needs 4)
        assert!(matches!(
            s.validate(&lp, &ddg, &m),
            Err(ScheduleError::Dependence { .. })
        ));
    }

    #[test]
    fn resource_violation_detected() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 800, 8);
        let v3 = b.load(x, 1600, 8);
        let s = b.fadd(v1, v2);
        let s2 = b.fadd(s, v3);
        b.store(x, 2400, 8, s2);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        // Three loads in the same row of II=2: 3 > 2 memory units.
        let s = Schedule::new(2, vec![0, 2, 4, 8, 12, 16]);
        assert!(matches!(
            s.validate(&lp, &ddg, &m),
            Err(ScheduleError::Resource { .. })
        ));
    }

    #[test]
    fn carried_dependence_relaxed_by_distance() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        // Self-arc: needs 4 - II ≤ 0 separation at II=4.
        let sched = Schedule::new(4, vec![0, 4]);
        assert_eq!(sched.validate(&lp, &ddg, &m), Ok(()));
    }

    #[test]
    fn unpipelined_op_blocks_rows() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let d1 = b.fdiv(v, v);
        let d2 = b.fdiv(d1, v);
        let d3 = b.fdiv(d2, v);
        b.store(x, 800, 8, d3);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        // Three divides (occupancy 11) on 2 FP pipes at II=11: 33 slots > 22.
        let t0 = 0i64;
        let t1 = 4;
        let t2 = t1 + 14;
        let t3 = t2 + 14;
        let s = Schedule::new(11, vec![t0, t1, t2, t3, t3 + 14]);
        assert!(matches!(
            s.validate(&lp, &ddg, &m),
            Err(ScheduleError::Resource { .. })
        ));
    }
}
