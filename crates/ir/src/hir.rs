//! A tiny structured loop language and its if-converting lowering.
//!
//! The MIPSpro compiler if-converts loops with internal branches into
//! straight-line code using conditional moves before pipelining (§2.1(3a),
//! citing \[AlKePoWa83\] and \[DeTo93\]). This module provides the same
//! facility: loops with `if`/`else` written against [`HExpr`]/[`HStmt`]
//! lower to a branch-free [`Loop`] where every conditional assignment
//! becomes a [`swp_machine::OpClass::CMov`] and conditional stores become
//! load–select–store sequences.
//!
//! # Examples
//!
//! `y[i] = x[i] < 0 ? -x[i] : x[i]` (an absolute value, branch form):
//!
//! ```
//! use swp_ir::hir::{HExpr, HStmt, HirLoop};
//!
//! let x = HExpr::load("x", 0, 8);
//! let body = vec![
//!     HStmt::if_(
//!         HExpr::lt(x.clone(), HExpr::invariant("zero")),
//!         vec![HStmt::let_("r", HExpr::sub(HExpr::invariant("zero"), x.clone()))],
//!         vec![HStmt::let_("r", x)],
//!     ),
//!     HStmt::store("y", 0, 8, HExpr::local("r")),
//! ];
//! let lp = HirLoop::new("abs", body).lower();
//! assert!(lp.ops().iter().any(|o| o.class == swp_machine::OpClass::CMov));
//! ```

use crate::builder::LoopBuilder;
use crate::op::{ArrayId, Loop, ValueId};
use std::collections::HashMap;

/// Expression tree of the mini-language. All values are floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Affine load `array[offset + stride·i]`.
    Load {
        /// Array name (declared implicitly on first mention).
        array: String,
        /// Byte offset.
        offset: i64,
        /// Byte stride per iteration.
        stride: i64,
    },
    /// Loop-invariant scalar by name.
    Invariant(String),
    /// Read of a `let`-bound local.
    Local(String),
    /// Read of a loop-carried variable (previous assignment, or the value
    /// carried from the previous iteration if not yet assigned).
    Carried(String),
    /// Addition.
    Add(Box<HExpr>, Box<HExpr>),
    /// Subtraction.
    Sub(Box<HExpr>, Box<HExpr>),
    /// Multiplication.
    Mul(Box<HExpr>, Box<HExpr>),
    /// Division (unpipelined on the R8000).
    Div(Box<HExpr>, Box<HExpr>),
    /// Square root.
    Sqrt(Box<HExpr>),
    /// Fused multiply-add `a·b + c`.
    Madd(Box<HExpr>, Box<HExpr>, Box<HExpr>),
    /// Less-than compare producing a condition value.
    Lt(Box<HExpr>, Box<HExpr>),
    /// Explicit select, for pre-converted sources.
    Select(Box<HExpr>, Box<HExpr>, Box<HExpr>),
}

// `add`/`sub`/`mul`/`div` are tree *constructors* (no receiver), not the
// arithmetic the std operator traits describe.
#[allow(clippy::should_implement_trait)]
impl HExpr {
    /// Affine load constructor.
    pub fn load(array: &str, offset: i64, stride: i64) -> HExpr {
        HExpr::Load {
            array: array.to_owned(),
            offset,
            stride,
        }
    }

    /// Invariant read constructor.
    pub fn invariant(name: &str) -> HExpr {
        HExpr::Invariant(name.to_owned())
    }

    /// Local read constructor.
    pub fn local(name: &str) -> HExpr {
        HExpr::Local(name.to_owned())
    }

    /// Carried-variable read constructor.
    pub fn carried(name: &str) -> HExpr {
        HExpr::Carried(name.to_owned())
    }

    /// `a + b`.
    pub fn add(a: HExpr, b: HExpr) -> HExpr {
        HExpr::Add(Box::new(a), Box::new(b))
    }

    /// `a − b`.
    pub fn sub(a: HExpr, b: HExpr) -> HExpr {
        HExpr::Sub(Box::new(a), Box::new(b))
    }

    /// `a · b`.
    pub fn mul(a: HExpr, b: HExpr) -> HExpr {
        HExpr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`.
    pub fn div(a: HExpr, b: HExpr) -> HExpr {
        HExpr::Div(Box::new(a), Box::new(b))
    }

    /// `a·b + c`.
    pub fn madd(a: HExpr, b: HExpr, c: HExpr) -> HExpr {
        HExpr::Madd(Box::new(a), Box::new(b), Box::new(c))
    }

    /// `a < b`.
    pub fn lt(a: HExpr, b: HExpr) -> HExpr {
        HExpr::Lt(Box::new(a), Box::new(b))
    }
}

/// Statements of the mini-language.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmt {
    /// Bind (or rebind) a local name.
    Let(String, HExpr),
    /// Update a loop-carried variable (takes effect next iteration at
    /// distance 1; reads after the update see the new value).
    SetCarried(String, HExpr),
    /// Affine store.
    Store {
        /// Array name.
        array: String,
        /// Byte offset.
        offset: i64,
        /// Byte stride per iteration.
        stride: i64,
        /// Value stored.
        value: HExpr,
    },
    /// Structured conditional; lowering if-converts it.
    If {
        /// Branch condition.
        cond: HExpr,
        /// Taken statements.
        then_s: Vec<HStmt>,
        /// Not-taken statements.
        else_s: Vec<HStmt>,
    },
}

impl HStmt {
    /// `let name = expr`.
    pub fn let_(name: &str, expr: HExpr) -> HStmt {
        HStmt::Let(name.to_owned(), expr)
    }

    /// `carried name = expr`.
    pub fn set_carried(name: &str, expr: HExpr) -> HStmt {
        HStmt::SetCarried(name.to_owned(), expr)
    }

    /// `array[offset + stride·i] = value`.
    pub fn store(array: &str, offset: i64, stride: i64, value: HExpr) -> HStmt {
        HStmt::Store {
            array: array.to_owned(),
            offset,
            stride,
            value,
        }
    }

    /// `if cond { then_s } else { else_s }`.
    pub fn if_(cond: HExpr, then_s: Vec<HStmt>, else_s: Vec<HStmt>) -> HStmt {
        HStmt::If {
            cond,
            then_s,
            else_s,
        }
    }
}

/// A loop in the mini-language.
#[derive(Debug, Clone, PartialEq)]
pub struct HirLoop {
    name: String,
    stmts: Vec<HStmt>,
    elem_bytes: u32,
}

impl HirLoop {
    /// Create a loop over double-precision (8-byte) arrays.
    pub fn new(name: &str, stmts: Vec<HStmt>) -> HirLoop {
        HirLoop {
            name: name.to_owned(),
            stmts,
            elem_bytes: 8,
        }
    }

    /// Override the array element size (4 = single precision).
    pub fn with_elem_bytes(mut self, elem_bytes: u32) -> HirLoop {
        self.elem_bytes = elem_bytes;
        self
    }

    /// Lower to the flat IR, if-converting all conditionals.
    ///
    /// # Panics
    ///
    /// Panics on malformed programs: reading an unbound local, or a local
    /// assigned in only one branch of an `if` with no prior binding.
    pub fn lower(&self) -> Loop {
        let mut cx = LowerCx {
            b: LoopBuilder::new(&self.name),
            arrays: HashMap::new(),
            invariants: HashMap::new(),
            locals: HashMap::new(),
            carried: HashMap::new(),
            elem_bytes: self.elem_bytes,
        };
        cx.stmts(&self.stmts);
        // Close all carried variables with their final values.
        let carried: Vec<_> = cx.carried.drain().collect();
        for (_, st) in carried {
            cx.b.close(st.handle, st.current, 1);
        }
        cx.b.finish()
    }
}

struct CarriedState {
    handle: crate::builder::Carried,
    current: ValueId,
}

struct LowerCx {
    b: LoopBuilder,
    arrays: HashMap<String, ArrayId>,
    invariants: HashMap<String, ValueId>,
    locals: HashMap<String, ValueId>,
    carried: HashMap<String, CarriedState>,
    elem_bytes: u32,
}

impl LowerCx {
    fn array(&mut self, name: &str) -> ArrayId {
        if let Some(&a) = self.arrays.get(name) {
            return a;
        }
        let a = self.b.array(name, self.elem_bytes);
        self.arrays.insert(name.to_owned(), a);
        a
    }

    fn expr(&mut self, e: &HExpr) -> ValueId {
        match e {
            HExpr::Load {
                array,
                offset,
                stride,
            } => {
                let a = self.array(array);
                self.b.load(a, *offset, *stride)
            }
            HExpr::Invariant(name) => {
                if let Some(&v) = self.invariants.get(name) {
                    v
                } else {
                    let v = self.b.invariant_f(name);
                    self.invariants.insert(name.clone(), v);
                    v
                }
            }
            HExpr::Local(name) => *self
                .locals
                .get(name)
                .unwrap_or_else(|| panic!("read of unbound local `{name}`")),
            HExpr::Carried(name) => {
                self.carried_state(name);
                self.carried[name].current
            }
            HExpr::Add(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.b.fadd(a, b)
            }
            HExpr::Sub(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.b.fsub(a, b)
            }
            HExpr::Mul(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.b.fmul(a, b)
            }
            HExpr::Div(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.b.fdiv(a, b)
            }
            HExpr::Sqrt(a) => {
                let a = self.expr(a);
                self.b.fsqrt(a)
            }
            HExpr::Madd(a, b, c) => {
                let (a, b, c) = (self.expr(a), self.expr(b), self.expr(c));
                self.b.fmadd(a, b, c)
            }
            HExpr::Lt(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.b.fcmp(a, b)
            }
            HExpr::Select(c, a, b) => {
                let (c, a, b) = (self.expr(c), self.expr(a), self.expr(b));
                self.b.cmov(c, a, b)
            }
        }
    }

    fn carried_state(&mut self, name: &str) {
        if !self.carried.contains_key(name) {
            let handle = self.b.carried_f(name);
            self.carried.insert(
                name.to_owned(),
                CarriedState {
                    handle,
                    current: handle.value(),
                },
            );
        }
    }

    fn stmts(&mut self, stmts: &[HStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::Let(name, e) => {
                let v = self.expr(e);
                self.locals.insert(name.clone(), v);
            }
            HStmt::SetCarried(name, e) => {
                let v = self.expr(e);
                self.carried_state(name);
                self.carried.get_mut(name).expect("just ensured").current = v;
            }
            HStmt::Store {
                array,
                offset,
                stride,
                value,
            } => {
                let v = self.expr(value);
                let a = self.array(array);
                self.b.store(a, *offset, *stride, v);
            }
            HStmt::If {
                cond,
                then_s,
                else_s,
            } => self.if_convert(cond, then_s, else_s),
        }
    }

    /// Lower both branches without stores, then select every assignment
    /// with a conditional move; stores merge or read-modify-write.
    fn if_convert(&mut self, cond: &HExpr, then_s: &[HStmt], else_s: &[HStmt]) {
        let c = self.expr(cond);

        let locals_before = self.locals.clone();
        let carried_before: HashMap<String, ValueId> = self
            .carried
            .iter()
            .map(|(k, v)| (k.clone(), v.current))
            .collect();

        let mut then_stores = Vec::new();
        self.branch(then_s, &mut then_stores);
        let locals_then = std::mem::replace(&mut self.locals, locals_before.clone());
        let carried_then: HashMap<String, ValueId> = self
            .carried
            .iter()
            .map(|(k, v)| (k.clone(), v.current))
            .collect();
        // Reset carried currents: pre-branch value, or the placeholder for
        // variables first mentioned inside the branch.
        for (k, st) in self.carried.iter_mut() {
            st.current = carried_before
                .get(k)
                .copied()
                .unwrap_or_else(|| st.handle.value());
        }

        let mut else_stores = Vec::new();
        self.branch(else_s, &mut else_stores);
        let locals_else = std::mem::replace(&mut self.locals, locals_before.clone());
        let carried_else: HashMap<String, ValueId> = self
            .carried
            .iter()
            .map(|(k, v)| (k.clone(), v.current))
            .collect();

        // Merge locals.
        let mut names: Vec<&String> = locals_then.keys().chain(locals_else.keys()).collect();
        names.sort();
        names.dedup();
        for name in names {
            let t = locals_then.get(name).copied();
            let e = locals_else.get(name).copied();
            let prior = locals_before.get(name).copied();
            let merged = match (t, e) {
                (Some(t), Some(e)) if t == e => t,
                (Some(t), Some(e)) => self.b.cmov(c, t, e),
                (Some(t), None) => {
                    let p = prior.unwrap_or_else(|| {
                        panic!("local `{name}` set only in then-branch with no prior binding")
                    });
                    if t == p {
                        p
                    } else {
                        self.b.cmov(c, t, p)
                    }
                }
                (None, Some(e)) => {
                    let p = prior.unwrap_or_else(|| {
                        panic!("local `{name}` set only in else-branch with no prior binding")
                    });
                    if e == p {
                        p
                    } else {
                        self.b.cmov(c, p, e)
                    }
                }
                (None, None) => continue,
            };
            self.locals.insert(name.clone(), merged);
        }

        // Merge carried updates (prior value always exists: the carried
        // placeholder or last assignment).
        let mut cnames: Vec<&String> = carried_then.keys().chain(carried_else.keys()).collect();
        cnames.sort();
        cnames.dedup();
        let cnames: Vec<String> = cnames.into_iter().cloned().collect();
        for name in cnames {
            // A variable first mentioned inside one branch falls back to
            // its pre-branch value (placeholder) on the other path.
            let prior = carried_before
                .get(&name)
                .copied()
                .unwrap_or_else(|| self.carried[&name].handle.value());
            let t = carried_then.get(&name).copied().unwrap_or(prior);
            let e = carried_else.get(&name).copied().unwrap_or(prior);
            if t != e {
                let merged = self.b.cmov(c, t, e);
                self.carried
                    .get_mut(&name)
                    .expect("carried persists")
                    .current = merged;
            }
        }

        // Merge stores by location.
        let mut locs: Vec<(String, i64, i64)> = then_stores
            .iter()
            .chain(else_stores.iter())
            .map(|(a, o, s, _): &(String, i64, i64, ValueId)| (a.clone(), *o, *s))
            .collect();
        locs.sort();
        locs.dedup();
        for (array, offset, stride) in locs {
            let tv = then_stores
                .iter()
                .find(|(a, o, s, _)| *a == array && *o == offset && *s == stride)
                .map(|&(_, _, _, v)| v);
            let ev = else_stores
                .iter()
                .find(|(a, o, s, _)| *a == array && *o == offset && *s == stride)
                .map(|&(_, _, _, v)| v);
            let aid = self.array(&array);
            let value = match (tv, ev) {
                (Some(t), Some(e)) => {
                    if t == e {
                        t
                    } else {
                        self.b.cmov(c, t, e)
                    }
                }
                (Some(t), None) => {
                    let cur = self.b.load(aid, offset, stride);
                    self.b.cmov(c, t, cur)
                }
                (None, Some(e)) => {
                    let cur = self.b.load(aid, offset, stride);
                    self.b.cmov(c, cur, e)
                }
                (None, None) => continue,
            };
            self.b.store(aid, offset, stride, value);
        }
    }

    /// Lower a branch body, diverting stores into `stores` for merging.
    fn branch(&mut self, stmts: &[HStmt], stores: &mut Vec<(String, i64, i64, ValueId)>) {
        for s in stmts {
            match s {
                HStmt::Store {
                    array,
                    offset,
                    stride,
                    value,
                } => {
                    let v = self.expr(value);
                    stores.push((array.clone(), *offset, *stride, v));
                }
                HStmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    // Nested ifs inside a branch: recursively if-convert;
                    // their stores become unconditional within this branch
                    // and are then guarded by the outer merge only if the
                    // location is re-stored here. For simplicity nested-if
                    // stores are executed via read-modify-write directly.
                    self.if_convert(cond, then_s, else_s);
                }
                other => self.stmt(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::OpClass;

    #[test]
    fn plain_lowering_has_no_cmov() {
        let lp = HirLoop::new(
            "axpy",
            vec![HStmt::store(
                "y",
                0,
                8,
                HExpr::madd(
                    HExpr::invariant("a"),
                    HExpr::load("x", 0, 8),
                    HExpr::load("y", 0, 8),
                ),
            )],
        )
        .lower();
        assert!(lp.ops().iter().all(|o| o.class != OpClass::CMov));
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::Load).count(),
            2
        );
    }

    #[test]
    fn if_both_branches_assign_uses_one_cmov() {
        let x = HExpr::load("x", 0, 8);
        let lp = HirLoop::new(
            "abs",
            vec![
                HStmt::if_(
                    HExpr::lt(x.clone(), HExpr::invariant("zero")),
                    vec![HStmt::let_(
                        "r",
                        HExpr::sub(HExpr::invariant("zero"), x.clone()),
                    )],
                    vec![HStmt::let_("r", x)],
                ),
                HStmt::store("y", 0, 8, HExpr::local("r")),
            ],
        )
        .lower();
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::CMov).count(),
            1
        );
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::FCmp).count(),
            1
        );
    }

    #[test]
    fn conditional_store_becomes_read_modify_write() {
        let lp = HirLoop::new(
            "condstore",
            vec![HStmt::if_(
                HExpr::lt(HExpr::load("x", 0, 8), HExpr::invariant("t")),
                vec![HStmt::store("y", 0, 8, HExpr::invariant("one"))],
                vec![],
            )],
        )
        .lower();
        // A load of y is inserted to supply the not-taken value.
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::Load).count(),
            2
        );
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::CMov).count(),
            1
        );
        assert_eq!(
            lp.ops()
                .iter()
                .filter(|o| o.class == OpClass::Store)
                .count(),
            1
        );
    }

    #[test]
    fn carried_update_in_if_is_selected() {
        // if (x < max) max = x  — a running-max recurrence.
        let lp = HirLoop::new(
            "max",
            vec![HStmt::if_(
                HExpr::lt(HExpr::carried("max"), HExpr::load("x", 0, 8)),
                vec![HStmt::set_carried("max", HExpr::load("x", 0, 8))],
                vec![],
            )],
        )
        .lower();
        assert!(lp.ops().iter().any(|o| o.class == OpClass::CMov));
        // The cmov result is the carried def: some operand uses it at d=1.
        assert!(lp
            .ops()
            .iter()
            .any(|o| o.operands.iter().any(|operand| operand.distance == 1)));
    }

    #[test]
    fn single_precision_loops_use_4_byte_elements() {
        let lp = HirLoop::new("sp", vec![HStmt::store("y", 0, 4, HExpr::load("x", 0, 4))])
            .with_elem_bytes(4)
            .lower();
        assert_eq!(lp.arrays()[0].elem_bytes, 4);
    }
}
