//! Conservative memory dependence analysis.
//!
//! The MIPSpro compiler runs array dependence analysis before pipelining
//! (§2.1). Our loops carry affine access descriptors, so the analysis here
//! is exact for same-stride affine accesses and conservative for indirect
//! or mixed-stride accesses: any pair that cannot be disambiguated is
//! serialized within the iteration (body order) and across iterations
//! (distance 1).

use crate::ddg::{DepEdge, DepKind};
use crate::op::{Loop, Op};
use swp_machine::OpClass;

/// Latency of a store-to-load (memory true) dependence in cycles.
pub const MEM_TRUE_LATENCY: i64 = 1;
/// Latency of a load-to-store (anti) dependence: they may share a cycle.
pub const MEM_ANTI_LATENCY: i64 = 0;
/// Latency of a store-to-store (output) dependence.
pub const MEM_OUTPUT_LATENCY: i64 = 1;

/// Maximum loop-carried distance tracked exactly; reuse farther apart than
/// this is ignored (it cannot constrain schedules at realistic IIs).
const MAX_TRACKED_DISTANCE: i64 = 8;

/// Compute all memory dependence edges of a loop.
///
/// Two loads never conflict. For other same-array pairs:
/// - both affine with equal non-zero stride: an exact distance is computed
///   from the offset difference; non-integral differences mean independence;
/// - stride 0, indirect, or mixed strides: conservative serialization.
pub fn memory_deps(lp: &Loop) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    let mem_ops: Vec<&Op> = lp.mem_ops().collect();
    for (ai, &a) in mem_ops.iter().enumerate() {
        for &b in &mem_ops[ai..] {
            if a.id == b.id {
                // A store can conflict with itself across iterations only if
                // it revisits the same address (stride 0 or indirect).
                let m = a.mem.expect("mem op has access");
                if a.class == OpClass::Store && (m.indirect || m.stride == 0) {
                    edges.push(edge(a, a, 1, DepKind::MemOutput));
                }
                continue;
            }
            analyze_pair(a, b, &mut edges);
        }
    }
    edges
}

fn analyze_pair(a: &Op, b: &Op, edges: &mut Vec<DepEdge>) {
    let ma = a.mem.expect("mem op");
    let mb = b.mem.expect("mem op");
    if ma.array != mb.array {
        return;
    }
    if a.class == OpClass::Load && b.class == OpClass::Load {
        return;
    }

    let exact = !ma.indirect && !mb.indirect && ma.stride == mb.stride && ma.stride != 0;
    if !exact {
        // Conservative: b after a in body order this iteration, and each
        // conflicts with the other one iteration later.
        let (first, second) = if a.id < b.id { (a, b) } else { (b, a) };
        edges.push(edge(first, second, 0, kind_of(first, second)));
        edges.push(edge(second, first, 1, kind_of(second, first)));
        return;
    }

    // Equal non-zero strides: a's iteration-i address equals b's
    // iteration-(i+d) address iff d = (oa - ob) / stride.
    let diff = ma.offset - mb.offset;
    if diff % ma.stride != 0 {
        return; // addresses interleave but never collide
    }
    let d = diff / ma.stride;
    if d.abs() > MAX_TRACKED_DISTANCE {
        return;
    }
    match d.cmp(&0) {
        std::cmp::Ordering::Equal => {
            // Same address in the same iteration: body order decides.
            let (first, second) = if a.id < b.id { (a, b) } else { (b, a) };
            edges.push(edge(first, second, 0, kind_of(first, second)));
        }
        std::cmp::Ordering::Greater => {
            edges.push(edge(a, b, d as u32, kind_of(a, b)));
        }
        std::cmp::Ordering::Less => {
            edges.push(edge(b, a, (-d) as u32, kind_of(b, a)));
        }
    }
}

fn kind_of(from: &Op, to: &Op) -> DepKind {
    match (from.class, to.class) {
        (OpClass::Store, OpClass::Load) => DepKind::MemTrue,
        (OpClass::Load, OpClass::Store) => DepKind::MemAnti,
        _ => DepKind::MemOutput,
    }
}

fn edge(from: &Op, to: &Op, distance: u32, kind: DepKind) -> DepEdge {
    let latency = match kind {
        DepKind::MemTrue => MEM_TRUE_LATENCY,
        DepKind::MemAnti => MEM_ANTI_LATENCY,
        DepKind::MemOutput => MEM_OUTPUT_LATENCY,
        DepKind::Data(_) => unreachable!("data deps are not built here"),
    };
    DepEdge {
        from: from.id,
        to: to.id,
        latency,
        distance,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    #[test]
    fn disjoint_arrays_independent() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        b.store(y, 0, 8, v);
        let lp = b.finish();
        assert!(memory_deps(&lp).is_empty());
    }

    #[test]
    fn store_then_load_next_iteration() {
        // store a[i]; load a[i+1] — wait, the load of a[i-1] pattern:
        // store at offset 0, load at offset -8 reads what was stored one
        // iteration earlier: distance 1 true dependence store->load.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", 8);
        let v = b.load(a, -8, 8);
        let w = b.fmul(v, v);
        b.store(a, 0, 8, w);
        let lp = b.finish();
        let deps = memory_deps(&lp);
        assert_eq!(deps.len(), 1);
        let e = &deps[0];
        assert_eq!(e.kind, DepKind::MemTrue);
        assert_eq!(e.distance, 1);
        assert_eq!(e.from, lp.ops()[2].id);
        assert_eq!(e.to, lp.ops()[0].id);
    }

    #[test]
    fn same_iteration_same_address_uses_body_order() {
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", 8);
        let v = b.load(a, 0, 8);
        b.store(a, 0, 8, v);
        let lp = b.finish();
        let deps = memory_deps(&lp);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::MemAnti);
        assert_eq!(deps[0].distance, 0);
    }

    #[test]
    fn indirect_is_conservative() {
        let mut b = LoopBuilder::new("t");
        let idx = b.array("idx", 8);
        let a = b.array("a", 8);
        let i = b.load_i(idx, 0, 8);
        let v = b.load_indirect(a, i);
        let w = b.fadd(v, v);
        b.store_indirect(a, i, w);
        let lp = b.finish();
        let deps = memory_deps(&lp);
        // load<->store serialized both directions (0 and 1), plus the
        // store's self output dependence.
        assert_eq!(deps.len(), 3);
        assert!(deps
            .iter()
            .any(|e| e.kind == DepKind::MemOutput && e.from == e.to));
    }

    #[test]
    fn far_apart_offsets_ignored() {
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", 8);
        let v = b.load(a, -800, 8); // 100 iterations apart: untracked
        b.store(a, 0, 8, v);
        let lp = b.finish();
        assert!(memory_deps(&lp).is_empty());
    }

    #[test]
    fn interleaved_strides_never_collide() {
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", 8);
        let v = b.load(a, 4, 8); // offset not a multiple of stride apart
        b.store(a, 0, 8, v);
        let lp = b.finish();
        assert!(memory_deps(&lp).is_empty());
    }
}
