//! Inner-loop optimization passes run before pipelining (§2.1 of the paper).
//!
//! - [`cse`]: common subexpression elimination (§2.1 category 2a), a
//!   fixpoint over the GVN engine in [`crate::opt`];
//! - [`unroll`]: body replication, the basis of the compiler's "outer loop
//!   unrolling" and of recurrence interleaving;
//! - [`interleave_reduction`]: §2.1(3b), "interleaving of register
//!   recurrences such as summation or dot products" — splits a serial
//!   accumulation into independent chains to lower RecMII;
//! - [`eliminate_common_loads`]: §2.1(3c), inter-iteration common memory
//!   reference elimination — a load whose address was loaded `d` iterations
//!   earlier reuses that value through a register instead.

use crate::op::{Loop, Op, OpId, Operand, Sem, ValueId, ValueInfo};
use std::collections::HashMap;
use swp_machine::OpClass;

/// Common subexpression elimination, backed by the value-numbering lattice
/// of [`crate::analysis`].
///
/// Merges side-effect-free ops whose expression keys over the congruence
/// classes coincide — identical operands trivially, but also operands that
/// are merely congruent (e.g. two loads of the same cell feeding twin
/// multiplies). Loads merge only when the alias summary proves the array
/// store-free; stores never merge. The summary is computed once per
/// fixpoint round instead of rescanning the body per load (the historical
/// O(n²) behavior). Runs to a fixpoint; returns the number of ops removed.
pub fn cse(lp: &mut Loop) -> usize {
    let mut removed_total = 0;
    loop {
        let alias = crate::analysis::AliasSummary::compute(lp);
        let vn = crate::analysis::ValueNumbers::compute(lp, &alias);
        let n = crate::opt::gvn_apply(lp, &alias, &vn);
        if n == 0 {
            return removed_total;
        }
        removed_total += n;
    }
}

/// Replace a set of loads with register reuse of an identical load `d`
/// iterations earlier (inter-iteration common memory reference elimination).
///
/// Applies only to affine loads of arrays that are never stored to in the
/// loop (otherwise the intervening store could change the value). Returns
/// the number of loads eliminated.
pub fn eliminate_common_loads(lp: &mut Loop) -> usize {
    /// Reuse farther than this costs more registers than it saves.
    const MAX_REUSE_DISTANCE: i64 = 4;

    let stored: Vec<bool> = lp
        .arrays()
        .iter()
        .enumerate()
        .map(|(ai, _)| {
            lp.ops()
                .iter()
                .any(|o| o.class == OpClass::Store && o.mem.is_some_and(|m| m.array.index() == ai))
        })
        .collect();

    let loads: Vec<Op> = lp
        .ops()
        .iter()
        .filter(|o| {
            o.class == OpClass::Load
                && o.mem.is_some_and(|m| !m.indirect && m.stride != 0)
                && !stored[o.mem.expect("mem").array.index()]
        })
        .cloned()
        .collect();

    let mut dead: Vec<OpId> = Vec::new();
    let mut rewrites: HashMap<ValueId, (ValueId, u32)> = HashMap::new();
    for b in &loads {
        let mb = b.mem.expect("load");
        // Find the load `a` whose value at iteration i-d equals b's at i,
        // i.e. oa + s(i-d) = ob + s·i → oa - ob = s·d with d ≥ 1.
        let mut best: Option<(ValueId, i64)> = None;
        for a in &loads {
            if a.id == b.id {
                continue;
            }
            let ma = a.mem.expect("load");
            if ma.array != mb.array || ma.stride != mb.stride {
                continue;
            }
            let diff = ma.offset - mb.offset;
            if diff <= 0 || diff % ma.stride != 0 {
                continue;
            }
            let d = diff / ma.stride;
            if (1..=MAX_REUSE_DISTANCE).contains(&d) && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((a.result.expect("load result"), d));
            }
        }
        if let Some((src, d)) = best {
            if dead.contains(&b.id) {
                continue;
            }
            // Avoid chains onto loads that are themselves being removed.
            if rewrites.contains_key(&src) {
                continue;
            }
            rewrites.insert(b.result.expect("load result"), (src, d as u32));
            dead.push(b.id);
        }
    }
    if dead.is_empty() {
        return 0;
    }
    for op in &mut lp.ops {
        for operand in &mut op.operands {
            if let Some(&(src, d)) = rewrites.get(&operand.value) {
                operand.value = src;
                operand.distance += d;
            }
        }
    }
    let n = dead.len();
    remove_ops(lp, &dead);
    n
}

/// Unroll the loop body `k` times.
///
/// Copy `j` of an op reads old-iteration `I·k + j − d` values, which land in
/// copy `(j−d) mod k` at new distance `(d−j + ((j−d) mod k)) / k`. Memory
/// offsets gain `stride·j` and strides scale by `k`. Values named in
/// `interleave` short-circuit instead: copy `j` uses copy `j`'s previous
/// new-iteration value (distance 1), which is exactly recurrence
/// interleaving (only distance-1 recurrences are eligible).
///
/// # Panics
///
/// Panics if `k == 0` or an `interleave` value has a carried use with
/// distance ≠ 1.
pub fn unroll(lp: &Loop, k: u32, interleave: &[ValueId]) -> Loop {
    assert!(k > 0, "unroll factor must be positive");
    if k == 1 {
        return lp.clone();
    }
    let mut ops: Vec<Op> = Vec::with_capacity(lp.len() * k as usize);
    let mut values: Vec<ValueInfo> = Vec::new();
    // Invariants keep one shared copy.
    let mut value_map: HashMap<(ValueId, u32), ValueId> = HashMap::new();
    for (v, info) in lp.values().iter().enumerate() {
        if info.is_invariant() {
            let nv = ValueId(values.len() as u32);
            values.push(info.clone());
            for j in 0..k {
                value_map.insert((ValueId(v as u32), j), nv);
            }
        }
    }
    // Pre-create result values for every (op, copy).
    for j in 0..k {
        for op in lp.ops() {
            if let Some(r) = op.result {
                let info = lp.value(r);
                let nv = ValueId(values.len() as u32);
                values.push(ValueInfo {
                    class: info.class,
                    def: Some(OpId((ops.len() + op.id.index()) as u32)),
                    name: format!("{}.u{}", info.name, j),
                    literal: None,
                });
                value_map.insert((r, j), nv);
            }
        }
        // Reserve op id space for this copy.
        for _ in lp.ops() {
            ops.push(Op {
                id: OpId(ops.len() as u32),
                class: OpClass::Copy,
                sem: Sem::Copy,
                result: None,
                operands: Vec::new(),
                mem: None,
            });
        }
    }
    // Fill in the ops.
    for j in 0..k {
        for op in lp.ops() {
            let new_id = OpId((j as usize * lp.len() + op.id.index()) as u32);
            let mut operands = Vec::with_capacity(op.operands.len());
            for operand in &op.operands {
                let info = lp.value(operand.value);
                if info.is_invariant() {
                    operands.push(Operand::now(value_map[&(operand.value, 0)]));
                    continue;
                }
                if interleave.contains(&operand.value) && operand.distance >= 1 {
                    assert_eq!(
                        operand.distance, 1,
                        "interleaving requires a distance-1 recurrence"
                    );
                    operands.push(Operand::carried(value_map[&(operand.value, j)], 1));
                    continue;
                }
                let d = operand.distance as i64;
                let t = j as i64 - d;
                let jj = t.rem_euclid(k as i64) as u32;
                let nd = ((d - j as i64 + i64::from(jj)) / k as i64) as u32;
                operands.push(Operand {
                    value: value_map[&(operand.value, jj)],
                    distance: nd,
                });
            }
            let mem = op.mem.map(|m| {
                if m.indirect {
                    m
                } else {
                    crate::op::MemAccess {
                        array: m.array,
                        offset: m.offset + m.stride * i64::from(j),
                        stride: m.stride * i64::from(k),
                        indirect: false,
                    }
                }
            });
            ops[new_id.index()] = Op {
                id: new_id,
                class: op.class,
                sem: op.sem,
                result: op.result.map(|r| value_map[&(r, j)]),
                operands,
                mem,
            };
        }
    }
    let out = Loop {
        name: format!("{}.x{}", lp.name(), k),
        ops,
        values,
        arrays: lp.arrays().to_vec(),
    };
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Split every distance-1 floating-point reduction into `k` independent
/// accumulator chains by unrolling `k`× (RecMII drops by `k`). Returns the
/// transformed loop and the number of reductions interleaved; when no
/// reduction is found the loop is returned unchanged (factor 1).
pub fn interleave_reduction(lp: &Loop, k: u32) -> (Loop, usize) {
    let reductions: Vec<ValueId> = lp
        .ops()
        .iter()
        .filter(|op| {
            matches!(op.class, OpClass::FAdd | OpClass::FMadd)
                && op.result.is_some_and(|r| {
                    op.operands.iter().any(|o| o.value == r && o.distance == 1)
                        && op.operands.iter().all(|o| o.value != r || o.distance == 1)
                })
        })
        .map(|op| op.result.expect("reduction result"))
        .collect();
    if reductions.is_empty() || k <= 1 {
        return (lp.clone(), 0);
    }
    (unroll(lp, k, &reductions), reductions.len())
}

/// Spill the given values to memory (§2.8 of the paper).
///
/// Each spilled value gets a rotating memory slot (modeled as a fresh array
/// with an 8-byte per-iteration stride): a store is inserted right after the
/// definition, and every use is replaced by a load — one shared load per
/// distinct use distance, placed after the store in body order so the
/// same-iteration memory dependence is honored. Values with no definition
/// (invariants) and values that are never used are skipped.
///
/// Returns the transformed loop; the caller re-runs modulo scheduling on it.
pub fn spill_to_memory(lp: &Loop, values: &[ValueId]) -> Loop {
    let mut out = lp.clone();
    for &v in values {
        let Some(def_op) = out.values[v.index()].def else {
            continue;
        };
        let used = out
            .ops
            .iter()
            .any(|o| o.operands.iter().any(|operand| operand.value == v));
        if !used {
            continue;
        }
        let class = out.values[v.index()].class;
        let slot = crate::op::ArrayId(out.arrays.len() as u32);
        // Consecutive spill slots alternate banks, as consecutive stack
        // slots do on real hardware — spill traffic then pairs cleanly.
        let base_align = 8 * (u64::from(slot.0) % 2);
        out.arrays.push(crate::op::ArrayInfo {
            name: format!("spill.{}", out.values[v.index()].name),
            elem_bytes: 8,
            base_align,
        });

        // Distinct use distances, each served by one load op.
        let mut distances: Vec<u32> = out
            .ops
            .iter()
            .flat_map(|o| o.operands.iter())
            .filter(|operand| operand.value == v)
            .map(|operand| operand.distance)
            .collect();
        distances.sort_unstable();
        distances.dedup();

        // New ops are appended after the def op: store, then loads. Build a
        // fresh op list with insertions.
        let mut new_ops: Vec<Op> = Vec::with_capacity(out.ops.len() + 1 + distances.len());
        let mut load_value: HashMap<u32, ValueId> = HashMap::new();
        for op in out.ops.drain(..) {
            let insert_after = op.id == def_op;
            new_ops.push(op);
            if insert_after {
                new_ops.push(Op {
                    id: OpId(0), // renumbered below
                    class: OpClass::Store,
                    sem: Sem::Store,
                    result: None,
                    operands: vec![Operand::now(v)],
                    mem: Some(crate::op::MemAccess {
                        array: slot,
                        offset: 0,
                        stride: 8,
                        indirect: false,
                    }),
                });
                for &d in &distances {
                    let nv = ValueId(out.values.len() as u32);
                    out.values.push(ValueInfo {
                        class,
                        def: None, // fixed after renumbering
                        name: format!("{}.reload{}", out.values[v.index()].name, d),
                        literal: None,
                    });
                    load_value.insert(d, nv);
                    new_ops.push(Op {
                        id: OpId(0),
                        class: OpClass::Load,
                        sem: Sem::Load,
                        result: Some(nv),
                        operands: Vec::new(),
                        mem: Some(crate::op::MemAccess {
                            array: slot,
                            offset: -8 * i64::from(d),
                            stride: 8,
                            indirect: false,
                        }),
                    });
                }
            }
        }
        // Renumber ids and fix value defs.
        for (i, op) in new_ops.iter_mut().enumerate() {
            op.id = OpId(i as u32);
            if let Some(r) = op.result {
                out.values[r.index()].def = Some(op.id);
            }
        }
        // Redirect uses (all uses become distance-0 reads of the reload,
        // which itself reads `d` iterations back through memory) — except
        // the spill store's own read of `v`.
        for op in &mut new_ops {
            let is_spill_store =
                op.class == OpClass::Store && op.mem.is_some_and(|m| m.array == slot);
            if is_spill_store {
                continue;
            }
            for operand in &mut op.operands {
                if operand.value == v {
                    *operand = Operand::now(load_value[&operand.distance]);
                }
            }
        }
        out.ops = new_ops;
    }
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Rewrite all operand values by a substitution map (distances preserved).
pub(crate) fn substitute_values(lp: &mut Loop, map: &HashMap<ValueId, ValueId>) {
    for op in &mut lp.ops {
        for operand in &mut op.operands {
            if let Some(&nv) = map.get(&operand.value) {
                operand.value = nv;
            }
        }
    }
}

/// Remove ops and compact op ids (values keep their ids; dead results
/// become dangling `def: None` entries, which remain valid invariants only
/// if unused — callers must have rewritten uses first).
pub(crate) fn remove_ops(lp: &mut Loop, dead: &[OpId]) {
    let mut id_map: HashMap<OpId, OpId> = HashMap::new();
    let mut ops = Vec::with_capacity(lp.ops.len() - dead.len());
    for op in lp.ops.drain(..) {
        if dead.contains(&op.id) {
            if let Some(r) = op.result {
                lp.values[r.index()].def = None;
            }
            continue;
        }
        let new_id = OpId(ops.len() as u32);
        id_map.insert(op.id, new_id);
        ops.push(Op { id: new_id, ..op });
    }
    lp.ops = ops;
    for info in &mut lp.values {
        if let Some(d) = info.def {
            info.def = id_map.get(&d).copied();
        }
    }
    debug_assert_eq!(lp.validate(), Ok(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ddg::Ddg;
    use swp_machine::Machine;

    #[test]
    fn cse_merges_duplicate_arithmetic() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let a1 = b.fmul(v, v);
        let a2 = b.fmul(v, v);
        let s = b.fadd(a1, a2);
        b.store(y, 0, 8, s);
        let mut lp = b.finish();
        let n = lp.len();
        let removed = cse(&mut lp);
        assert_eq!(removed, 1);
        assert_eq!(lp.len(), n - 1);
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn cse_keeps_loads_of_stored_arrays() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 0, 8);
        let s = b.fadd(v1, v2);
        b.store(x, 0, 8, s);
        let mut lp = b.finish();
        assert_eq!(cse(&mut lp), 0);
    }

    #[test]
    fn common_load_elimination_creates_carried_use() {
        // load a[i+1] (offset 8) and a[i] (offset 0): the latter is last
        // iteration's former.
        let mut b = LoopBuilder::new("t");
        let a = b.array("a", 8);
        let y = b.array("y", 8);
        let hi = b.load(a, 8, 8);
        let lo = b.load(a, 0, 8);
        let s = b.fadd(hi, lo);
        b.store(y, 0, 8, s);
        let mut lp = b.finish();
        assert_eq!(eliminate_common_loads(&mut lp), 1);
        assert!(lp.validate().is_ok());
        // The add now uses the surviving load at distance 1.
        let add = lp
            .ops()
            .iter()
            .find(|o| o.class == OpClass::FAdd)
            .expect("add");
        assert!(add.operands.iter().any(|o| o.distance == 1));
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::Load).count(),
            1
        );
    }

    #[test]
    fn unroll_scales_strides_and_offsets() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        b.store(y, 0, 8, v);
        let lp = unroll(&b.finish(), 4, &[]);
        assert_eq!(lp.len(), 8);
        let loads: Vec<_> = lp
            .ops()
            .iter()
            .filter(|o| o.class == OpClass::Load)
            .collect();
        assert_eq!(loads.len(), 4);
        for (j, l) in loads.iter().enumerate() {
            let m = l.mem.expect("load");
            assert_eq!(m.stride, 32);
            assert_eq!(m.offset, 8 * j as i64);
        }
    }

    #[test]
    fn unroll_carried_distances() {
        // s_i uses s_{i-1}: in a 3x unroll copy 0 must use copy 2 of the
        // previous new iteration (distance 1); copies 1,2 use same-iteration
        // copies 0,1.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = unroll(&b.finish(), 3, &[]);
        let adds: Vec<_> = lp
            .ops()
            .iter()
            .filter(|o| o.class == OpClass::FAdd)
            .collect();
        assert_eq!(adds.len(), 3);
        assert_eq!(adds[0].operands[0].distance, 1);
        assert_eq!(adds[1].operands[0].distance, 0);
        assert_eq!(adds[2].operands[0].distance, 0);
        // Serial chain: RecMII unchanged by plain unrolling (per old
        // iteration it is amortized, but per new iteration it is 3×4/1).
        let ddg = Ddg::build(&lp, &Machine::r8000());
        assert_eq!(ddg.rec_mii(), 12);
    }

    #[test]
    fn interleave_breaks_reduction() {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        let lp = b.finish();
        let m = Machine::r8000();
        assert_eq!(Ddg::build(&lp, &m).rec_mii(), 4);
        let (il, n) = interleave_reduction(&lp, 4);
        assert_eq!(n, 1);
        // 4 independent chains, each latency 4 per new iteration of work 4x:
        // RecMII stays 4 but ResMII quadruples; the chains no longer bind.
        let ddg = Ddg::build(&il, &m);
        assert_eq!(ddg.rec_mii(), 4);
        assert_eq!(il.len(), 12);
    }

    #[test]
    fn spill_inserts_store_and_reloads() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        let u = b.fadd(w, v);
        b.store(y, 0, 8, u);
        let lp = b.finish();
        let spilled = spill_to_memory(&lp, &[w]);
        assert!(spilled.validate().is_ok());
        // One extra store and one reload (single distance 0).
        assert_eq!(
            spilled
                .ops()
                .iter()
                .filter(|o| o.class == OpClass::Store)
                .count(),
            2
        );
        assert_eq!(
            spilled
                .ops()
                .iter()
                .filter(|o| o.class == OpClass::Load)
                .count(),
            2
        );
        // The fadd no longer reads w directly.
        let add = spilled
            .ops()
            .iter()
            .find(|o| o.class == OpClass::FAdd)
            .expect("fadd");
        assert!(add.operands.iter().all(|operand| operand.value != w));
    }

    #[test]
    fn spill_carried_use_loads_from_previous_slot() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let spilled = spill_to_memory(&lp, &[s1]);
        assert!(spilled.validate().is_ok());
        let reload = spilled
            .ops()
            .iter()
            .find(|o| o.class == OpClass::Load && o.mem.is_some_and(|m| m.array.0 == 1))
            .expect("reload");
        assert_eq!(reload.mem.unwrap().offset, -8);
        // The recurrence through memory must have grown RecMII:
        let ddg = Ddg::build(&spilled, &Machine::r8000());
        assert!(ddg.rec_mii() > 4);
    }

    #[test]
    fn spill_invariant_is_noop() {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(a, v);
        b.store(x, 800, 8, w);
        let lp = b.finish();
        let spilled = spill_to_memory(&lp, &[a]);
        assert_eq!(spilled, lp);
    }

    #[test]
    fn unroll_one_is_identity() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        b.store(x, 800, 8, v);
        let lp = b.finish();
        assert_eq!(unroll(&lp, 1, &[]), lp);
    }
}
