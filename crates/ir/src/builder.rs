//! Construction DSL for [`Loop`] bodies.

use crate::op::{ArrayId, ArrayInfo, Loop, MemAccess, Op, OpId, Operand, Sem, ValueId, ValueInfo};
use swp_machine::{OpClass, RegClass};

/// Handle for a loop-carried value under construction.
///
/// Create with [`LoopBuilder::carried`], use the placeholder via
/// [`Carried::value`], and close the cycle with [`LoopBuilder::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a carried value must be closed with LoopBuilder::close"]
pub struct Carried {
    placeholder: ValueId,
    class: RegClass,
}

impl Carried {
    /// The placeholder value to use inside the loop body. Uses of it are
    /// rewritten to loop-carried uses of the closing definition.
    pub fn value(&self) -> ValueId {
        self.placeholder
    }
}

/// Builder for [`Loop`] bodies.
///
/// # Examples
///
/// A dot-product reduction (one fmadd recurrence):
///
/// ```
/// use swp_ir::LoopBuilder;
/// let mut b = LoopBuilder::new("dot");
/// let x = b.array("x", 8);
/// let y = b.array("y", 8);
/// let xv = b.load(x, 0, 8);
/// let yv = b.load(y, 0, 8);
/// let s = b.carried_f("s");
/// let s1 = b.fmadd(xv, yv, s.value());
/// b.close(s, s1, 1);
/// let lp = b.finish();
/// assert_eq!(lp.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Op>,
    values: Vec<ValueInfo>,
    arrays: Vec<ArrayInfo>,
    /// Open carried placeholders: (placeholder, closing def, distance).
    pending: Vec<(ValueId, Option<(ValueId, u32)>)>,
}

impl LoopBuilder {
    /// Start building a loop with the given name.
    pub fn new(name: &str) -> LoopBuilder {
        LoopBuilder {
            name: name.to_owned(),
            ops: Vec::new(),
            values: Vec::new(),
            arrays: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Declare an array symbol with the given element size in bytes.
    pub fn array(&mut self, name: &str, elem_bytes: u32) -> ArrayId {
        self.array_aligned(name, elem_bytes, 0)
    }

    /// Declare an array with explicit base alignment relative to the
    /// 16-byte bank period (controls which bank element 0 hits).
    pub fn array_aligned(&mut self, name: &str, elem_bytes: u32, base_align: u64) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayInfo {
            name: name.to_owned(),
            elem_bytes,
            base_align,
        });
        id
    }

    /// Declare a floating-point loop invariant (live-in scalar).
    pub fn invariant_f(&mut self, name: &str) -> ValueId {
        self.invariant(name, RegClass::Float)
    }

    /// Declare an integer loop invariant.
    pub fn invariant_i(&mut self, name: &str) -> ValueId {
        self.invariant(name, RegClass::Int)
    }

    /// Declare a loop invariant of the given class.
    pub fn invariant(&mut self, name: &str, class: RegClass) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            class,
            def: None,
            name: name.to_owned(),
            literal: None,
        });
        id
    }

    /// Declare a floating-point invariant with a known constant value.
    /// Constant folding sees through these; plain invariants are opaque.
    pub fn const_f(&mut self, name: &str, value: f64) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            class: RegClass::Float,
            def: None,
            name: name.to_owned(),
            literal: Some(value.to_bits()),
        });
        id
    }

    /// Open a floating-point loop-carried value (recurrence).
    pub fn carried_f(&mut self, name: &str) -> Carried {
        self.carried(name, RegClass::Float)
    }

    /// Open an integer loop-carried value.
    pub fn carried_i(&mut self, name: &str) -> Carried {
        self.carried(name, RegClass::Int)
    }

    /// Open a loop-carried value of the given class.
    pub fn carried(&mut self, name: &str, class: RegClass) -> Carried {
        let placeholder = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            class,
            def: None,
            name: format!("{name}.carried"),
            literal: None,
        });
        self.pending.push((placeholder, None));
        Carried { placeholder, class }
    }

    /// Close a carried value: uses of the placeholder become uses of `def`
    /// at iteration `distance` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `distance` is 0, the carried value was already closed, the
    /// defining value's class differs, or `def` is an invariant.
    pub fn close(&mut self, carried: Carried, def: ValueId, distance: u32) {
        assert!(distance >= 1, "carried distance must be >= 1");
        assert_eq!(
            self.values[def.index()].class,
            carried.class,
            "carried value class mismatch"
        );
        assert!(
            self.values[def.index()].def.is_some(),
            "carried value must be closed with a defined value"
        );
        let slot = self
            .pending
            .iter_mut()
            .find(|(p, _)| *p == carried.placeholder)
            .expect("carried value belongs to this builder");
        assert!(slot.1.is_none(), "carried value closed twice");
        slot.1 = Some((def, distance));
    }

    /// Emit a load from `array` at `offset + stride*i` bytes.
    pub fn load(&mut self, array: ArrayId, offset: i64, stride: i64) -> ValueId {
        let mem = MemAccess {
            array,
            offset,
            stride,
            indirect: false,
        };
        self.push_mem_load(mem, &[])
    }

    /// Emit an integer load (e.g. of an index array).
    pub fn load_i(&mut self, array: ArrayId, offset: i64, stride: i64) -> ValueId {
        let mem = MemAccess {
            array,
            offset,
            stride,
            indirect: false,
        };
        let ops: Vec<Operand> = Vec::new();
        self.push(
            OpClass::Load,
            Sem::Load,
            Some(RegClass::Int),
            ops,
            Some(mem),
        )
    }

    /// Emit an indirect load `array[idx]` where `idx` is a loop value.
    pub fn load_indirect(&mut self, array: ArrayId, idx: ValueId) -> ValueId {
        let mem = MemAccess {
            array,
            offset: 0,
            stride: 0,
            indirect: true,
        };
        self.push_mem_load(mem, &[Operand::now(idx)])
    }

    fn push_mem_load(&mut self, mem: MemAccess, extra: &[Operand]) -> ValueId {
        self.push(
            OpClass::Load,
            Sem::Load,
            Some(RegClass::Float),
            extra.to_vec(),
            Some(mem),
        )
    }

    /// Emit a store of `value` to `array` at `offset + stride*i` bytes.
    pub fn store(&mut self, array: ArrayId, offset: i64, stride: i64, value: ValueId) {
        let mem = MemAccess {
            array,
            offset,
            stride,
            indirect: false,
        };
        self.push_void(
            OpClass::Store,
            Sem::Store,
            vec![Operand::now(value)],
            Some(mem),
        );
    }

    /// Emit an indirect store `array[idx] = value`.
    pub fn store_indirect(&mut self, array: ArrayId, idx: ValueId, value: ValueId) {
        let mem = MemAccess {
            array,
            offset: 0,
            stride: 0,
            indirect: true,
        };
        self.push_void(
            OpClass::Store,
            Sem::Store,
            vec![Operand::now(idx), Operand::now(value)],
            Some(mem),
        );
    }

    /// Emit a floating-point add.
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(OpClass::FAdd, Sem::Add, a, b)
    }

    /// Emit a floating-point subtract (same FP-adder class as add).
    pub fn fsub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(OpClass::FAdd, Sem::Sub, a, b)
    }

    /// Emit a floating-point multiply.
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(OpClass::FMul, Sem::Mul, a, b)
    }

    /// Emit a fused multiply-add `a*b + c`.
    pub fn fmadd(&mut self, a: ValueId, b: ValueId, c: ValueId) -> ValueId {
        self.push(
            OpClass::FMadd,
            Sem::Madd,
            Some(RegClass::Float),
            vec![Operand::now(a), Operand::now(b), Operand::now(c)],
            None,
        )
    }

    /// Emit a floating-point divide (unpipelined on the R8000).
    pub fn fdiv(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(OpClass::FDiv, Sem::Div, a, b)
    }

    /// Emit a floating-point square root (unpipelined on the R8000).
    pub fn fsqrt(&mut self, a: ValueId) -> ValueId {
        self.push(
            OpClass::FSqrt,
            Sem::Sqrt,
            Some(RegClass::Float),
            vec![Operand::now(a)],
            None,
        )
    }

    /// Emit a floating-point compare producing a condition value.
    pub fn fcmp(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binary(OpClass::FCmp, Sem::Lt, a, b)
    }

    /// Emit a conditional move `cond ? a : b` (the product of
    /// if-conversion, §2.1 of the paper).
    pub fn cmov(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        self.push(
            OpClass::CMov,
            Sem::Select,
            Some(RegClass::Float),
            vec![Operand::now(cond), Operand::now(a), Operand::now(b)],
            None,
        )
    }

    /// Emit an integer ALU op (address arithmetic and the like).
    pub fn ialu(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(
            OpClass::IntAlu,
            Sem::Add,
            Some(RegClass::Int),
            vec![Operand::now(a), Operand::now(b)],
            None,
        )
    }

    /// Emit an integer multiply.
    pub fn imul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.push(
            OpClass::IntMul,
            Sem::Mul,
            Some(RegClass::Int),
            vec![Operand::now(a), Operand::now(b)],
            None,
        )
    }

    /// Convert a floating-point value to an integer index (truncating),
    /// modeled as an integer-ALU op — the move-from-FP + truncate pair a
    /// MIPS compiler emits for computed subscripts.
    pub fn ftoi(&mut self, a: ValueId) -> ValueId {
        self.push(
            OpClass::IntAlu,
            Sem::Copy,
            Some(RegClass::Int),
            vec![Operand::now(a)],
            None,
        )
    }

    /// Emit a register copy.
    pub fn copy(&mut self, a: ValueId) -> ValueId {
        let class = self.values[a.index()].class;
        self.push(
            OpClass::Copy,
            Sem::Copy,
            Some(class),
            vec![Operand::now(a)],
            None,
        )
    }

    /// Emit an op with explicit carried operands. Most callers can use the
    /// typed helpers plus [`LoopBuilder::carried`]; this is the escape hatch
    /// for unusual distances.
    pub fn raw(
        &mut self,
        class: OpClass,
        sem: Sem,
        result_class: Option<RegClass>,
        operands: Vec<Operand>,
        mem: Option<MemAccess>,
    ) -> Option<ValueId> {
        if class.has_result() {
            let rc = result_class.expect("result class required");
            Some(self.push(class, sem, Some(rc), operands, mem))
        } else {
            self.push_void(class, sem, operands, mem);
            None
        }
    }

    fn binary(&mut self, class: OpClass, sem: Sem, a: ValueId, b: ValueId) -> ValueId {
        self.push(
            class,
            sem,
            Some(RegClass::Float),
            vec![Operand::now(a), Operand::now(b)],
            None,
        )
    }

    fn push(
        &mut self,
        class: OpClass,
        sem: Sem,
        result_class: Option<RegClass>,
        operands: Vec<Operand>,
        mem: Option<MemAccess>,
    ) -> ValueId {
        let id = OpId(self.ops.len() as u32);
        let result = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            class: result_class.expect("class for result"),
            def: Some(id),
            name: format!("v{}", result.0),
            literal: None,
        });
        self.ops.push(Op {
            id,
            class,
            sem,
            result: Some(result),
            operands,
            mem,
        });
        result
    }

    fn push_void(
        &mut self,
        class: OpClass,
        sem: Sem,
        operands: Vec<Operand>,
        mem: Option<MemAccess>,
    ) {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Op {
            id,
            class,
            sem,
            result: None,
            operands,
            mem,
        });
    }

    /// Number of operations emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finish the loop: resolve carried placeholders and validate.
    ///
    /// # Panics
    ///
    /// Panics if a carried value was never closed or validation fails (these
    /// are programming errors in kernel definitions, not runtime inputs).
    pub fn finish(mut self) -> Loop {
        // Rewrite placeholder uses to carried uses of the closing def.
        for (placeholder, closing) in &self.pending {
            let (def, distance) =
                closing.unwrap_or_else(|| panic!("carried value {placeholder:?} never closed"));
            for op in &mut self.ops {
                for operand in &mut op.operands {
                    if operand.value == *placeholder {
                        *operand = Operand::carried(def, distance);
                    }
                }
            }
        }
        // Drop placeholder values from use; they remain as dead entries so
        // ValueIds stay dense (validate tolerates unused invariants).
        let lp = Loop {
            name: self.name,
            ops: self.ops,
            values: self.values,
            arrays: self.arrays,
        };
        if let Err(e) = lp.validate() {
            panic!("LoopBuilder produced invalid loop: {e}");
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_loop_validates() {
        let mut b = LoopBuilder::new("copy");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        b.store(y, 0, 8, v);
        let lp = b.finish();
        assert_eq!(lp.len(), 2);
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn carried_rewrites_to_distance_one() {
        let mut b = LoopBuilder::new("sum");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let add = &lp.ops()[1];
        assert_eq!(add.operands[0].distance, 1);
        assert_eq!(add.operands[0].value, lp.ops()[1].result.unwrap());
    }

    #[test]
    #[should_panic(expected = "never closed")]
    fn unclosed_carried_panics() {
        let mut b = LoopBuilder::new("bad");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let _ = b.fadd(s.value(), v);
        let _ = b.finish();
    }

    #[test]
    fn indirect_load_is_marked() {
        let mut b = LoopBuilder::new("gather");
        let idx = b.array("idx", 8);
        let data = b.array("data", 8);
        let i = b.load_i(idx, 0, 8);
        let _ = b.load_indirect(data, i);
        let lp = b.finish();
        assert!(lp.ops()[1].mem.unwrap().indirect);
    }

    #[test]
    fn class_counts_histogram() {
        let mut b = LoopBuilder::new("h");
        let x = b.array("x", 8);
        let a = b.load(x, 0, 8);
        let c = b.fmul(a, a);
        b.store(x, 8, 8, c);
        let lp = b.finish();
        let counts = lp.class_counts();
        assert!(counts.contains(&(swp_machine::OpClass::Load, 1)));
        assert!(counts.contains(&(swp_machine::OpClass::Store, 1)));
        assert!(counts.contains(&(swp_machine::OpClass::FMul, 1)));
    }
}
