//! Data dependence graph, SCCs, MinII, and longest-path tables.

use crate::deps::memory_deps;
use crate::op::{Loop, OpId, ValueId};
use swp_machine::Machine;

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register flow dependence through the given value.
    Data(ValueId),
    /// Memory true dependence (store → load, same location).
    MemTrue,
    /// Memory anti dependence (load → store).
    MemAnti,
    /// Memory output dependence (store → store).
    MemOutput,
}

/// A dependence arc `from → to`: `to` must issue at least `latency` cycles
/// after `from`, `distance` iterations later. At iteration interval II the
/// scheduling constraint is `t(to) − t(from) ≥ latency − II·distance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source operation.
    pub from: OpId,
    /// Destination operation.
    pub to: OpId,
    /// Minimum cycle separation (may be 0).
    pub latency: i64,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
    /// Why the arc exists.
    pub kind: DepKind,
}

/// Identifier of a strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SccId(pub u32);

impl SccId {
    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One strongly connected component of the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// Component id.
    pub id: SccId,
    /// Member operations.
    pub members: Vec<OpId>,
    /// Whether the component contains a cycle (more than one member, or a
    /// self-arc). Trivial components impose no recurrence constraint.
    pub nontrivial: bool,
}

/// The data dependence graph of a loop on a specific machine, with the
/// analyses both schedulers need: SCCs (Tarjan), ResMII, RecMII.
///
/// # Examples
///
/// ```
/// use swp_ir::{Ddg, LoopBuilder};
/// use swp_machine::Machine;
///
/// let mut b = LoopBuilder::new("sum");
/// let x = b.array("x", 8);
/// let v = b.load(x, 0, 8);
/// let s = b.carried_f("s");
/// let s1 = b.fadd(s.value(), v);
/// b.close(s, s1, 1);
/// let lp = b.finish();
/// let ddg = Ddg::build(&lp, &Machine::r8000());
/// // fadd latency 4 over a distance-1 recurrence: RecMII = 4.
/// assert_eq!(ddg.rec_mii(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Ddg {
    n: usize,
    edges: Vec<DepEdge>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    sccs: Vec<Scc>,
    scc_of: Vec<SccId>,
    res_mii: u32,
    rec_mii: u32,
}

impl Ddg {
    /// Build the graph: register flow edges from operands, memory edges
    /// from [`memory_deps`], then SCCs and MinII for `machine`.
    pub fn build(lp: &Loop, machine: &Machine) -> Ddg {
        let n = lp.len();
        let mut edges = Vec::new();
        for op in lp.ops() {
            for operand in &op.operands {
                let info = lp.value(operand.value);
                if let Some(def) = info.def {
                    let latency = i64::from(machine.latency(lp.op(def).class));
                    edges.push(DepEdge {
                        from: def,
                        to: op.id,
                        latency,
                        distance: operand.distance,
                        kind: DepKind::Data(operand.value),
                    });
                }
            }
        }
        edges.extend(memory_deps(lp));

        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.from.index()].push(i);
            preds[e.to.index()].push(i);
        }

        let (sccs, scc_of) = tarjan(n, &edges, &succs);
        let res_mii = machine.res_mii(&lp.class_counts());
        let mut ddg = Ddg {
            n,
            edges,
            succs,
            preds,
            sccs,
            scc_of,
            res_mii,
            rec_mii: 1,
        };
        ddg.rec_mii = ddg.compute_rec_mii();
        ddg
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All dependence edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Outgoing edges of an op (as indices into [`Ddg::edges`]).
    pub fn succ_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.succs[op.index()].iter().map(|&i| &self.edges[i])
    }

    /// Incoming edges of an op.
    pub fn pred_edges(&self, op: OpId) -> impl Iterator<Item = &DepEdge> {
        self.preds[op.index()].iter().map(|&i| &self.edges[i])
    }

    /// The strongly connected components, in reverse-topological order of
    /// discovery (successors before predecessors, Tarjan's output order).
    pub fn sccs(&self) -> &[Scc] {
        &self.sccs
    }

    /// Component of an op.
    pub fn scc_of(&self, op: OpId) -> SccId {
        self.scc_of[op.index()]
    }

    /// Whether an op belongs to a nontrivial (cyclic) component.
    pub fn in_cycle(&self, op: OpId) -> bool {
        self.sccs[self.scc_of(op).index()].nontrivial
    }

    /// The resource-constrained component of MinII.
    pub fn res_mii(&self) -> u32 {
        self.res_mii
    }

    /// The recurrence-constrained component of MinII.
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// `MinII = max(ResMII, RecMII)` (\[RaGl81\], §2.3 of the paper).
    pub fn min_ii(&self) -> u32 {
        self.res_mii.max(self.rec_mii)
    }

    /// Smallest II at which no dependence cycle has positive slack demand,
    /// found by binary search with positive-cycle detection.
    fn compute_rec_mii(&self) -> u32 {
        let mut lo = 1u32;
        let mut hi = self
            .edges
            .iter()
            .map(|e| e.latency.max(0) as u32)
            .sum::<u32>()
            .max(1);
        if LongestPaths::compute(self, hi).is_none() {
            // Defensive: with all latencies summed, any simple cycle with
            // distance ≥ 1 fits; this should be unreachable.
            return hi;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if LongestPaths::compute(self, mid).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// All-pairs longest paths in the II-parametric constraint graph
/// (arc weight `latency − II·distance`), used for legal-range computation
/// inside SCCs (§2.4 step 2a of the paper keeps exactly this table).
#[derive(Debug, Clone)]
pub struct LongestPaths {
    n: usize,
    /// `dist[i*n + j]` = longest path weight i→j, `i64::MIN` if unreachable.
    dist: Vec<i64>,
}

const NEG_INF: i64 = i64::MIN / 4;

impl LongestPaths {
    /// Compute the table at a given II. Returns `None` when the graph has a
    /// positive-weight cycle, i.e. the II is below RecMII (infeasible).
    pub fn compute(ddg: &Ddg, ii: u32) -> Option<LongestPaths> {
        let n = ddg.len();
        let mut dist = vec![NEG_INF; n * n];
        for e in ddg.edges() {
            let w = e.latency - i64::from(ii) * i64::from(e.distance);
            let cell = &mut dist[e.from.index() * n + e.to.index()];
            *cell = (*cell).max(w);
        }
        // Floyd–Warshall for longest paths (weights may be negative).
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik <= NEG_INF {
                    continue;
                }
                for j in 0..n {
                    let dkj = dist[k * n + j];
                    if dkj <= NEG_INF {
                        continue;
                    }
                    let cand = dik + dkj;
                    if cand > dist[i * n + j] {
                        dist[i * n + j] = cand;
                    }
                }
            }
        }
        for i in 0..n {
            if dist[i * n + i] > 0 {
                return None;
            }
        }
        Some(LongestPaths { n, dist })
    }

    /// Longest path weight from `a` to `b`, or `None` if `b` is not
    /// reachable from `a`.
    pub fn get(&self, a: OpId, b: OpId) -> Option<i64> {
        let d = self.dist[a.index() * self.n + b.index()];
        (d > NEG_INF).then_some(d)
    }
}

/// Tarjan's strongly connected components, iterative to survive big loops.
fn tarjan(n: usize, edges: &[DepEdge], succs: &[Vec<usize>]) -> (Vec<Scc>, Vec<SccId>) {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0i64;
    let mut sccs: Vec<Scc> = Vec::new();
    let mut scc_of = vec![SccId(0); n];

    // Explicit DFS stack of (node, edge cursor).
    for root in 0..n {
        if state[root].index != -1 {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                state[v].index = next_index;
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&ei) = succs[v].get(*cursor) {
                *cursor += 1;
                let w = edges[ei].to.index();
                if state[w].index == -1 {
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                // All successors done.
                if state[v].lowlink == state[v].index {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        state[w].on_stack = false;
                        scc_of[w] = SccId(sccs.len() as u32);
                        members.push(OpId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    let nontrivial =
                        members.len() > 1 || succs[v].iter().any(|&ei| edges[ei].to.index() == v);
                    sccs.push(Scc {
                        id: SccId(sccs.len() as u32),
                        members,
                        nontrivial,
                    });
                }
                dfs.pop();
                if let Some(&mut (u, _)) = dfs.last_mut() {
                    let l = state[v].lowlink;
                    state[u].lowlink = state[u].lowlink.min(l);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use swp_machine::Machine;

    fn dot_loop() -> Loop {
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        b.finish()
    }

    #[test]
    fn dot_product_recurrence() {
        let m = Machine::r8000();
        let lp = dot_loop();
        let ddg = Ddg::build(&lp, &m);
        // fmadd feeding itself at distance 1: RecMII = latency = 4.
        assert_eq!(ddg.rec_mii(), 4);
        assert_eq!(ddg.min_ii(), 4);
        let madd = lp.ops()[2].id;
        assert!(ddg.in_cycle(madd));
        assert!(!ddg.in_cycle(lp.ops()[0].id));
    }

    #[test]
    fn straightline_has_rec_mii_one() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let ddg = Ddg::build(&b.finish(), &m);
        assert_eq!(ddg.rec_mii(), 1);
        // 2 memory refs on 2 pipes and 3 ops on 4 issue slots: ResMII = 1.
        assert_eq!(ddg.res_mii(), 1);
        assert_eq!(ddg.min_ii(), 1);
    }

    #[test]
    fn longest_paths_detect_infeasible_ii() {
        let m = Machine::r8000();
        let ddg = Ddg::build(&dot_loop(), &m);
        assert!(LongestPaths::compute(&ddg, 3).is_none());
        assert!(LongestPaths::compute(&ddg, 4).is_some());
    }

    #[test]
    fn longest_paths_values() {
        let m = Machine::r8000();
        let lp = dot_loop();
        let ddg = Ddg::build(&lp, &m);
        let lps = LongestPaths::compute(&ddg, 4).expect("feasible");
        let load = lp.ops()[0].id;
        let madd = lp.ops()[2].id;
        // load → fmadd: latency 4 at distance 0.
        assert_eq!(lps.get(load, madd), Some(4));
        // fmadd self-cycle at II=4 has weight 0.
        assert_eq!(lps.get(madd, madd), Some(0));
        assert_eq!(lps.get(madd, load), None);
    }

    #[test]
    fn scc_partition_covers_all_ops() {
        let m = Machine::r8000();
        let lp = dot_loop();
        let ddg = Ddg::build(&lp, &m);
        let total: usize = ddg.sccs().iter().map(|s| s.members.len()).sum();
        assert_eq!(total, lp.len());
        for op in lp.ops() {
            let scc = &ddg.sccs()[ddg.scc_of(op.id).index()];
            assert!(scc.members.contains(&op.id));
        }
    }

    #[test]
    fn cross_iteration_chain_rec_mii() {
        // v = load; w = v + w_prev(dist 2): cycle latency 4 over distance 2
        // → RecMII = 2.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(v, s.value());
        b.close(s, s1, 2);
        let ddg = Ddg::build(&b.finish(), &m);
        assert_eq!(ddg.rec_mii(), 2);
    }
}
