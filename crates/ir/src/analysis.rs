//! Dataflow analyses over the cyclic loop IR.
//!
//! The mid-end pass pipeline ([`crate::opt`]) and the lints
//! ([`crate::lint`]) both consume the [`Analyses`] bundle computed here:
//!
//! - [`AliasSummary`] — a conservative per-array memory summary (which
//!   arrays may be stored, loaded, or addressed indirectly). This is the
//!   alias oracle that replaces the per-load whole-body rescans the old
//!   `passes::cse` performed.
//! - [`ReachingDefs`] — iteration-distance-aware reaching definitions: for
//!   every operand, the defining op, the distance in iterations, and
//!   whether the same-iteration flow respects body order (sequential
//!   execution evaluates ops in body order, so a distance-0 use of a def
//!   that appears *later* in the body reads garbage).
//! - [`Liveness`] — cross-iteration backward liveness. Roots are the
//!   stores; in a store-free loop the carried (distance ≥ 1) definitions
//!   are the roots instead, because a pure reduction's accumulator is a
//!   register live-out by contract.
//! - [`Recurrence`] — dominance-free recurrence discovery over the DDG's
//!   SCCs: self-carried definitions, their purity (no uses besides the
//!   self-use), and their cycle latency.
//! - [`ValueNumbers`] — a pessimistic value-numbering lattice: congruent
//!   values (same operation over congruent operands at equal distances,
//!   literal invariants with equal bits, stable loads of the same cell)
//!   share a number.
//!
//! Everything except the DDG-derived pieces is machine-free, so transform
//! passes that do not reason about latencies can run without a
//! [`Machine`].

use crate::ddg::Ddg;
use crate::op::{ArrayId, Loop, Op, OpId, Operand, Sem, ValueId};
use std::collections::HashMap;
use swp_machine::{Machine, OpClass};

/// Conservative memory behavior of one array over the whole loop body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayAlias {
    /// Number of affine stores to the array.
    pub direct_stores: u32,
    /// Number of affine loads from the array.
    pub direct_loads: u32,
    /// Number of indirect (data-dependent address) stores.
    pub indirect_stores: u32,
    /// Number of indirect loads.
    pub indirect_loads: u32,
}

/// Per-array alias summary for the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasSummary {
    arrays: Vec<ArrayAlias>,
}

impl AliasSummary {
    /// Summarize every memory reference in the body.
    pub fn compute(lp: &Loop) -> AliasSummary {
        let mut arrays = vec![ArrayAlias::default(); lp.arrays().len()];
        for op in lp.mem_ops() {
            let m = op.mem.expect("mem op");
            let a = &mut arrays[m.array.index()];
            match (op.class == OpClass::Store, m.indirect) {
                (true, false) => a.direct_stores += 1,
                (true, true) => a.indirect_stores += 1,
                (false, false) => a.direct_loads += 1,
                (false, true) => a.indirect_loads += 1,
            }
        }
        AliasSummary { arrays }
    }

    /// The summary row for one array.
    pub fn array(&self, a: ArrayId) -> &ArrayAlias {
        &self.arrays[a.index()]
    }

    /// Whether any store — affine or indirect — may write the array.
    pub fn may_store(&self, a: ArrayId) -> bool {
        let s = self.array(a);
        s.direct_stores > 0 || s.indirect_stores > 0
    }

    /// Whether a load always returns the same value for the same address:
    /// affine, and of an array nothing in the loop stores to. Only stable
    /// loads may be merged or carried across iterations.
    pub fn load_is_stable(&self, op: &Op) -> bool {
        op.class == OpClass::Load
            && op
                .mem
                .is_some_and(|m| !m.indirect && !self.may_store(m.array))
    }
}

/// The reaching definition of one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachingDef {
    /// Defining op; `None` for invariants (defined outside the loop).
    pub def: Option<OpId>,
    /// Iteration distance of the reaching instance.
    pub distance: u32,
    /// For distance-0 flows: whether the def precedes the user in body
    /// order. Sequential semantics execute the body in order, so a false
    /// here means the use reads a value from before the def ran.
    pub ordered: bool,
}

/// Iteration-distance-aware reaching definitions, one entry per operand of
/// every op (indexed `[op][operand]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachingDefs {
    table: Vec<Vec<ReachingDef>>,
}

impl ReachingDefs {
    /// Build the table. Each value has at most one def, so the reaching
    /// definition is determined by the operand's distance alone.
    pub fn compute(lp: &Loop) -> ReachingDefs {
        let table = lp
            .ops()
            .iter()
            .map(|op| {
                op.operands
                    .iter()
                    .map(|operand| {
                        let def = lp.value(operand.value).def;
                        let ordered =
                            operand.distance > 0 || def.is_none_or(|d| d.index() < op.id.index());
                        ReachingDef {
                            def,
                            distance: operand.distance,
                            ordered,
                        }
                    })
                    .collect()
            })
            .collect();
        ReachingDefs { table }
    }

    /// The reaching definitions of one op's operands.
    pub fn of(&self, op: OpId) -> &[ReachingDef] {
        &self.table[op.index()]
    }
}

/// Cross-iteration liveness of ops and values.
///
/// An op is live when it (transitively, through operands at any distance)
/// feeds a root. Roots are the stores; when the loop has no stores, the
/// carried definitions (values used at distance ≥ 1) serve as roots — a
/// pure reduction's accumulator is the loop's live-out. A loop with
/// neither has no observable effect at all; [`Liveness::has_roots`] is
/// false and dead-code elimination must not touch it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    live_ops: Vec<bool>,
    live_values: Vec<bool>,
    has_roots: bool,
}

impl Liveness {
    /// Compute liveness by backward closure from the roots.
    pub fn compute(lp: &Loop) -> Liveness {
        let mut live_ops = vec![false; lp.len()];
        let mut work: Vec<OpId> = lp
            .ops()
            .iter()
            .filter(|o| o.class == OpClass::Store)
            .map(|o| o.id)
            .collect();
        if work.is_empty() {
            // Store-free loop: carried defs are the live-outs.
            let carried: Vec<ValueId> = lp
                .ops()
                .iter()
                .flat_map(|o| o.operands.iter())
                .filter(|operand| operand.distance >= 1)
                .map(|operand| operand.value)
                .collect();
            work = carried.iter().filter_map(|&v| lp.value(v).def).collect();
            work.sort_unstable();
            work.dedup();
        }
        let has_roots = !work.is_empty();
        for &r in &work {
            live_ops[r.index()] = true;
        }
        while let Some(op) = work.pop() {
            for operand in &lp.op(op).operands {
                if let Some(def) = lp.value(operand.value).def {
                    if !live_ops[def.index()] {
                        live_ops[def.index()] = true;
                        work.push(def);
                    }
                }
            }
        }
        let mut live_values = vec![false; lp.values().len()];
        for op in lp.ops() {
            if !live_ops[op.id.index()] {
                continue;
            }
            if let Some(r) = op.result {
                live_values[r.index()] = true;
            }
            for operand in &op.operands {
                live_values[operand.value.index()] = true;
            }
        }
        Liveness {
            live_ops,
            live_values,
            has_roots,
        }
    }

    /// Whether the loop had any liveness roots (stores or carried defs).
    pub fn has_roots(&self) -> bool {
        self.has_roots
    }

    /// Whether an op is live.
    pub fn op_live(&self, op: OpId) -> bool {
        self.live_ops[op.index()]
    }

    /// Whether a value is defined or read by a live op.
    pub fn value_live(&self, v: ValueId) -> bool {
        self.live_values[v.index()]
    }
}

/// One self-carried recurrence: an op whose result feeds itself `distance`
/// iterations later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recurrence {
    /// The op closing the cycle.
    pub op: OpId,
    /// Its result value.
    pub value: ValueId,
    /// Operand index of the self-use.
    pub self_operand: usize,
    /// Iteration distance of the self-use.
    pub distance: u32,
    /// Uses of the value other than the self-use. Zero means the
    /// accumulator is memory-unobservable (a register live-out only).
    pub external_uses: usize,
    /// Latency of the op on the analysis machine — the cycle latency,
    /// since the cycle is the single self-arc.
    pub latency: u32,
    /// Whether the op's SCC is exactly `{op}` (the self-arc is the only
    /// cycle through it).
    pub simple: bool,
}

impl Recurrence {
    /// Whether re-association may widen this recurrence: a simple,
    /// distance-1, memory-unobservable accumulation through a commutative
    /// FP add (either operand) or the addend slot of a multiply–add.
    pub fn reassociable(&self, lp: &Loop) -> bool {
        if !self.simple || self.external_uses != 0 || self.distance != 1 {
            return false;
        }
        let op = lp.op(self.op);
        match (op.class, op.sem) {
            (OpClass::FAdd, Sem::Add) => true,
            (OpClass::FMadd, Sem::Madd) => self.self_operand == 2,
            _ => false,
        }
    }
}

/// The full analysis bundle a pass receives.
#[derive(Debug, Clone)]
pub struct Analyses {
    /// Uses of each value as `(user, operand index)` pairs.
    pub uses: Vec<Vec<(OpId, usize)>>,
    /// Per-array memory summary.
    pub alias: AliasSummary,
    /// Reaching definitions per operand.
    pub reaching: ReachingDefs,
    /// Op/value liveness.
    pub liveness: Liveness,
    /// Self-carried recurrences found in the DDG.
    pub recurrences: Vec<Recurrence>,
    /// Value-numbering classes.
    pub values: ValueNumbers,
    /// Resource-constrained MinII component on the analysis machine.
    pub res_mii: u32,
    /// Recurrence-constrained MinII component.
    pub rec_mii: u32,
    /// The machine the analyses were computed on, so passes can evaluate
    /// resource profitability of candidate rewrites.
    pub machine: Machine,
}

impl Analyses {
    /// Compute every analysis for `lp` on `machine`.
    pub fn compute(lp: &Loop, machine: &Machine) -> Analyses {
        let uses = lp.uses();
        let alias = AliasSummary::compute(lp);
        let reaching = ReachingDefs::compute(lp);
        let liveness = Liveness::compute(lp);
        let values = ValueNumbers::compute(lp, &alias);
        let (recurrences, res_mii, rec_mii) = if lp.is_empty() {
            (Vec::new(), 1, 1)
        } else {
            let ddg = Ddg::build(lp, machine);
            let recs = find_recurrences(lp, &ddg, &uses, machine);
            (recs, ddg.res_mii(), ddg.rec_mii())
        };
        Analyses {
            uses,
            alias,
            reaching,
            liveness,
            recurrences,
            values,
            res_mii,
            rec_mii,
            machine: machine.clone(),
        }
    }
}

fn find_recurrences(
    lp: &Loop,
    ddg: &Ddg,
    uses: &[Vec<(OpId, usize)>],
    machine: &Machine,
) -> Vec<Recurrence> {
    let mut recs = Vec::new();
    for op in lp.ops() {
        let Some(r) = op.result else { continue };
        let selfs: Vec<(usize, &Operand)> = op
            .operands
            .iter()
            .enumerate()
            .filter(|(_, operand)| operand.value == r && operand.distance >= 1)
            .collect();
        let &[(idx, operand)] = &selfs[..] else {
            continue;
        };
        let scc = &ddg.sccs()[ddg.scc_of(op.id).index()];
        recs.push(Recurrence {
            op: op.id,
            value: r,
            self_operand: idx,
            distance: operand.distance,
            external_uses: uses[r.index()]
                .iter()
                .filter(|&&(u, i)| !(u == op.id && i == idx))
                .count(),
            latency: machine.latency(op.class),
            simple: scc.members == [op.id],
        });
    }
    recs
}

/// Value-numbering classes: congruent values share a number. Numbers are
/// representative value indices, so they are stable across recomputation
/// on an unchanged loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueNumbers {
    vn: Vec<u32>,
}

/// Key component for one operand in a value-numbering expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum VnOperand {
    /// A literal constant (f64 bits) — congruent across distinct ids.
    Lit(u64),
    /// A value class number.
    Class(u32),
}

pub(crate) type VnKey = (OpClass, Sem, Vec<(VnOperand, u32)>, Option<(u32, i64, i64)>);

impl ValueNumbers {
    /// Pessimistic fixpoint: start with every value in its own class,
    /// repeatedly merge op results whose expression keys — operation,
    /// canonicalized operand classes with distances, and (for stable
    /// loads) the address — coincide. Loads of stored or indirectly
    /// addressed arrays keep singleton classes; invariants merge only
    /// through equal literals.
    pub fn compute(lp: &Loop, alias: &AliasSummary) -> ValueNumbers {
        let n = lp.values().len();
        let mut vn: Vec<u32> = (0..n as u32).collect();
        // Literal invariants with equal bits are congruent from the start.
        let mut lit_class: HashMap<u64, u32> = HashMap::new();
        for (i, info) in lp.values().iter().enumerate() {
            if let (true, Some(bits)) = (info.is_invariant(), info.literal) {
                let rep = *lit_class.entry(bits).or_insert(i as u32);
                vn[i] = rep;
            }
        }
        loop {
            let mut changed = false;
            let mut seen: HashMap<VnKey, u32> = HashMap::new();
            for op in lp.ops() {
                let Some(r) = op.result else { continue };
                let Some(key) = expr_key(lp, op, alias, &vn) else {
                    continue;
                };
                let rep = *seen.entry(key).or_insert(vn[r.index()]);
                if vn[r.index()] != rep {
                    vn[r.index()] = rep;
                    changed = true;
                }
            }
            if !changed {
                return ValueNumbers { vn };
            }
        }
    }

    /// The class number of a value.
    pub fn number(&self, v: ValueId) -> u32 {
        self.vn[v.index()]
    }

    /// Whether two values are congruent.
    pub fn congruent(&self, a: ValueId, b: ValueId) -> bool {
        self.vn[a.index()] == self.vn[b.index()]
    }

    /// The raw class table, for crate-internal key construction.
    pub(crate) fn raw(&self) -> &[u32] {
        &self.vn
    }
}

/// The value-numbering expression key of an op, or `None` when the op's
/// result must stay in a singleton class (stores, indirect accesses,
/// unstable loads).
pub(crate) fn expr_key(lp: &Loop, op: &Op, alias: &AliasSummary, vn: &[u32]) -> Option<VnKey> {
    if op.result.is_none() || op.class == OpClass::Store {
        return None;
    }
    if let Some(m) = op.mem {
        if m.indirect || !alias.load_is_stable(op) {
            return None;
        }
    }
    let mut operands: Vec<(VnOperand, u32)> = op
        .operands
        .iter()
        .map(|operand| {
            let info = lp.value(operand.value);
            let key = match (info.is_invariant(), info.literal) {
                (true, Some(bits)) => VnOperand::Lit(bits),
                _ => VnOperand::Class(vn[operand.value.index()]),
            };
            (key, operand.distance)
        })
        .collect();
    // Canonicalize commutative operand pairs (add/mul; madd's two factors).
    match op.sem {
        Sem::Add | Sem::Mul if operands.len() == 2 => operands.sort_unstable(),
        Sem::Madd if operands.len() == 3 => operands[..2].sort_unstable(),
        _ => {}
    }
    Some((
        op.class,
        op.sem,
        operands,
        op.mem.map(|m| (m.array.0, m.offset, m.stride)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use swp_machine::Machine;

    #[test]
    fn alias_summary_classifies_accesses() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let idx = b.array("idx", 8);
        let i = b.load_i(idx, 0, 8);
        let v = b.load(x, 0, 8);
        let g = b.load_indirect(y, i);
        let s = b.fadd(v, g);
        b.store(y, 0, 8, s);
        let lp = b.finish();
        let a = AliasSummary::compute(&lp);
        assert!(!a.may_store(x));
        assert!(a.may_store(y));
        assert_eq!(a.array(y).indirect_loads, 1);
        assert!(a.load_is_stable(&lp.ops()[1]));
        assert!(!a.load_is_stable(&lp.ops()[2]));
    }

    #[test]
    fn reaching_defs_record_distance_and_order() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let rd = ReachingDefs::compute(&lp);
        let add = lp.ops()[1].id;
        // Operand 0: the carried self-use at distance 1 (backward edge OK).
        assert_eq!(rd.of(add)[0].distance, 1);
        assert!(rd.of(add)[0].ordered);
        // Operand 1: the load, same iteration, earlier in body order.
        assert_eq!(rd.of(add)[1].def, Some(lp.ops()[0].id));
        assert!(rd.of(add)[1].ordered);
    }

    #[test]
    fn liveness_finds_transitively_dead_chain() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let d1 = b.fmul(v, v); // dead
        let _d2 = b.fadd(d1, v); // uses d1, still dead
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let live = Liveness::compute(&lp);
        assert!(live.has_roots());
        assert!(live.op_live(lp.ops()[0].id));
        assert!(!live.op_live(lp.ops()[1].id));
        assert!(!live.op_live(lp.ops()[2].id));
        assert!(live.op_live(lp.ops()[3].id));
    }

    #[test]
    fn storefree_reduction_keeps_accumulator_live() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let live = Liveness::compute(&lp);
        assert!(live.has_roots());
        assert!(lp.ops().iter().all(|o| live.op_live(o.id)));
    }

    #[test]
    fn recurrence_discovery_flags_pure_accumulator() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        let lp = b.finish();
        let an = Analyses::compute(&lp, &m);
        assert_eq!(an.recurrences.len(), 1);
        let r = an.recurrences[0];
        assert_eq!(r.self_operand, 2);
        assert_eq!(r.distance, 1);
        assert_eq!(r.external_uses, 0);
        assert!(r.simple);
        assert_eq!(r.latency, 4);
        assert_eq!(an.rec_mii, 4);
    }

    #[test]
    fn value_numbers_merge_congruent_chains() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 0, 8); // congruent with v1 (x never stored)
        let a1 = b.fmul(v1, v1);
        let a2 = b.fmul(v2, v1); // congruent with a1 through v1≡v2
        let s = b.fadd(a1, a2);
        b.store(y, 0, 8, s);
        let lp = b.finish();
        let alias = AliasSummary::compute(&lp);
        let vn = ValueNumbers::compute(&lp, &alias);
        assert!(vn.congruent(v1, v2));
        assert!(vn.congruent(a1, a2));
        assert!(!vn.congruent(v1, a1));
    }

    #[test]
    fn value_numbers_merge_equal_literals_not_plain_invariants() {
        let mut b = LoopBuilder::new("t");
        let c1 = b.const_f("c1", 2.0);
        let c2 = b.const_f("c2", 2.0);
        let i1 = b.invariant_f("i1");
        let i2 = b.invariant_f("i2");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let m1 = b.fmul(v, c1);
        let m2 = b.fmul(v, c2);
        let m3 = b.fmul(v, i1);
        let m4 = b.fmul(v, i2);
        let s1 = b.fadd(m1, m2);
        let s2 = b.fadd(m3, m4);
        let s = b.fadd(s1, s2);
        b.store(x, 800, 8, s);
        let lp = b.finish();
        let alias = AliasSummary::compute(&lp);
        let vn = ValueNumbers::compute(&lp, &alias);
        assert!(vn.congruent(c1, c2));
        assert!(vn.congruent(m1, m2));
        assert!(!vn.congruent(i1, i2));
        assert!(!vn.congruent(m3, m4));
    }

    #[test]
    fn loads_of_stored_arrays_stay_singleton() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 0, 8);
        let s = b.fadd(v1, v2);
        b.store(x, 0, 8, s);
        let lp = b.finish();
        let alias = AliasSummary::compute(&lp);
        let vn = ValueNumbers::compute(&lp, &alias);
        assert!(!vn.congruent(v1, v2));
    }
}
