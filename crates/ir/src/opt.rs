//! The self-validating mid-end pass pipeline.
//!
//! A fixed-point [`PassManager`] runs the §2.1-style pre-pipelining
//! transformations over a [`Loop`], each pass a `fn(&mut Loop, &Analyses)
//! -> bool` consuming the dataflow bundle of [`crate::analysis`]:
//!
//! | pass       | effect                                                |
//! |------------|-------------------------------------------------------|
//! | `fold`     | constant folding over literal invariants              |
//! | `simplify` | exact algebraic rewrites (×1.0, select-same, copy-prop, multiply–add fusion) |
//! | `strength` | division by a power-of-two literal → multiplication   |
//! | `gvn`      | global value numbering (subsumes classical CSE)       |
//! | `dce`      | dead-op elimination from cross-iteration liveness     |
//! | `reassoc`  | recurrence re-association: widen a pure accumulator's self-distance to break RecMII |
//!
//! Every rewrite except `reassoc` is bit-exact under the functional
//! interpreter's semantics (`swp-sim`); `reassoc` changes only values that
//! never reach memory (the accumulator live-out gains interleaved partial
//! sums the epilogue must add — outside the modeled kernel), so the memory
//! image is preserved by construction.
//!
//! The pipeline is self-validating at two layers:
//!
//! - a structural auditor checks every pass application and reverts bad
//!   ones, reporting stable `SWP-P0xx` codes:
//!   - `SWP-P001` — the transformed loop fails [`Loop::validate`] (revert);
//!   - `SWP-P002` — the multiset of store descriptors changed (revert);
//!   - `SWP-P003` — the pass's changed/unchanged claim contradicts the
//!     loop diff (finding only);
//!   - `SWP-P004` — the array table changed (revert);
//!   - `SWP-P005` — differential simulation diverged (revert);
//!   - `SWP-P006` — the op count increased (revert);
//! - an optional translation validator (wired to differential simulation
//!   via `swp-sim` by `core::compile`, which owns that dependency edge)
//!   runs on the before/after pair of every applied pass.

use crate::analysis::{expr_key, AliasSummary, Analyses, ValueNumbers, VnKey};
use crate::op::{Loop, Op, OpId, Operand, Sem, ValueId, ValueInfo};
use crate::passes::{remove_ops, substitute_values};
use std::collections::HashMap;
use std::time::Instant;
use swp_machine::{Machine, OpClass};

/// How much mid-end optimization to run before scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No mid-end passes (the historical behavior).
    #[default]
    Off,
    /// Semantics-preserving cleanups only: fold, simplify, strength
    /// reduction, GVN, DCE.
    Basic,
    /// Everything, including recurrence re-association (which reassociates
    /// floating-point reductions, §2.1(3b) of the paper).
    Full,
}

impl OptLevel {
    /// Short stable name for reports and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Off => "off",
            OptLevel::Basic => "basic",
            OptLevel::Full => "full",
        }
    }
}

/// One structural-audit or validation finding from the pass pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptFinding {
    /// Stable `SWP-P0xx` code.
    pub code: &'static str,
    /// The pass being audited.
    pub pass: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// What the pipeline did to one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptOutcome {
    /// Pass names in first-execution order — every pass that *ran*,
    /// whether or not it changed anything. A deadline-truncated pipeline
    /// records fewer names than a complete one.
    pub passes_run: Vec<&'static str>,
    /// `(pass, applications)` — how many times each pass changed the loop.
    pub applications: Vec<(&'static str, u32)>,
    /// Op count before the pipeline.
    pub ops_before: usize,
    /// Op count after.
    pub ops_after: usize,
    /// RecMII before the pipeline (analysis machine).
    pub rec_mii_before: u32,
    /// RecMII after.
    pub rec_mii_after: u32,
    /// Fixpoint rounds executed.
    pub rounds: u32,
    /// Whether the deadline cut the pipeline short.
    pub truncated: bool,
    /// Pass applications undone by the auditor or the validator.
    pub reverts: u32,
    /// Structural-audit and validation findings.
    pub findings: Vec<OptFinding>,
}

impl OptOutcome {
    /// Net ops removed by the pipeline.
    pub fn ops_removed(&self) -> usize {
        self.ops_before.saturating_sub(self.ops_after)
    }

    /// Total pass applications.
    pub fn total_applications(&self) -> u32 {
        self.applications.iter().map(|&(_, n)| n).sum()
    }
}

/// A translation validator: given the loop before and after one pass
/// application, decide whether the transform preserved semantics.
pub type Validator<'a> = dyn Fn(&Loop, &Loop) -> Result<(), String> + Send + Sync + 'a;

struct Pass {
    name: &'static str,
    run: fn(&mut Loop, &Analyses) -> bool,
}

const FOLD: Pass = Pass {
    name: "fold",
    run: fold,
};
const SIMPLIFY: Pass = Pass {
    name: "simplify",
    run: simplify,
};
const STRENGTH: Pass = Pass {
    name: "strength",
    run: strength,
};
const GVN: Pass = Pass {
    name: "gvn",
    run: gvn,
};
const DCE: Pass = Pass {
    name: "dce",
    run: dce,
};
const REASSOC: Pass = Pass {
    name: "reassoc",
    run: reassoc,
};

/// Names of the passes enabled at `level`, in pipeline order.
pub fn pass_names(level: OptLevel) -> &'static [&'static str] {
    match level {
        OptLevel::Off => &[],
        OptLevel::Basic => &["fold", "simplify", "strength", "gvn", "dce"],
        OptLevel::Full => &["fold", "simplify", "strength", "gvn", "dce", "reassoc"],
    }
}

/// Run one named pass in isolation over fresh analyses; returns whether
/// it claims to have changed the loop (unknown names are a no-op). This
/// is the hook the property harness uses to check each pass
/// independently of the fixpoint driver.
pub fn run_pass(name: &str, lp: &mut Loop, machine: &Machine) -> bool {
    let passes = [FOLD, SIMPLIFY, STRENGTH, GVN, DCE, REASSOC];
    let Some(pass) = passes.iter().find(|p| p.name == name) else {
        return false;
    };
    if lp.is_empty() {
        return false;
    }
    let an = Analyses::compute(lp, machine);
    (pass.run)(lp, &an)
}

/// Fixed-point driver over the mid-end passes.
///
/// Analyses are recomputed whenever the previous pass changed the loop and
/// reused verbatim otherwise (the invalidation rule is documented in
/// DESIGN.md §10). An optional deadline truncates the pipeline between
/// passes; an optional validator translation-validates every application.
pub struct PassManager<'a> {
    level: OptLevel,
    deadline: Option<Instant>,
    validator: Option<&'a Validator<'a>>,
    max_rounds: u32,
}

impl<'a> PassManager<'a> {
    /// A pass manager at the given level, no deadline, no validator.
    pub fn new(level: OptLevel) -> PassManager<'a> {
        PassManager {
            level,
            deadline: None,
            validator: None,
            max_rounds: 8,
        }
    }

    /// Abort (between passes) once `deadline` has passed.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> PassManager<'a> {
        self.deadline = deadline;
        self
    }

    /// Translation-validate every pass application with `v`; failures
    /// revert the application and record `SWP-P005`.
    pub fn with_validator(mut self, v: &'a Validator<'a>) -> PassManager<'a> {
        self.validator = Some(v);
        self
    }

    fn passes(&self) -> &'static [Pass] {
        match self.level {
            OptLevel::Off => &[],
            OptLevel::Basic => &[FOLD, SIMPLIFY, STRENGTH, GVN, DCE],
            OptLevel::Full => &[FOLD, SIMPLIFY, STRENGTH, GVN, DCE, REASSOC],
        }
    }

    /// Run the pipeline to a fixpoint (or the deadline) on `lp`.
    pub fn run(&self, lp: &mut Loop, machine: &Machine) -> OptOutcome {
        let mut out = OptOutcome {
            ops_before: lp.len(),
            ops_after: lp.len(),
            ..OptOutcome::default()
        };
        let passes = self.passes();
        if passes.is_empty() || lp.is_empty() {
            let an = Analyses::compute(lp, machine);
            out.rec_mii_before = an.rec_mii;
            out.rec_mii_after = an.rec_mii;
            return out;
        }
        let mut an = Analyses::compute(lp, machine);
        out.rec_mii_before = an.rec_mii;
        let mut dirty = false;
        'rounds: for round in 0..self.max_rounds {
            out.rounds = round + 1;
            let mut any_change = false;
            for pass in passes {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    out.truncated = true;
                    break 'rounds;
                }
                if dirty {
                    an = Analyses::compute(lp, machine);
                    dirty = false;
                }
                if !out.passes_run.contains(&pass.name) {
                    out.passes_run.push(pass.name);
                }
                let before = lp.clone();
                let claimed = (pass.run)(lp, &an);
                match self.audit(pass.name, &before, lp, claimed, &mut out) {
                    Applied::Kept => {
                        dirty = true;
                        any_change = true;
                        match out.applications.iter_mut().find(|(n, _)| *n == pass.name) {
                            Some((_, c)) => *c += 1,
                            None => out.applications.push((pass.name, 1)),
                        }
                    }
                    Applied::Reverted => {
                        *lp = before;
                        out.reverts += 1;
                    }
                    Applied::NoChange => {}
                }
            }
            if !any_change {
                break;
            }
        }
        if dirty {
            an = Analyses::compute(lp, machine);
        }
        out.rec_mii_after = an.rec_mii;
        out.ops_after = lp.len();
        out
    }

    /// Structural audit of one pass application, plus the optional
    /// translation validator. Decides whether the application stands.
    fn audit(
        &self,
        pass: &'static str,
        before: &Loop,
        after: &Loop,
        claimed: bool,
        out: &mut OptOutcome,
    ) -> Applied {
        let differs = before != after;
        if claimed != differs {
            out.findings.push(OptFinding {
                code: "SWP-P003",
                pass,
                message: format!(
                    "pass claimed changed={claimed} but the loop {}",
                    if differs { "differs" } else { "is unchanged" }
                ),
            });
        }
        if !differs {
            return Applied::NoChange;
        }
        if let Err(e) = after.validate() {
            out.findings.push(OptFinding {
                code: "SWP-P001",
                pass,
                message: format!("transformed loop fails validation: {e}"),
            });
            return Applied::Reverted;
        }
        if store_descriptors(before) != store_descriptors(after) {
            out.findings.push(OptFinding {
                code: "SWP-P002",
                pass,
                message: "store descriptor multiset changed".to_owned(),
            });
            return Applied::Reverted;
        }
        if before.arrays() != after.arrays() {
            out.findings.push(OptFinding {
                code: "SWP-P004",
                pass,
                message: "array table changed".to_owned(),
            });
            return Applied::Reverted;
        }
        if after.len() > before.len() {
            out.findings.push(OptFinding {
                code: "SWP-P006",
                pass,
                message: format!("op count grew from {} to {}", before.len(), after.len()),
            });
            return Applied::Reverted;
        }
        if let Some(v) = self.validator {
            if let Err(e) = v(before, after) {
                out.findings.push(OptFinding {
                    code: "SWP-P005",
                    pass,
                    message: format!("differential simulation diverged: {e}"),
                });
                return Applied::Reverted;
            }
        }
        Applied::Kept
    }
}

enum Applied {
    Kept,
    Reverted,
    NoChange,
}

/// Sorted multiset of store memory descriptors — the observable write set
/// shape, which no pass may alter.
fn store_descriptors(lp: &Loop) -> Vec<(u32, i64, i64, bool)> {
    let mut v: Vec<_> = lp
        .ops()
        .iter()
        .filter(|o| o.class == OpClass::Store)
        .map(|o| {
            let m = o.mem.expect("store has mem");
            (m.array.0, m.offset, m.stride, m.indirect)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Replacement target for a value being rewritten away.
enum Repl {
    /// Uses become distance-0 reads of an invariant (constants are the
    /// same at every iteration).
    Invariant(ValueId),
    /// Uses become reads of `v` with the distance increased by `add` (the
    /// replaced op read `v` that many iterations back itself).
    Value { v: ValueId, add: u32 },
}

fn apply_repls(lp: &mut Loop, map: &HashMap<ValueId, Repl>) {
    for op in &mut lp.ops {
        for operand in &mut op.operands {
            match map.get(&operand.value) {
                Some(&Repl::Invariant(c)) => *operand = Operand::now(c),
                Some(&Repl::Value { v, add }) => {
                    *operand = Operand::carried(v, operand.distance + add);
                }
                None => {}
            }
        }
    }
}

/// Mirror of `swp_sim::interp::eval` for the non-memory semantics. The two
/// must agree bit-for-bit — differential validation of `fold` depends on
/// it (swp-ir cannot depend on swp-sim, so the table is duplicated here
/// and pinned by tests on both sides).
fn eval_const(sem: Sem, args: &[f64]) -> Option<f64> {
    Some(match sem {
        Sem::Add => args[0] + args[1],
        Sem::Sub => args[0] - args[1],
        Sem::Mul => args[0] * args[1],
        Sem::Div => {
            let d = if args[1].abs() < 1e-12 {
                1e-12
            } else {
                args[1]
            };
            args[0] / d
        }
        Sem::Sqrt => args[0].abs().sqrt(),
        Sem::Madd => args[0] * args[1] + args[2],
        Sem::Lt => f64::from(args[0] < args[1]),
        Sem::Select => {
            if args[0] != 0.0 {
                args[1]
            } else {
                args[2]
            }
        }
        Sem::Copy => args[0],
        Sem::Load | Sem::Store => return None,
    })
}

/// Constant folding: an op whose operands are all literal invariants
/// computes the same constant every iteration; replace it with a fresh
/// literal invariant.
fn fold(lp: &mut Loop, _an: &Analyses) -> bool {
    let mut repl: HashMap<ValueId, Repl> = HashMap::new();
    let mut dead: Vec<OpId> = Vec::new();
    for idx in 0..lp.ops.len() {
        let op = &lp.ops[idx];
        if op.result.is_none() || op.mem.is_some() {
            continue;
        }
        let args: Option<Vec<f64>> = op
            .operands
            .iter()
            .map(|operand| lp.values[operand.value.index()].literal_f64())
            .collect();
        let Some(args) = args else { continue };
        if args.len() != op.operands.len() || op.operands.is_empty() {
            continue;
        }
        let Some(value) = eval_const(op.sem, &args) else {
            continue;
        };
        let r = op.result.expect("checked");
        let class = lp.values[r.index()].class;
        let c = ValueId(lp.values.len() as u32);
        lp.values.push(ValueInfo {
            class,
            def: None,
            name: format!("fold.{}", lp.values[r.index()].name),
            literal: Some(value.to_bits()),
        });
        repl.insert(r, Repl::Invariant(c));
        dead.push(lp.ops[idx].id);
    }
    if dead.is_empty() {
        return false;
    }
    apply_repls(lp, &repl);
    remove_ops(lp, &dead);
    true
}

/// Exact algebraic simplification:
/// - `x · 1.0` (literal) → `x`;
/// - `select(c, a, a)` → `a`;
/// - explicit register copies propagate;
/// - a single-use multiply feeding an add fuses into a multiply–add
///   (the interpreter evaluates `Madd` as `a*b + c` with the same two
///   roundings, so fusion is bit-exact) — but only when the fusion can
///   pay in the II model: the pair sits on a cross-iteration chain, or
///   retiring one FP op lowers ResMII. A fusion that is II-neutral
///   (e.g. in a memory-bound loop) is skipped, because it changes
///   nothing the schedulers can exploit while perturbing their search.
///
/// Rewrites that are *not* exact under IEEE semantics (`x + 0.0` with a
/// negative zero, `x − x` with NaN, `x · 0.0`) are deliberately absent.
fn simplify(lp: &mut Loop, an: &Analyses) -> bool {
    let mut repl: HashMap<ValueId, Repl> = HashMap::new();
    let mut dead: Vec<OpId> = Vec::new();
    let mut fused: Vec<(OpId, Op)> = Vec::new();
    let mut fused_muls: Vec<OpId> = Vec::new();
    // Op-class histogram, kept current as fusions are accepted, so each
    // candidate is judged against the loop it would actually land in.
    let mut class_counts: HashMap<OpClass, u32> = HashMap::new();
    for op in lp.ops() {
        *class_counts.entry(op.class).or_insert(0) += 1;
    }
    for op in lp.ops() {
        let Some(r) = op.result else { continue };
        if repl.contains_key(&r) {
            continue;
        }
        match op.sem {
            Sem::Mul if op.operands.len() == 2 => {
                // x · 1.0 → x (exact for every x, including NaN and −0.0).
                let lit = |o: &Operand| lp.value(o.value).literal_f64() == Some(1.0);
                let keep = if lit(&op.operands[1]) {
                    Some(op.operands[0])
                } else if lit(&op.operands[0]) {
                    Some(op.operands[1])
                } else {
                    None
                };
                if let Some(k) = keep {
                    push_forwarding(lp, &mut repl, r, k);
                    dead.push(op.id);
                }
            }
            Sem::Select if op.operands.len() == 3 && op.operands[1] == op.operands[2] => {
                push_forwarding(lp, &mut repl, r, op.operands[1]);
                dead.push(op.id);
            }
            Sem::Copy if op.class == OpClass::Copy && op.operands.len() == 1 => {
                push_forwarding(lp, &mut repl, r, op.operands[0]);
                dead.push(op.id);
            }
            Sem::Add if op.class == OpClass::FAdd && op.operands.len() == 2 => {
                // Multiply–add fusion: add(mul(a,b), c) → madd(a, b, c)
                // when the multiply has no other use.
                let mul_at = op.operands.iter().position(|o| {
                    lp.value(o.value).def.is_some_and(|d| {
                        let m = lp.op(d);
                        m.sem == Sem::Mul
                            && m.class == OpClass::FMul
                            && an.uses[o.value.index()].len() == 1
                    })
                });
                let Some(mi) = mul_at else { continue };
                let mul_use = op.operands[mi];
                let mul_op = lp.op(lp.value(mul_use.value).def.expect("checked"));
                if fused_muls.contains(&mul_op.id) || dead.contains(&mul_op.id) {
                    continue;
                }
                // Profitability guard: fuse only where the model says it
                // can pay — on a cross-iteration chain (shortening the
                // cycle that bounds RecMII) or where retiring one FP op
                // lowers ResMII. An II-neutral fusion changes nothing the
                // schedulers can exploit and only perturbs their search.
                let on_cycle = op.operands.iter().any(|o| o.distance > 0)
                    || an.uses[r.index()]
                        .iter()
                        .any(|&(u, i)| lp.op(u).operands[i].distance > 0);
                let lowers_res = {
                    let cur: Vec<_> = class_counts.iter().map(|(&c, &n)| (c, n)).collect();
                    let mut after = class_counts.clone();
                    for c in [OpClass::FMul, OpClass::FAdd] {
                        *after.get_mut(&c).expect("ops counted") -= 1;
                    }
                    *after.entry(OpClass::FMadd).or_insert(0) += 1;
                    let aft: Vec<_> = after.iter().map(|(&c, &n)| (c, n)).collect();
                    an.machine.res_mii(&aft) < an.machine.res_mii(&cur)
                };
                if !(on_cycle || lowers_res) {
                    continue;
                }
                for c in [OpClass::FMul, OpClass::FAdd] {
                    *class_counts.get_mut(&c).expect("ops counted") -= 1;
                }
                *class_counts.entry(OpClass::FMadd).or_insert(0) += 1;
                let other = op.operands[1 - mi];
                let shift = |o: &Operand| {
                    if lp.value(o.value).is_invariant() {
                        Operand::now(o.value)
                    } else {
                        Operand::carried(o.value, o.distance + mul_use.distance)
                    }
                };
                let operands = vec![
                    shift(&mul_op.operands[0]),
                    shift(&mul_op.operands[1]),
                    other,
                ];
                fused.push((
                    op.id,
                    Op {
                        id: op.id,
                        class: OpClass::FMadd,
                        sem: Sem::Madd,
                        result: op.result,
                        operands,
                        mem: None,
                    },
                ));
                fused_muls.push(mul_op.id);
            }
            _ => {}
        }
    }
    if dead.is_empty() && fused.is_empty() {
        return false;
    }
    for (id, new_op) in fused {
        lp.ops[id.index()] = new_op;
        // The multiply is now unused; DCE collects it (possibly this
        // round's later fixpoint iteration).
    }
    if !dead.is_empty() {
        apply_repls(lp, &repl);
        remove_ops(lp, &dead);
    }
    true
}

/// Record that uses of `r` should read `k.value` instead, adjusting
/// distances (invariants pin distance to 0).
fn push_forwarding(lp: &Loop, repl: &mut HashMap<ValueId, Repl>, r: ValueId, k: Operand) {
    if repl.contains_key(&k.value) {
        // Avoid chaining onto a value being replaced in the same batch;
        // the fixpoint picks it up next round.
        return;
    }
    let entry = if lp.value(k.value).is_invariant() {
        Repl::Invariant(k.value)
    } else {
        Repl::Value {
            v: k.value,
            add: k.distance,
        }
    };
    repl.insert(r, entry);
}

/// Strength reduction: division by a power-of-two literal becomes
/// multiplication by its (exact) reciprocal. Power-of-two scaling is
/// correctly rounded to the identical result, so the rewrite is bit-exact;
/// other divisors are left alone.
fn strength(lp: &mut Loop, _an: &Analyses) -> bool {
    let mut changed = false;
    for idx in 0..lp.ops.len() {
        let op = &lp.ops[idx];
        if op.sem != Sem::Div || op.class != OpClass::FDiv || op.operands.len() != 2 {
            continue;
        }
        let Some(c) = lp.values[op.operands[1].value.index()].literal_f64() else {
            continue;
        };
        // Power of two, normal, away from the interpreter's tiny-divisor
        // clamp, with a normal reciprocal: mantissa bits all zero.
        let pow2 = c.is_normal() && c.abs() >= 1e-12 && c.to_bits() & ((1u64 << 52) - 1) == 0;
        if !pow2 {
            continue;
        }
        let recip = 1.0 / c;
        if !recip.is_normal() {
            continue;
        }
        let id = op.id;
        let result = op.result;
        let numerator = op.operands[0];
        let rc = ValueId(lp.values.len() as u32);
        lp.values.push(ValueInfo {
            class: swp_machine::RegClass::Float,
            def: None,
            name: format!("recip.{c}"),
            literal: Some(recip.to_bits()),
        });
        lp.ops[idx] = Op {
            id,
            class: OpClass::FMul,
            sem: Sem::Mul,
            result,
            operands: vec![numerator, Operand::now(rc)],
            mem: None,
        };
        changed = true;
    }
    changed
}

/// One application of global value numbering: merge ops whose expression
/// keys over the congruence classes coincide. Subsumes classical CSE
/// (identical operands are trivially congruent) and additionally merges
/// through chains of congruent values and equal literals. Loads merge only
/// when the alias summary proves the array store-free.
fn gvn(lp: &mut Loop, an: &Analyses) -> bool {
    gvn_apply(lp, &an.alias, &an.values) > 0
}

/// The GVN engine, shared by the pass and by [`crate::passes::cse`].
/// Returns the number of ops removed.
pub(crate) fn gvn_apply(lp: &mut Loop, alias: &AliasSummary, vn: &ValueNumbers) -> usize {
    let mut seen: HashMap<VnKey, ValueId> = HashMap::new();
    let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
    let mut dead: Vec<OpId> = Vec::new();
    for op in lp.ops() {
        let Some(r) = op.result else { continue };
        let Some(key) = expr_key(lp, op, alias, vn.raw()) else {
            continue;
        };
        match seen.get(&key) {
            Some(&leader) => {
                replace.insert(r, leader);
                dead.push(op.id);
            }
            None => {
                seen.insert(key, r);
            }
        }
    }
    if dead.is_empty() {
        return 0;
    }
    substitute_values(lp, &replace);
    let n = dead.len();
    remove_ops(lp, &dead);
    n
}

/// Dead-op elimination from the liveness analysis: every op that does not
/// transitively feed a store (or, in a store-free loop, a carried
/// live-out) goes away in a single application — including whole
/// transitively-dead chains.
fn dce(lp: &mut Loop, an: &Analyses) -> bool {
    if !an.liveness.has_roots() {
        // No stores and no recurrences: nothing is observable, and
        // deleting the whole body would be absurd. Leave it to the lints.
        return false;
    }
    let dead: Vec<OpId> = lp
        .ops()
        .iter()
        .filter(|o| !an.liveness.op_live(o.id))
        .map(|o| o.id)
        .collect();
    if dead.is_empty() {
        return false;
    }
    // Dead ops are only used by dead ops (backward closure), so no use
    // rewriting is needed before removal.
    remove_ops(lp, &dead);
    true
}

/// Recurrence re-association (§2.1(3b)): a *pure* accumulator — a simple
/// self-recurrence at distance 1 whose value has no other use — is widened
/// to distance `k`, splitting the serial chain into `k` interleaved
/// partial accumulations. The recurrence constraint drops from
/// `latency` to `⌈latency/k⌉`, breaking RecMII down toward ResMII. The
/// memory image is untouched (purity means the value never reaches a
/// store); the live-out contract changes to "k partials, summed in the
/// epilogue", which is the standard reduction-reassociation license.
fn reassoc(lp: &mut Loop, an: &Analyses) -> bool {
    let target = an.res_mii.max(1);
    let mut changed = false;
    for rec in &an.recurrences {
        if !rec.reassociable(lp) {
            continue;
        }
        if rec.latency <= target {
            continue; // the chain does not bind the II
        }
        // Smallest widening that stops the recurrence from binding.
        let k = rec.latency.div_ceil(target).min(4);
        if k <= 1 {
            continue;
        }
        lp.ops[rec.op.index()].operands[rec.self_operand].distance = k;
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::ddg::Ddg;
    use swp_machine::Machine;

    fn run_full(lp: &mut Loop) -> OptOutcome {
        PassManager::new(OptLevel::Full).run(lp, &Machine::r8000())
    }

    #[test]
    fn off_level_is_identity() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        b.store(x, 800, 8, w);
        let mut lp = b.finish();
        let orig = lp.clone();
        let out = PassManager::new(OptLevel::Off).run(&mut lp, &Machine::r8000());
        assert_eq!(lp, orig);
        assert_eq!(out.ops_removed(), 0);
        assert!(out.passes_run.is_empty());
    }

    #[test]
    fn fold_replaces_constant_chain() {
        let mut b = LoopBuilder::new("t");
        let c1 = b.const_f("two", 2.0);
        let c2 = b.const_f("three", 3.0);
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let c = b.fmul(c1, c2); // folds to 6.0
        let w = b.fmul(v, c);
        b.store(x, 800, 8, w);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        assert_eq!(out.ops_removed(), 1);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let mul = lp
            .ops()
            .iter()
            .find(|o| o.sem == Sem::Mul)
            .expect("surviving mul");
        let lit = mul
            .operands
            .iter()
            .find_map(|o| lp.value(o.value).literal_f64());
        assert_eq!(lit, Some(6.0));
    }

    #[test]
    fn simplify_drops_mul_by_one_and_select_same() {
        let mut b = LoopBuilder::new("t");
        let one = b.const_f("one", 1.0);
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let m = b.fmul(v, one);
        let c = b.fcmp(v, one);
        let s = b.cmov(c, m, m);
        b.store(x, 800, 8, s);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        // mul-by-one and select-same go, then the dead fcmp goes too.
        assert!(out.ops_removed() >= 3, "{out:?}");
        assert_eq!(
            lp.ops()
                .iter()
                .filter(|o| o.sem != Sem::Load && o.sem != Sem::Store)
                .count(),
            0
        );
    }

    #[test]
    fn simplify_fuses_mul_into_add_on_a_recurrence() {
        // Dot product: the add closes a carried accumulator, so fusing
        // shortens the cross-iteration chain and the guard admits it.
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let s = b.carried_f("s");
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let p = b.fmul(xv, yv);
        let acc = b.fadd(s.value(), p);
        b.close(s, acc, 1);
        b.store(y, 800, 8, acc);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        assert_eq!(out.ops_removed(), 1, "{out:?}");
        assert!(lp.ops().iter().any(|o| o.sem == Sem::Madd));
        assert!(lp.ops().iter().all(|o| o.sem != Sem::Mul));
    }

    #[test]
    fn simplify_skips_ii_neutral_fusion() {
        // saxpy on the R8000 is memory-bound (3 of 5 ops on 2 memory
        // pipes): fusing mul+add moves neither ResMII nor RecMII, so
        // the profitability guard leaves the pair alone.
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let ax = b.fmul(a, xv);
        let s = b.fadd(ax, yv);
        b.store(y, 0, 8, s);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        assert_eq!(out.total_applications(), 0, "{out:?}");
        assert!(lp.ops().iter().all(|o| o.sem != Sem::Madd));
    }

    #[test]
    fn strength_reduces_pow2_division_only() {
        let mut b = LoopBuilder::new("t");
        let c4 = b.const_f("four", 4.0);
        let c3 = b.const_f("three", 3.0);
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let d1 = b.fdiv(v, c4); // → v * 0.25
        let d2 = b.fdiv(v, c3); // stays a divide
        let s = b.fadd(d1, d2);
        b.store(x, 800, 8, s);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(
            lp.ops().iter().filter(|o| o.class == OpClass::FDiv).count(),
            1
        );
        // The power-of-two divide became a multiply by 0.25 (possibly
        // fused onward into the add by `simplify`).
        assert!(lp
            .ops()
            .iter()
            .flat_map(|o| o.operands.iter())
            .any(|o| lp.value(o.value).literal_f64() == Some(0.25)));
    }

    #[test]
    fn gvn_merges_through_congruent_operands() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 0, 8);
        let a1 = b.fmul(v1, v1);
        let a2 = b.fmul(v2, v2); // congruent with a1 only through v1≡v2
        let s = b.fadd(a1, a2);
        b.store(y, 0, 8, s);
        let mut lp = b.finish();
        let out = run_full(&mut lp);
        // One load and one mul merge away.
        assert_eq!(out.ops_removed(), 2, "{out:?}");
    }

    #[test]
    fn dce_removes_transitively_dead_chain_in_one_pass() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let d1 = b.fmul(v, v);
        let d2 = b.fadd(d1, v);
        let _d3 = b.fmul(d2, d2);
        b.store(x, 800, 8, v);
        let mut lp = b.finish();
        let an = Analyses::compute(&lp, &Machine::r8000());
        assert!(dce(&mut lp, &an));
        assert_eq!(lp.len(), 2); // load + store survive
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn reassoc_breaks_dot_product_recmii() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        let mut lp = b.finish();
        assert_eq!(Ddg::build(&lp, &m).rec_mii(), 4);
        let out = run_full(&mut lp);
        assert_eq!(out.rec_mii_before, 4);
        assert_eq!(out.rec_mii_after, 1, "{out:?}");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        // The recurrence is still a recurrence — just wider.
        let ddg = Ddg::build(&lp, &m);
        assert!(ddg.in_cycle(lp.ops()[2].id));
        assert_eq!(lp.len(), 3);
    }

    #[test]
    fn reassoc_skips_observable_accumulators() {
        // The accumulator is stored every iteration: widening it would
        // change the memory image, so the pass must not touch it.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        b.store(x, 800000, 8, s1);
        let mut lp = b.finish();
        let before_rec = Ddg::build(&lp, &m).rec_mii();
        let out = run_full(&mut lp);
        assert_eq!(out.rec_mii_after, before_rec);
        assert!(lp.ops()[1].operands.iter().any(|o| o.distance == 1));
    }

    #[test]
    fn validator_failures_revert_the_application() {
        // A validator that rejects everything: no pass application may
        // survive, and the loop must come out exactly as it went in.
        let mut b = LoopBuilder::new("t");
        let one = b.const_f("one", 1.0);
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let m = b.fmul(v, one);
        b.store(x, 800, 8, m);
        let mut lp = b.finish();
        let orig = lp.clone();
        let veto: &Validator = &|_a, _b| Err("vetoed".to_owned());
        let out = PassManager::new(OptLevel::Full)
            .with_validator(veto)
            .run(&mut lp, &Machine::r8000());
        assert_eq!(lp, orig);
        assert!(out.reverts > 0);
        assert!(out.findings.iter().all(|f| f.code == "SWP-P005"));
        assert_eq!(out.ops_removed(), 0);
    }

    #[test]
    fn expired_deadline_truncates_and_records_passes() {
        let mut b = LoopBuilder::new("t");
        let one = b.const_f("one", 1.0);
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let m = b.fmul(v, one);
        b.store(x, 800, 8, m);
        let mut lp = b.finish();
        let orig = lp.clone();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let out = PassManager::new(OptLevel::Full)
            .with_deadline(Some(past))
            .run(&mut lp, &Machine::r8000());
        assert!(out.truncated);
        assert!(out.passes_run.is_empty());
        assert_eq!(lp, orig);
    }

    #[test]
    fn pipeline_reaches_fixpoint_on_clean_loops() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let mut lp = b.finish();
        let orig = lp.clone();
        let out = run_full(&mut lp);
        assert_eq!(lp, orig);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.total_applications(), 0);
        assert_eq!(out.passes_run.len(), 6);
    }
}
