//! Loop intermediate representation for the Showdown reproduction.
//!
//! Innermost loops arrive at the software pipeliner as a flat list of
//! operations over virtual registers plus memory accesses with affine
//! addresses (`base + offset + stride * iteration`), exactly the shape the
//! MIPSpro pipeliner sees after the front-end transformations described in
//! §2.1 of the paper. This crate provides:
//!
//! - the [`Loop`] representation and [`LoopBuilder`] construction DSL,
//!   including loop-carried values (recurrences),
//! - conservative memory dependence analysis for affine and indirect
//!   accesses ([`deps`]),
//! - the data dependence graph [`Ddg`] with Tarjan SCCs, MinII
//!   (ResMII/RecMII), and per-II longest-path tables used by both
//!   schedulers,
//! - the special inner-loop optimization passes of §2.1(3): if-conversion
//!   (via the [`hir`] mini-language), recurrence interleaving,
//!   inter-iteration common memory reference elimination, and classical
//!   common subexpression elimination ([`passes`]),
//! - a dataflow framework over the cyclic IR ([`analysis`]): alias
//!   summaries, iteration-distance-aware reaching definitions,
//!   cross-iteration liveness, recurrence discovery, and value numbering,
//! - a self-validating mid-end pass pipeline ([`opt`]) running constant
//!   folding, algebraic simplification, strength reduction, GVN, dead-op
//!   elimination, and recurrence re-association in front of the
//!   schedulers, each application structurally audited (`SWP-P0xx`) and
//!   optionally translation-validated by differential simulation.
//!
//! # Examples
//!
//! Build a SAXPY-like loop and compute its MinII on the R8000:
//!
//! ```
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("saxpy");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let y = b.array("y", 8);
//! let xv = b.load(x, 0, 8);
//! let yv = b.load(y, 0, 8);
//! let ax = b.fmul(a, xv);
//! let s = b.fadd(ax, yv);
//! b.store(y, 0, 8, s);
//! let lp = b.finish();
//! let ddg = swp_ir::Ddg::build(&lp, &m);
//! assert!(ddg.min_ii() >= 2); // 3 memory refs on 2 memory pipes
//! ```

pub mod analysis;
mod builder;
mod ddg;
pub mod deps;
pub mod hir;
pub mod lint;
mod op;
pub mod opt;
pub mod passes;
mod pretty;
mod schedule;

pub use analysis::Analyses;
pub use builder::{Carried, LoopBuilder};
pub use ddg::{Ddg, DepEdge, DepKind, LongestPaths, Scc, SccId};
pub use op::{ArrayId, ArrayInfo, Loop, MemAccess, Op, OpId, Operand, Sem, ValueId, ValueInfo};
pub use opt::{OptFinding, OptLevel, OptOutcome, PassManager};
pub use schedule::{Schedule, ScheduleError};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Loop>();
        assert_send_sync::<crate::Ddg>();
    }
}
