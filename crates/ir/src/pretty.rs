//! Human-readable rendering of loops, for debugging and reports.

use crate::op::Loop;
use std::fmt;

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop {} {{", self.name)?;
        for op in &self.ops {
            write!(f, "  [{:>3}] ", op.id.0)?;
            if let Some(r) = op.result {
                write!(f, "v{} = ", r.0)?;
            }
            write!(f, "{}", op.class)?;
            for (i, operand) in op.operands.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                write!(f, "{sep}v{}", operand.value.0)?;
                if operand.distance > 0 {
                    write!(f, "@-{}", operand.distance)?;
                }
            }
            if let Some(m) = op.mem {
                let a = &self.arrays[m.array.index()];
                if m.indirect {
                    write!(f, " {}[indirect]", a.name)?;
                } else {
                    write!(f, " {}[{}{:+}]", a.name, format_stride(m.stride), m.offset)?;
                }
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

fn format_stride(stride: i64) -> String {
    format!("{stride}*i")
}

#[cfg(test)]
mod tests {
    use crate::builder::LoopBuilder;

    #[test]
    fn display_mentions_every_op() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let text = b.finish().to_string();
        assert!(text.contains("load"));
        assert!(text.contains("fadd"));
        assert!(text.contains("@-1"), "carried use rendered: {text}");
    }
}
