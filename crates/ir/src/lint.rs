//! Pre-scheduling IR lints.
//!
//! Cheap well-formedness and dead-code checks run on a [`Loop`] before
//! either pipeliner sees it. Lints carry the stable `SWP-L00x` codes of
//! the diagnostics engine (DESIGN.md §7); `swp-verify` maps them onto its
//! [`Finding`] type and `core::compile` runs them whenever verification
//! is enabled.
//!
//! - `SWP-L001` — a structural invariant of the IR is violated
//!   ([`Loop::validate`] fails); nothing downstream is trustworthy.
//! - `SWP-L002` — a dead op: by the cross-iteration liveness analysis
//!   ([`crate::analysis::Liveness`]) it never feeds anything observable,
//!   so an entire transitively-dead chain is reported in one round (the
//!   historical check only caught values with zero direct uses). Loops
//!   with no liveness roots at all fall back to the direct-use check.
//! - `SWP-L003` — the DDG has a dependence cycle of zero total iteration
//!   distance, which no II can schedule.
//! - `SWP-L004` — a carried recurrence whose values never reach memory
//!   even though the loop does store results: the closest representable
//!   analogue of an unclosed carried value (truly unclosed carried values
//!   cannot leave [`crate::LoopBuilder`], which panics in `finish`).
//!   Store-free loops are exempt — a pure reduction keeps its accumulator
//!   as a register live-out, so "never reaches memory" is its contract,
//!   not a defect.
//! - `SWP-L005` — use before def at distance 0: an op reads a value in
//!   the same iteration as a definition that appears *later* in body
//!   order, which sequential semantics would evaluate as garbage.
//!   [`crate::LoopBuilder`] cannot emit this, but hand-built or
//!   pass-transformed loops can.
//! - `SWP-L006` — a dead store: two stores write the identical affine
//!   cell each iteration and nothing in the loop ever loads the array, so
//!   the earlier store is unobservable.
//! - `SWP-L007` — an unbreakable zero-slack recurrence: the whole body is
//!   one register-only dependence cycle whose RecMII exceeds ResMII and
//!   which recurrence re-association cannot widen — no transformation
//!   available to the mid-end can lower this loop's II.

use crate::analysis::Analyses;
use crate::ddg::Ddg;
use crate::op::{Loop, OpId};
use swp_machine::{Machine, OpClass};

/// One IR lint: a stable code, a message, and the op it anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable `SWP-L00x` code.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The operation involved, if the lint is about one.
    pub op: Option<OpId>,
}

/// Run every lint over `lp`. A structural (`SWP-L001`) failure
/// short-circuits: the body cannot be analyzed further.
pub fn lint_loop(lp: &Loop, machine: &Machine) -> Vec<Lint> {
    let mut lints = Vec::new();
    if let Err(e) = lp.validate() {
        lints.push(Lint {
            code: "SWP-L001",
            message: format!("structural invariant violated: {e}"),
            op: None,
        });
        return lints;
    }
    if lp.is_empty() {
        return lints;
    }
    let an = Analyses::compute(lp, machine);

    // SWP-L002: dead ops. With liveness roots available (stores, or the
    // carried live-outs of a store-free reduction), every op the backward
    // closure misses is dead — a transitively-dead chain is reported whole
    // in one round. Without roots nothing is observable and liveness would
    // condemn the entire body, so fall back to the direct-use check.
    if an.liveness.has_roots() {
        for op in lp.ops() {
            if let Some(r) = op.result {
                if !an.liveness.op_live(op.id) {
                    let direct = an.uses[r.index()].is_empty();
                    lints.push(Lint {
                        code: "SWP-L002",
                        message: format!(
                            "op {} defines {} which {}",
                            op.id.0,
                            lp.value(r).name,
                            if direct {
                                "is never used"
                            } else {
                                "only feeds dead ops"
                            }
                        ),
                        op: Some(op.id),
                    });
                }
            }
        }
    } else {
        for op in lp.ops() {
            if let Some(r) = op.result {
                if an.uses[r.index()].is_empty() {
                    lints.push(Lint {
                        code: "SWP-L002",
                        message: format!(
                            "op {} defines {} which is never used",
                            op.id.0,
                            lp.value(r).name
                        ),
                        op: Some(op.id),
                    });
                }
            }
        }
    }

    // SWP-L003: a cycle through distance-0 arcs has no legal schedule at
    // any II (every arc demands t(to) ≥ t(from) + latency with latency ≥ 0
    // and at least one positive latency in practice).
    let ddg = Ddg::build(lp, machine);
    if let Some(op) = zero_distance_cycle(lp, &ddg) {
        lints.push(Lint {
            code: "SWP-L003",
            message: format!(
                "dependence cycle of zero iteration distance through op {} — no II can \
                 schedule it",
                op.0
            ),
            op: Some(op),
        });
    }

    // SWP-L005: a distance-0 use whose reaching definition appears later
    // in body order. Sequential execution evaluates the body in order, so
    // such a use reads the *previous* iteration's value while claiming
    // distance 0 — a builder-unreachable state that a buggy transform
    // could produce.
    for op in lp.ops() {
        for (i, rd) in an.reaching.of(op.id).iter().enumerate() {
            if !rd.ordered {
                lints.push(Lint {
                    code: "SWP-L005",
                    message: format!(
                        "op {} operand {} reads {} at distance 0 but its definition \
                         comes later in body order",
                        op.id.0,
                        i,
                        lp.value(op.operands[i].value).name
                    ),
                    op: Some(op.id),
                });
            }
        }
    }

    // SWP-L006: dead stores. Two affine stores with the identical
    // (array, offset, stride) descriptor write the same cell every
    // iteration; if nothing in the loop loads the array (directly or
    // indirectly), the earlier store in body order is unobservable.
    let alias = &an.alias;
    for (ai, info) in lp.arrays().iter().enumerate() {
        let a = crate::op::ArrayId(ai as u32);
        let row = alias.array(a);
        if row.direct_loads > 0
            || row.indirect_loads > 0
            || row.indirect_stores > 0
            || row.direct_stores < 2
        {
            continue;
        }
        let stores: Vec<&crate::op::Op> = lp
            .ops()
            .iter()
            .filter(|o| o.class == OpClass::Store && o.mem.is_some_and(|m| m.array == a))
            .collect();
        for (si, s) in stores.iter().enumerate() {
            let m = s.mem.expect("store");
            if stores[si + 1..].iter().any(|t| {
                t.mem
                    .is_some_and(|tm| tm.offset == m.offset && tm.stride == m.stride)
            }) {
                lints.push(Lint {
                    code: "SWP-L006",
                    message: format!(
                        "op {} stores {} at a cell an identical later store overwrites \
                         and nothing loads",
                        s.id.0, info.name
                    ),
                    op: Some(s.id),
                });
            }
        }
    }

    // SWP-L007: an unbreakable zero-slack recurrence. Scoped narrowly to
    // register-only loops (any memory op gives the mid-end and the
    // schedulers other levers): the entire body is one dependence cycle,
    // RecMII exceeds ResMII, and no recurrence is reassociable — the II is
    // pinned by the recurrence and nothing in the toolkit can lower it.
    let whole_body_cycle = ddg
        .sccs()
        .iter()
        .any(|s| s.nontrivial && s.members.len() == lp.len());
    if lp.mem_ops().next().is_none()
        && whole_body_cycle
        && an.rec_mii > an.res_mii
        && !an.recurrences.iter().any(|r| r.reassociable(lp))
    {
        lints.push(Lint {
            code: "SWP-L007",
            message: format!(
                "whole body is a zero-slack register recurrence pinning II at {} \
                 (ResMII {}) and no re-association applies",
                an.rec_mii, an.res_mii
            ),
            op: None,
        });
    }

    // SWP-L004: recurrences that never escape to memory. Mark every op
    // that transitively feeds a store; a non-escaping op with a carried
    // operand is a dead recurrence (its carried value is "closed" in the
    // builder sense but feeds nothing observable). Loops with no stores
    // at all are exempt: a pure reduction (alvinn's dot products, nasa7's
    // mxm) hands its accumulators to the caller as register live-outs,
    // and there is nothing in-loop its values *could* reach.
    let mut escapes = vec![false; lp.len()];
    let mut work: Vec<OpId> = lp
        .ops()
        .iter()
        .filter(|o| o.result.is_none() && o.is_mem())
        .map(|o| o.id)
        .collect();
    if work.is_empty() {
        return lints;
    }
    for &s in &work {
        escapes[s.index()] = true;
    }
    while let Some(op) = work.pop() {
        for operand in &lp.op(op).operands {
            if let Some(def) = lp.value(operand.value).def {
                if !escapes[def.index()] {
                    escapes[def.index()] = true;
                    work.push(def);
                }
            }
        }
    }
    for op in lp.ops() {
        if !escapes[op.id.index()] && op.operands.iter().any(|o| o.distance >= 1) {
            lints.push(Lint {
                code: "SWP-L004",
                message: format!(
                    "op {} carries a recurrence whose values never reach memory",
                    op.id.0
                ),
                op: Some(op.id),
            });
        }
    }
    lints
}

/// Find an op on a dependence cycle whose arcs all have distance 0, if
/// one exists (iterative three-color DFS over the distance-0 subgraph).
fn zero_distance_cycle(lp: &Loop, ddg: &Ddg) -> Option<OpId> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; lp.len()];
    for start in lp.ops() {
        if color[start.id.index()] != WHITE {
            continue;
        }
        // Stack of (node, next-successor-cursor) over distance-0 arcs.
        let mut stack: Vec<(OpId, usize)> = vec![(start.id, 0)];
        color[start.id.index()] = GRAY;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let next = ddg
                .succ_edges(node)
                .filter(|e| e.distance == 0)
                .nth(*cursor)
                .map(|e| e.to);
            *cursor += 1;
            match next {
                Some(to) if color[to.index()] == GRAY => return Some(to),
                Some(to) if color[to.index()] == WHITE => {
                    color[to.index()] = GRAY;
                    stack.push((to, 0));
                }
                Some(_) => {}
                None => {
                    color[node.index()] = BLACK;
                    stack.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    #[test]
    fn clean_loop_has_no_lints() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(x, 800, 8, w);
        let lp = b.finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }

    #[test]
    fn dead_op_is_flagged() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let _dead = b.fmul(v, v);
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        assert!(lints.iter().any(|l| l.code == "SWP-L002"), "{lints:?}");
    }

    #[test]
    fn dead_recurrence_is_flagged() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        // No store of `acc`: the reduction feeds nothing.
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        assert!(lints.iter().any(|l| l.code == "SWP-L004"), "{lints:?}");
        // A stored reduction is fine.
        let mut b = LoopBuilder::new("t2");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        b.store(x, 800, 8, acc);
        let lp = b.finish();
        assert!(lint_loop(&lp, &m).iter().all(|l| l.code != "SWP-L004"));
        // A store-free pure reduction is also fine: its accumulator is a
        // register live-out, not a dead value.
        let mut b = LoopBuilder::new("t3");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        let lp = b.finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }

    #[test]
    fn empty_loop_is_clean() {
        let m = Machine::r8000();
        let lp = LoopBuilder::new("empty").finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }

    #[test]
    fn transitively_dead_chain_is_fully_flagged_in_one_round() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let d1 = b.fmul(v, v); // feeds only d2
        let _d2 = b.fadd(d1, v); // never used
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        let dead: Vec<u32> = lints
            .iter()
            .filter(|l| l.code == "SWP-L002")
            .filter_map(|l| l.op.map(|o| o.0))
            .collect();
        // Both links of the chain, not just the tail.
        assert_eq!(dead, vec![1, 2], "{lints:?}");
    }

    #[test]
    fn use_before_def_at_distance_zero_is_flagged() {
        use crate::op::{Loop, Op, OpId, Operand, Sem, ValueId, ValueInfo};
        use swp_machine::RegClass;
        // Hand-build the builder-unreachable shape: op 0 reads op 1's
        // result at distance 0.
        let values = vec![
            ValueInfo {
                class: RegClass::Float,
                def: Some(OpId(0)),
                name: "a".into(),
                literal: None,
            },
            ValueInfo {
                class: RegClass::Float,
                def: Some(OpId(1)),
                name: "b".into(),
                literal: None,
            },
        ];
        let ops = vec![
            Op {
                id: OpId(0),
                class: OpClass::FAdd,
                sem: Sem::Add,
                result: Some(ValueId(0)),
                operands: vec![Operand::now(ValueId(1)), Operand::carried(ValueId(1), 1)],
                mem: None,
            },
            Op {
                id: OpId(1),
                class: OpClass::FAdd,
                sem: Sem::Add,
                result: Some(ValueId(1)),
                operands: vec![
                    Operand::carried(ValueId(0), 1),
                    Operand::carried(ValueId(0), 2),
                ],
                mem: None,
            },
        ];
        let lp = Loop {
            name: "ubd".into(),
            ops,
            values,
            arrays: Vec::new(),
        };
        assert_eq!(lp.validate(), Ok(()));
        let lints = lint_loop(&lp, &Machine::r8000());
        assert!(lints.iter().any(|l| l.code == "SWP-L005"), "{lints:?}");
    }

    #[test]
    fn dead_store_pair_is_flagged() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, v);
        b.store(y, 0, 8, w); // overwrites the first, y never loaded
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        let l6: Vec<_> = lints.iter().filter(|l| l.code == "SWP-L006").collect();
        assert_eq!(l6.len(), 1, "{lints:?}");
        assert_eq!(l6[0].op, Some(lp.ops()[2].id));
        // Distinct cells: clean.
        let mut b = LoopBuilder::new("t2");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        b.store(y, 0, 8, v);
        b.store(y, 8, 8, v);
        let lp = b.finish();
        assert!(lint_loop(&lp, &m).iter().all(|l| l.code != "SWP-L006"));
    }

    #[test]
    fn unbreakable_recurrence_is_flagged_only_without_levers() {
        let m = Machine::r8000();
        // A divide self-recurrence: latency 20, not reassociable, body is
        // the single-op cycle, no memory ops.
        let mut b = LoopBuilder::new("t");
        let s = b.carried_f("s");
        let inv = b.invariant_f("c");
        let s1 = b.fdiv(s.value(), inv);
        b.close(s, s1, 1);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        assert!(lints.iter().any(|l| l.code == "SWP-L007"), "{lints:?}");
        // The same shape through an FP add is reassociable: no lint.
        let mut b = LoopBuilder::new("t2");
        let s = b.carried_f("s");
        let inv = b.invariant_f("c");
        let s1 = b.fadd(s.value(), inv);
        b.close(s, s1, 1);
        let lp = b.finish();
        assert!(lint_loop(&lp, &m).iter().all(|l| l.code != "SWP-L007"));
        // Memory ops give other levers: exempt.
        let mut b = LoopBuilder::new("t3");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fdiv(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        assert!(lint_loop(&lp, &m).iter().all(|l| l.code != "SWP-L007"));
    }
}
