//! Pre-scheduling IR lints.
//!
//! Cheap well-formedness and dead-code checks run on a [`Loop`] before
//! either pipeliner sees it. Lints carry the stable `SWP-L00x` codes of
//! the diagnostics engine (DESIGN.md §7); `swp-verify` maps them onto its
//! [`Finding`] type and `core::compile` runs them whenever verification
//! is enabled.
//!
//! - `SWP-L001` — a structural invariant of the IR is violated
//!   ([`Loop::validate`] fails); nothing downstream is trustworthy.
//! - `SWP-L002` — a dead op: it defines a value nothing reads and has no
//!   memory side effect.
//! - `SWP-L003` — the DDG has a dependence cycle of zero total iteration
//!   distance, which no II can schedule.
//! - `SWP-L004` — a carried recurrence whose values never reach memory
//!   even though the loop does store results: the closest representable
//!   analogue of an unclosed carried value (truly unclosed carried values
//!   cannot leave [`crate::LoopBuilder`], which panics in `finish`).
//!   Store-free loops are exempt — a pure reduction keeps its accumulator
//!   as a register live-out, so "never reaches memory" is its contract,
//!   not a defect.

use crate::ddg::Ddg;
use crate::op::{Loop, OpId};
use swp_machine::Machine;

/// One IR lint: a stable code, a message, and the op it anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable `SWP-L00x` code.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The operation involved, if the lint is about one.
    pub op: Option<OpId>,
}

/// Run every lint over `lp`. A structural (`SWP-L001`) failure
/// short-circuits: the body cannot be analyzed further.
pub fn lint_loop(lp: &Loop, machine: &Machine) -> Vec<Lint> {
    let mut lints = Vec::new();
    if let Err(e) = lp.validate() {
        lints.push(Lint {
            code: "SWP-L001",
            message: format!("structural invariant violated: {e}"),
            op: None,
        });
        return lints;
    }
    if lp.is_empty() {
        return lints;
    }
    let uses = lp.uses();

    // SWP-L002: ops whose result nothing reads (stores have side effects
    // and no result, so they never qualify).
    for op in lp.ops() {
        if let Some(r) = op.result {
            if uses[r.index()].is_empty() {
                lints.push(Lint {
                    code: "SWP-L002",
                    message: format!(
                        "op {} defines {} which is never used",
                        op.id.0,
                        lp.value(r).name
                    ),
                    op: Some(op.id),
                });
            }
        }
    }

    // SWP-L003: a cycle through distance-0 arcs has no legal schedule at
    // any II (every arc demands t(to) ≥ t(from) + latency with latency ≥ 0
    // and at least one positive latency in practice).
    let ddg = Ddg::build(lp, machine);
    if let Some(op) = zero_distance_cycle(lp, &ddg) {
        lints.push(Lint {
            code: "SWP-L003",
            message: format!(
                "dependence cycle of zero iteration distance through op {} — no II can \
                 schedule it",
                op.0
            ),
            op: Some(op),
        });
    }

    // SWP-L004: recurrences that never escape to memory. Mark every op
    // that transitively feeds a store; a non-escaping op with a carried
    // operand is a dead recurrence (its carried value is "closed" in the
    // builder sense but feeds nothing observable). Loops with no stores
    // at all are exempt: a pure reduction (alvinn's dot products, nasa7's
    // mxm) hands its accumulators to the caller as register live-outs,
    // and there is nothing in-loop its values *could* reach.
    let mut escapes = vec![false; lp.len()];
    let mut work: Vec<OpId> = lp
        .ops()
        .iter()
        .filter(|o| o.result.is_none() && o.is_mem())
        .map(|o| o.id)
        .collect();
    if work.is_empty() {
        return lints;
    }
    for &s in &work {
        escapes[s.index()] = true;
    }
    while let Some(op) = work.pop() {
        for operand in &lp.op(op).operands {
            if let Some(def) = lp.value(operand.value).def {
                if !escapes[def.index()] {
                    escapes[def.index()] = true;
                    work.push(def);
                }
            }
        }
    }
    for op in lp.ops() {
        if !escapes[op.id.index()] && op.operands.iter().any(|o| o.distance >= 1) {
            lints.push(Lint {
                code: "SWP-L004",
                message: format!(
                    "op {} carries a recurrence whose values never reach memory",
                    op.id.0
                ),
                op: Some(op.id),
            });
        }
    }
    lints
}

/// Find an op on a dependence cycle whose arcs all have distance 0, if
/// one exists (iterative three-color DFS over the distance-0 subgraph).
fn zero_distance_cycle(lp: &Loop, ddg: &Ddg) -> Option<OpId> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; lp.len()];
    for start in lp.ops() {
        if color[start.id.index()] != WHITE {
            continue;
        }
        // Stack of (node, next-successor-cursor) over distance-0 arcs.
        let mut stack: Vec<(OpId, usize)> = vec![(start.id, 0)];
        color[start.id.index()] = GRAY;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let next = ddg
                .succ_edges(node)
                .filter(|e| e.distance == 0)
                .nth(*cursor)
                .map(|e| e.to);
            *cursor += 1;
            match next {
                Some(to) if color[to.index()] == GRAY => return Some(to),
                Some(to) if color[to.index()] == WHITE => {
                    color[to.index()] = GRAY;
                    stack.push((to, 0));
                }
                Some(_) => {}
                None => {
                    color[node.index()] = BLACK;
                    stack.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    #[test]
    fn clean_loop_has_no_lints() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(x, 800, 8, w);
        let lp = b.finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }

    #[test]
    fn dead_op_is_flagged() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let _dead = b.fmul(v, v);
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        assert!(lints.iter().any(|l| l.code == "SWP-L002"), "{lints:?}");
    }

    #[test]
    fn dead_recurrence_is_flagged() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        // No store of `acc`: the reduction feeds nothing.
        b.store(x, 800, 8, v);
        let lp = b.finish();
        let lints = lint_loop(&lp, &m);
        assert!(lints.iter().any(|l| l.code == "SWP-L004"), "{lints:?}");
        // A stored reduction is fine.
        let mut b = LoopBuilder::new("t2");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        b.store(x, 800, 8, acc);
        let lp = b.finish();
        assert!(lint_loop(&lp, &m).iter().all(|l| l.code != "SWP-L004"));
        // A store-free pure reduction is also fine: its accumulator is a
        // register live-out, not a dead value.
        let mut b = LoopBuilder::new("t3");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let acc = b.fadd(s.value(), v);
        b.close(s, acc, 1);
        let lp = b.finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }

    #[test]
    fn empty_loop_is_clean() {
        let m = Machine::r8000();
        let lp = LoopBuilder::new("empty").finish();
        assert_eq!(lint_loop(&lp, &m), Vec::new());
    }
}
