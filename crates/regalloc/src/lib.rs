//! Register allocation for modulo-scheduled loops.
//!
//! §2.6 of the paper: once a legal schedule is found, MIPSpro applies
//! *modulo renaming* (\[Lam89\]) — replicating the kernel so each overlapped
//! copy of a value gets its own register — and feeds the renamed live
//! ranges to a standard Chaitin–Briggs global register allocator. This
//! crate reproduces that pipeline:
//!
//! 1. [`live_ranges`] reads value lifetimes off a [`swp_ir::Schedule`],
//! 2. [`unroll_factor`] picks the kernel replication (modulo variable
//!    expansion),
//! 3. [`allocate`] colors the renamed cyclic live ranges per register class
//!    and either produces an [`Allocation`] or the ranked spill candidates
//!    of §2.8 (`span / references`, largest first).
//!
//! # Examples
//!
//! ```
//! use swp_ir::{Ddg, LoopBuilder, Schedule};
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("t");
//! let x = b.array("x", 8);
//! let y = b.array("y", 8);
//! let v = b.load(x, 0, 8);
//! let w = b.fadd(v, v);
//! b.store(y, 0, 8, w);
//! let lp = b.finish();
//! let s = Schedule::new(1, vec![0, 4, 8]);
//! match swp_regalloc::allocate(&lp, &s, &m) {
//!     swp_regalloc::AllocOutcome::Allocated(a) => {
//!         assert!(a.regs_used(swp_machine::RegClass::Float) >= 2);
//!     }
//!     swp_regalloc::AllocOutcome::Failed { .. } => unreachable!("tiny loop fits"),
//! }
//! ```

mod color;
mod live;

pub use color::{color, cyclic_overlap, renamed_ranges, ColorOutcome, RenamedRange};
pub use live::{invariant_pressure, live_ranges, max_live, unroll_factor, LiveRange};

use live::class_index;
use swp_ir::{Loop, Schedule, ValueId};
use swp_machine::{Machine, RegClass};

/// Maximum kernel replication before falling back from lcm to max (code
/// size guard, mirroring production-compiler practice).
pub const UNROLL_CAP: u32 = 8;

/// A successful register allocation for a modulo schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    unroll: u32,
    ii: u32,
    regs_used: [u32; 2],
    /// `(value, kernel copy) → physical register`, per class.
    assignments: Vec<(ValueId, u32, u32)>,
    invariant_regs: Vec<(ValueId, u32)>,
}

impl Allocation {
    /// Kernel replication factor chosen by modulo renaming.
    pub fn unroll(&self) -> u32 {
        self.unroll
    }

    /// The II this allocation is valid for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Registers used in a class, including invariants.
    pub fn regs_used(&self, class: RegClass) -> u32 {
        self.regs_used[class_index(class)]
    }

    /// Total registers used across classes (the paper's Figure 7 metric).
    pub fn total_regs(&self) -> u32 {
        self.regs_used.iter().sum()
    }

    /// Physical register of a value in a given kernel copy, if allocated.
    pub fn reg_of(&self, value: ValueId, copy: u32) -> Option<u32> {
        self.assignments
            .iter()
            .find(|&&(v, c, _)| v == value && c == copy)
            .map(|&(_, _, r)| r)
            .or_else(|| self.reg_of_invariant(value))
    }

    /// Physical register of an invariant.
    pub fn reg_of_invariant(&self, value: ValueId) -> Option<u32> {
        self.invariant_regs
            .iter()
            .find(|&&(v, _)| v == value)
            .map(|&(_, r)| r)
    }

    /// A copy of this allocation with one `(value, kernel copy)` pair
    /// forced onto `reg` (added if absent). Fault injection for the
    /// `swp-verify` mutation tests; never used by the allocator itself.
    pub fn with_assignment(&self, value: ValueId, copy: u32, reg: u32) -> Allocation {
        let mut out = self.clone();
        match out
            .assignments
            .iter_mut()
            .find(|(v, c, _)| *v == value && *c == copy)
        {
            Some(slot) => slot.2 = reg,
            None => out.assignments.push((value, copy, reg)),
        }
        out
    }
}

/// A ranked spill candidate (§2.8): larger ratio = spilled sooner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillCandidate {
    /// The value to spill.
    pub value: ValueId,
    /// `cycles spanned / references`.
    pub ratio: f64,
}

/// Result of [`allocate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AllocOutcome {
    /// The schedule fits in the machine's registers.
    Allocated(Allocation),
    /// Coloring failed in at least one class.
    Failed {
        /// All loop values ranked by spill ratio, best candidate first.
        candidates: Vec<SpillCandidate>,
    },
}

/// Allocate registers for `schedule` using modulo renaming plus
/// Chaitin–Briggs coloring.
pub fn allocate(lp: &Loop, schedule: &Schedule, machine: &Machine) -> AllocOutcome {
    let ranges = live_ranges(lp, schedule);
    let ii = schedule.ii();
    let unroll = unroll_factor(&ranges, ii, UNROLL_CAP);
    let period = i64::from(unroll) * i64::from(ii);
    let inv = invariant_pressure(lp);

    let mut assignments: Vec<(ValueId, u32, u32)> = Vec::new();
    let mut invariant_regs: Vec<(ValueId, u32)> = Vec::new();
    let mut regs_used = [0u32; 2];
    let mut failed = false;

    // Fast rejection: MaxLive is a lower bound on any coloring.
    let ml = max_live(lp, schedule);
    for class in RegClass::ALL {
        if ml[class_index(class)] > machine.allocatable(class) {
            failed = true;
        }
    }

    for class in RegClass::ALL {
        if failed {
            break;
        }
        let ci = class_index(class);
        let k_total = machine.allocatable(class);
        if inv[ci] > k_total {
            failed = true;
            continue;
        }
        let k = k_total - inv[ci];
        let renamed = renamed_ranges(&ranges, class, ii, unroll);
        match color(&renamed, k, period.max(1)) {
            ColorOutcome::Colored(colors) => {
                let used = colors
                    .iter()
                    .filter(|&&c| c != u32::MAX)
                    .max()
                    .map_or(0, |&m| m + 1);
                regs_used[ci] = used + inv[ci];
                // Invariants take the registers after the colored ones.
                let mut next_inv = used;
                let use_table = lp.uses();
                for (v, info) in lp.values().iter().enumerate() {
                    if info.class == class && info.is_invariant() && !use_table[v].is_empty() {
                        invariant_regs.push((ValueId(v as u32), next_inv));
                        next_inv += 1;
                    }
                }
                for (r, &c) in renamed.iter().zip(&colors) {
                    assignments.push((r.value, r.copy, c));
                }
            }
            ColorOutcome::Spilled(_) => failed = true,
        }
    }

    if failed {
        let mut candidates: Vec<SpillCandidate> = ranges
            .iter()
            .filter(|r| r.span() > 0)
            .map(|r| SpillCandidate {
                value: r.value,
                ratio: r.spill_ratio(),
            })
            .collect();
        candidates.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
        return AllocOutcome::Failed { candidates };
    }
    AllocOutcome::Allocated(Allocation {
        unroll,
        ii,
        regs_used,
        assignments,
        invariant_regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::{Ddg, LoopBuilder};

    #[test]
    fn small_loop_allocates() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let s = Schedule::new(1, vec![0, 4, 8]);
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
        match allocate(&lp, &s, &m) {
            AllocOutcome::Allocated(a) => {
                // load spans 4 cycles at II=1 → 5 copies; fmul likewise.
                assert!(a.unroll() >= 5);
                assert!(a.regs_used(RegClass::Float) >= 8);
                assert!(a.total_regs() >= a.regs_used(RegClass::Float));
            }
            AllocOutcome::Failed { .. } => panic!("expected success"),
        }
    }

    #[test]
    fn pressure_failure_ranks_candidates_by_ratio() {
        // A machine with almost no registers forces failure.
        let m = swp_machine::MachineBuilder::new("tiny")
            .allocatable(RegClass::Float, 2)
            .build();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(x, 800, 8);
        let w = b.fmul(v1, v2);
        let u = b.fadd(w, v1);
        b.store(y, 0, 8, u);
        let lp = b.finish();
        let s = Schedule::new(2, vec![0, 1, 4, 8, 12]);
        match allocate(&lp, &s, &m) {
            AllocOutcome::Failed { candidates } => {
                assert!(!candidates.is_empty());
                for w in candidates.windows(2) {
                    assert!(w[0].ratio >= w[1].ratio, "sorted by ratio desc");
                }
            }
            AllocOutcome::Allocated(_) => panic!("expected failure"),
        }
    }

    #[test]
    fn invariants_get_registers() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(a, v);
        b.store(x, 80000, 8, w);
        let lp = b.finish();
        let s = Schedule::new(2, vec![0, 4, 8]);
        match allocate(&lp, &s, &m) {
            AllocOutcome::Allocated(alloc) => {
                assert!(alloc.reg_of_invariant(a).is_some());
                // Invariant register is distinct from every variant register
                // (it is live across the whole period).
                let inv_reg = alloc.reg_of_invariant(a).expect("allocated");
                for copy in 0..alloc.unroll() {
                    if let Some(r) = alloc.reg_of(v, copy) {
                        assert_ne!(r, inv_reg);
                    }
                }
            }
            AllocOutcome::Failed { .. } => panic!("expected success"),
        }
    }

    #[test]
    fn allocation_is_conflict_free() {
        // Property-style check on a moderately busy loop: no two
        // simultaneously-live renamed ranges share a register.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let z = b.array("z", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(y, 0, 8);
        let s = b.fmadd(v1, v2, v1);
        let t = b.fadd(s, v2);
        b.store(z, 0, 8, t);
        let lp = b.finish();
        let sched = Schedule::new(2, vec![0, 1, 4, 8, 12]);
        let ranges = live_ranges(&lp, &sched);
        match allocate(&lp, &sched, &m) {
            AllocOutcome::Allocated(a) => {
                let unroll = a.unroll();
                let period = i64::from(unroll) * 2;
                let renamed = renamed_ranges(&ranges, RegClass::Float, 2, unroll);
                for i in 0..renamed.len() {
                    for j in (i + 1)..renamed.len() {
                        if cyclic_overlap(&renamed[i], &renamed[j], period) {
                            let ri = a.reg_of(renamed[i].value, renamed[i].copy);
                            let rj = a.reg_of(renamed[j].value, renamed[j].copy);
                            assert_ne!(ri, rj, "live ranges share a register");
                        }
                    }
                }
            }
            AllocOutcome::Failed { .. } => panic!("expected success"),
        }
    }
}
