//! Live ranges of loop values under a modulo schedule.

use swp_ir::{Loop, Schedule, ValueId};
use swp_machine::RegClass;

/// The live range of one loop-defined value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// The value.
    pub value: ValueId,
    /// Its register class.
    pub class: RegClass,
    /// Definition issue cycle.
    pub start: i64,
    /// Last consuming issue cycle (`use_time + II·distance` maximized over
    /// uses); equals `start` for dead values.
    pub end: i64,
    /// References (definition plus uses), for spill-cost ratios.
    pub refs: u32,
}

impl LiveRange {
    /// Cycles spanned (0 for a dead value).
    pub fn span(&self) -> i64 {
        self.end - self.start
    }

    /// Simultaneously-live copies needed under modulo renaming:
    /// `floor(span / II) + 1` (\[Lam89\]'s modulo variable expansion).
    pub fn copies(&self, ii: u32) -> u32 {
        (self.span() / i64::from(ii)) as u32 + 1
    }

    /// The spill-ranking ratio of §2.8: cycles spanned divided by the
    /// number of references. Larger = better spill candidate.
    pub fn spill_ratio(&self) -> f64 {
        self.span() as f64 / f64::from(self.refs.max(1))
    }
}

/// Compute live ranges for every value defined in the loop.
pub fn live_ranges(lp: &Loop, schedule: &Schedule) -> Vec<LiveRange> {
    let ii = i64::from(schedule.ii());
    let mut ranges: Vec<LiveRange> = Vec::new();
    let uses = lp.uses();
    for (v, info) in lp.values().iter().enumerate() {
        let Some(def) = info.def else { continue };
        let value = ValueId(v as u32);
        let start = schedule.time(def);
        let mut end = start;
        let mut refs = 1;
        for &(user, idx) in &uses[v] {
            let operand = lp.op(user).operands[idx];
            let t = schedule.time(user) + ii * i64::from(operand.distance);
            end = end.max(t);
            refs += 1;
        }
        ranges.push(LiveRange {
            value,
            class: info.class,
            start,
            end,
            refs,
        });
    }
    ranges
}

/// Count loop invariants per register class that are actually referenced;
/// each pins one register for the whole loop.
pub fn invariant_pressure(lp: &Loop) -> [u32; 2] {
    let mut counts = [0u32; 2];
    let uses = lp.uses();
    for (v, info) in lp.values().iter().enumerate() {
        if info.is_invariant() && !uses[v].is_empty() {
            counts[class_index(info.class)] += 1;
        }
    }
    counts
}

/// Per-class MaxLive of the modulo schedule: the maximum, over kernel rows,
/// of the number of simultaneously live values (counting overlapped copies)
/// plus invariant pressure. A quick lower bound on registers needed.
pub fn max_live(lp: &Loop, schedule: &Schedule) -> [u32; 2] {
    let ii = schedule.ii() as usize;
    let mut rows = vec![[0u32; 2]; ii];
    for r in live_ranges(lp, schedule) {
        if r.span() == 0 {
            // A dead or same-cycle value still occupies its def row.
            rows[r.start as usize % ii][class_index(r.class)] += 1;
            continue;
        }
        for c in r.start..r.end {
            rows[(c.rem_euclid(ii as i64)) as usize][class_index(r.class)] += 1;
        }
    }
    let inv = invariant_pressure(lp);
    let mut out = [0u32; 2];
    for class in 0..2 {
        out[class] = rows.iter().map(|r| r[class]).max().unwrap_or(0) + inv[class];
    }
    out
}

/// Dense index of a register class (Float = 0, Int = 1).
pub(crate) fn class_index(class: RegClass) -> usize {
    match class {
        RegClass::Float => 0,
        RegClass::Int => 1,
    }
}

/// Kernel unroll factor for modulo renaming: the least common multiple of
/// per-value copy counts, falling back to the maximum if the lcm exceeds
/// `cap` (Lam's MVE unrolls by the lcm; the fallback trades registers for
/// code size exactly as production compilers do).
pub fn unroll_factor(ranges: &[LiveRange], ii: u32, cap: u32) -> u32 {
    let mut l: u32 = 1;
    for r in ranges {
        l = lcm(l, r.copies(ii));
        if l > cap {
            return ranges.iter().map(|r| r.copies(ii)).max().unwrap_or(1);
        }
    }
    l
}

fn lcm(a: u32, b: u32) -> u32 {
    a / gcd(a, b) * b
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    #[test]
    fn range_ends_at_last_use() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let s = Schedule::new(2, vec![0, 4, 8]);
        let ranges = live_ranges(&lp, &s);
        let rv = ranges.iter().find(|r| r.start == 0).expect("load range");
        assert_eq!(rv.end, 4);
        assert_eq!(rv.refs, 3); // def + two uses by the fadd
        assert_eq!(rv.copies(2), 3);
    }

    #[test]
    fn carried_use_extends_range_by_distance() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let sched = Schedule::new(4, vec![0, 4]);
        let ranges = live_ranges(&lp, &sched);
        let rs = ranges.iter().find(|r| r.start == 4).expect("fadd range");
        // Used by itself next iteration: end = 4 + 4*1 = 8.
        assert_eq!(rs.end, 8);
        assert_eq!(rs.copies(4), 2);
    }

    #[test]
    fn invariants_counted_once_per_class() {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant_f("a");
        let n = b.invariant_i("n");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(a, v);
        let _ = b.ialu(n, n);
        b.store(x, 800, 8, w);
        let lp = b.finish();
        assert_eq!(invariant_pressure(&lp), [1, 1]);
    }

    #[test]
    fn max_live_counts_overlap() {
        // Value live 8 cycles at II=2: 4 concurrent copies in every row.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fdiv(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let s = Schedule::new(2, vec![0, 8, 22]);
        let ml = max_live(&lp, &s);
        // load live [0,8): 4 copies; fdiv live [8,22): 7 copies →
        // rows see load(4) + fdiv(7) = up to 11.
        assert!(ml[0] >= 11, "got {ml:?}");
    }

    #[test]
    fn unroll_factor_lcm_and_cap() {
        let mk = |span: i64| LiveRange {
            value: ValueId(0),
            class: RegClass::Float,
            start: 0,
            end: span,
            refs: 2,
        };
        // spans 2 and 3 at II=2 → copies 2 and 2? span2:2 copies, span3: 2
        // copies... pick spans 2 (2 copies) and 4 (3 copies): lcm 6.
        let ranges = [mk(2), mk(4)];
        assert_eq!(unroll_factor(&ranges, 2, 64), 6);
        // Cap forces max.
        assert_eq!(unroll_factor(&ranges, 2, 4), 3);
    }
}
