//! Chaitin–Briggs coloring of modulo-renamed live ranges.
//!
//! After modulo renaming the steady state is the kernel unrolled `U` times
//! (period `U·II`); each value contributes `U` renamed ranges, one per
//! kernel copy, recurring cyclically with that period. Two renamed ranges
//! interfere when their cyclic intervals overlap. The interference graph is
//! colored with the optimistic Chaitin–Briggs algorithm
//! (\[BrCoKeTo89\], \[Briggs92\]), which the paper says MIPSpro uses with minor
//! modifications (§2.6).

use crate::live::LiveRange;
use swp_ir::ValueId;
use swp_machine::RegClass;

/// One renamed (per-kernel-copy) live range in the unrolled steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamedRange {
    /// Originating value.
    pub value: ValueId,
    /// Kernel copy index in `0..unroll`.
    pub copy: u32,
    /// Register class.
    pub class: RegClass,
    /// Start cycle within the period (not reduced).
    pub start: i64,
    /// Length in cycles (0 = single-point).
    pub len: i64,
}

/// Build the renamed ranges of one class for an unrolled kernel.
pub fn renamed_ranges(
    ranges: &[LiveRange],
    class: RegClass,
    ii: u32,
    unroll: u32,
) -> Vec<RenamedRange> {
    let mut out = Vec::new();
    for r in ranges {
        if r.class != class {
            continue;
        }
        for copy in 0..unroll {
            out.push(RenamedRange {
                value: r.value,
                copy,
                class,
                start: r.start + i64::from(copy) * i64::from(ii),
                len: r.span(),
            });
        }
    }
    out
}

/// Whether two cyclic intervals of period `period` overlap. Intervals are
/// half-open `[start, start+len)`; zero-length intervals are treated as a
/// single cycle (the value must exist at its definition point).
pub fn cyclic_overlap(a: &RenamedRange, b: &RenamedRange, period: i64) -> bool {
    let la = a.len.max(1);
    let lb = b.len.max(1);
    if la >= period || lb >= period {
        return true;
    }
    let sa = a.start.rem_euclid(period);
    let sb = b.start.rem_euclid(period);
    // Overlap in cyclic arithmetic: distance from sa to sb forward < la, or
    // from sb to sa forward < lb.
    let fwd = (sb - sa).rem_euclid(period);
    fwd < la || (period - fwd) % period < lb
}

/// Outcome of coloring one register class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColorOutcome {
    /// Colors per renamed range (parallel to the input slice).
    Colored(Vec<u32>),
    /// The values whose ranges could not be colored, for spill selection.
    Spilled(Vec<ValueId>),
}

/// Color renamed ranges with `k` colors using optimistic Chaitin–Briggs.
pub fn color(ranges: &[RenamedRange], k: u32, period: i64) -> ColorOutcome {
    let n = ranges.len();
    if k == 0 {
        return if n == 0 {
            ColorOutcome::Colored(Vec::new())
        } else {
            ColorOutcome::Spilled(ranges.iter().map(|r| r.value).collect())
        };
    }
    // Interference adjacency (dense bitset-of-vec for simplicity).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if cyclic_overlap(&ranges[i], &ranges[j], period) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<usize> = Vec::with_capacity(n);

    // Simplify with optimistic spilling: when no trivially-colorable node
    // remains, push the one with the best spill metric anyway.
    for _ in 0..n {
        let pick = (0..n)
            .filter(|&i| !removed[i] && degree[i] < k as usize)
            .min_by_key(|&i| i);
        let node = match pick {
            Some(i) => i,
            None => {
                // Potential spill: highest degree relative to length.
                (0..n)
                    .filter(|&i| !removed[i])
                    .max_by(|&a, &b| {
                        let ka = degree[a] as f64 / (ranges[a].len.max(1)) as f64;
                        let kb = degree[b] as f64 / (ranges[b].len.max(1)) as f64;
                        ka.partial_cmp(&kb).expect("finite metrics")
                    })
                    .expect("nodes remain")
            }
        };
        removed[node] = true;
        stack.push(node);
        for &m in &adj[node] {
            if !removed[m] {
                degree[m] -= 1;
            }
        }
    }

    // Select phase.
    let mut colors = vec![u32::MAX; n];
    let mut spilled: Vec<ValueId> = Vec::new();
    while let Some(node) = stack.pop() {
        let mut used = vec![false; k as usize];
        for &m in &adj[node] {
            let c = colors[m];
            if c != u32::MAX {
                used[c as usize] = true;
            }
        }
        match used.iter().position(|&u| !u) {
            Some(c) => colors[node] = c as u32,
            None => {
                if !spilled.contains(&ranges[node].value) {
                    spilled.push(ranges[node].value);
                }
            }
        }
    }
    if spilled.is_empty() {
        ColorOutcome::Colored(colors)
    } else {
        ColorOutcome::Spilled(spilled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr(start: i64, len: i64) -> RenamedRange {
        RenamedRange {
            value: ValueId(0),
            copy: 0,
            class: RegClass::Float,
            start,
            len,
        }
    }

    #[test]
    fn overlap_basic() {
        assert!(cyclic_overlap(&rr(0, 4), &rr(2, 4), 10));
        assert!(!cyclic_overlap(&rr(0, 2), &rr(4, 2), 10));
    }

    #[test]
    fn overlap_wraps_around() {
        // [8, 12) mod 10 covers {8,9,0,1}; [0,2) covers {0,1}.
        assert!(cyclic_overlap(&rr(8, 4), &rr(0, 2), 10));
        // [8,10) does not reach 0.
        assert!(!cyclic_overlap(&rr(8, 2), &rr(0, 2), 10));
    }

    #[test]
    fn full_period_interferes_with_everything() {
        assert!(cyclic_overlap(&rr(0, 10), &rr(5, 1), 10));
    }

    #[test]
    fn zero_length_occupies_def_point() {
        assert!(cyclic_overlap(&rr(3, 0), &rr(3, 0), 10));
        assert!(!cyclic_overlap(&rr(3, 0), &rr(4, 0), 10));
    }

    #[test]
    fn chain_colors_with_two() {
        // Three ranges where 0-1 and 1-2 overlap but 0-2 do not: 2 colors.
        let ranges = [rr(0, 3), rr(2, 4), rr(5, 3)];
        match color(&ranges, 2, 20) {
            ColorOutcome::Colored(c) => {
                assert_ne!(c[0], c[1]);
                assert_ne!(c[1], c[2]);
            }
            other => panic!("expected colored, got {other:?}"),
        }
    }

    #[test]
    fn clique_of_three_spills_with_two_colors() {
        let mut ranges = [rr(0, 5), rr(1, 5), rr(2, 5)];
        ranges[1].value = ValueId(1);
        ranges[2].value = ValueId(2);
        match color(&ranges, 2, 20) {
            ColorOutcome::Spilled(s) => assert!(!s.is_empty()),
            other => panic!("expected spill, got {other:?}"),
        }
    }

    #[test]
    fn optimistic_coloring_succeeds_on_diamond() {
        // 4-cycle (diamond without chords) is 2-colorable even though every
        // node has degree 2 (= k), which defeats plain Chaitin.
        let period = 100;
        let mut ranges = [rr(0, 10), rr(8, 10), rr(16, 10), rr(90, 12)];
        for (i, r) in ranges.iter_mut().enumerate() {
            r.value = ValueId(i as u32);
        }
        // overlaps: 0-1, 1-2, 2-3? [16,26) vs [90,102)→ wraps to {90..99,0,1}: no.
        // Make it a cycle: 3 overlaps 0 (via wrap) and 2.
        ranges[3] = RenamedRange {
            value: ValueId(3),
            copy: 0,
            class: RegClass::Float,
            start: 94,
            len: 12, // covers 94..106 → wraps into [0,6): overlaps 0; and 94..: not 2
        };
        // Ensure 2-3 overlap by extending 2.
        ranges[2] = RenamedRange {
            value: ValueId(2),
            copy: 0,
            class: RegClass::Float,
            start: 16,
            len: 80, // 16..96 overlaps 1 and 3
        };
        match color(&ranges, 2, period) {
            ColorOutcome::Colored(c) => {
                assert_ne!(c[0], c[1]);
                assert_ne!(c[1], c[2]);
                assert_ne!(c[2], c[3]);
                assert_ne!(c[3], c[0]);
            }
            other => panic!("expected colored, got {other:?}"),
        }
    }
}
