//! The II search driver (§2.3), heuristic cascade (§2.7), register
//! allocation coupling, and exponential spilling (§2.8).

use crate::bankopt::{stall_score, PairingContext};
use crate::modsched::{schedule_at, AttemptStats};
use crate::postpass::adjust_pipestages;
use crate::priority::{priority_list, PriorityHeuristic};
use swp_ir::{passes::spill_to_memory, Ddg, Loop, Schedule};
use swp_machine::Machine;
use swp_regalloc::{allocate, AllocOutcome, Allocation};

/// Controls for the heuristic pipeliner. `Default` reproduces the paper's
/// production configuration.
#[derive(Debug, Clone)]
pub struct HeurOptions {
    /// Priority heuristics to try, in order (§2.7; default all four).
    pub heuristics: Vec<PriorityHeuristic>,
    /// Backtrack budget per scheduling attempt. §5.0 notes that "a very
    /// modest increase in the backtracking limits" equalized the single
    /// loop where ILP won; experiments sweep this.
    pub backtrack_budget: u32,
    /// Enable the §2.9 memory-bank pairing heuristics.
    pub bank_pairing: bool,
    /// `MaxII = max_ii_factor × MinII` (§2.3's compile-speed circuit
    /// breaker; the paper uses 2).
    pub max_ii_factor: u32,
    /// Enable exponential spilling on register-allocation failure (§2.8).
    pub enable_spilling: bool,
    /// Use the two-phase (exponential backoff + binary) II search; `false`
    /// falls back to plain binary search (§2.3 ablation).
    pub two_phase_search: bool,
    /// Explore same-II schedules from the other heuristics for lower
    /// predicted memory stalls (§2.9, last paragraph).
    pub explore_stalls: bool,
    /// Cooperative cancellation, polled once per placement/backtrack step
    /// (the heuristic's analogue of the ILP backend's per-pivot deadline
    /// poll). The default token is inert. Like wall-clock budgets — and
    /// unlike every other field — the token is *not* part of the schedule
    /// cache key: a cancelled search reports [`PipelineError::Cancelled`],
    /// which the cache treats as transient and never memoizes.
    pub cancel: swp_obs::CancelToken,
}

impl Default for HeurOptions {
    fn default() -> HeurOptions {
        HeurOptions {
            heuristics: PriorityHeuristic::ALL.to_vec(),
            backtrack_budget: 400,
            bank_pairing: true,
            max_ii_factor: 2,
            enable_spilling: true,
            two_phase_search: true,
            explore_stalls: true,
            cancel: swp_obs::CancelToken::never(),
        }
    }
}

impl HeurOptions {
    /// The degradation ladder's rung-2 configuration at escalation `round`
    /// (1-based): the backtrack budget quadruples per round and the MaxII
    /// circuit breaker widens by one MinII multiple per round, trading
    /// schedule quality for schedulability. Both escalations are pure work
    /// measures, so an escalated search reproduces exactly on any host.
    pub fn escalated(&self, round: u32) -> HeurOptions {
        let shift = (2 * round).min(20);
        HeurOptions {
            backtrack_budget: self.backtrack_budget.max(1).saturating_mul(1 << shift),
            max_ii_factor: self.max_ii_factor.saturating_add(round),
            ..self.clone()
        }
    }
}

/// Aggregate statistics of a pipelining run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    /// MinII of the (final, possibly spilled) loop.
    pub min_ii: u32,
    /// Scheduling attempts (heuristic × II combinations).
    pub attempts: u32,
    /// Total backtracks across attempts.
    pub backtracks: u32,
    /// Total placements across attempts.
    pub placements: u64,
    /// Values spilled to memory.
    pub spills: u32,
    /// Spill rounds taken.
    pub spill_rounds: u32,
    /// Same-cycle bank pairs in the accepted schedule's attempt.
    pub pairs_formed: u32,
    /// IIs probed during the search.
    pub iis_tried: Vec<u32>,
    /// Nanoseconds spent in register allocation, across every attempt.
    pub alloc_ns: u64,
}

/// A successfully software-pipelined loop.
#[derive(Debug, Clone)]
pub struct Pipelined {
    /// The loop actually scheduled (differs from the input when spill code
    /// was added).
    pub body: Loop,
    /// The accepted modulo schedule.
    pub schedule: Schedule,
    /// A valid register allocation for that schedule.
    pub allocation: Allocation,
    /// Which priority heuristic produced the winner.
    pub heuristic: PriorityHeuristic,
    /// Search statistics.
    pub stats: PipelineStats,
}

impl Pipelined {
    /// The achieved II.
    pub fn ii(&self) -> u32 {
        self.schedule.ii()
    }
}

/// Why pipelining failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The loop body is empty.
    EmptyLoop,
    /// No schedule + allocation was found up to MaxII (after any spilling).
    NoSchedule {
        /// The final MinII bound.
        min_ii: u32,
        /// The final MaxII bound.
        max_ii: u32,
    },
    /// The search was cancelled cooperatively (a losing portfolio racer).
    /// Whether cancellation lands before a schedule is found depends on
    /// wall clock, so this outcome is host-dependent and the schedule
    /// cache never memoizes it.
    Cancelled,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyLoop => write!(f, "cannot pipeline an empty loop"),
            PipelineError::NoSchedule { min_ii, max_ii } => {
                write!(f, "no schedule found in II range [{min_ii}, {max_ii}]")
            }
            PipelineError::Cancelled => {
                write!(f, "search cancelled (losing portfolio racer)")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One fully-validated candidate at a given II.
struct Candidate {
    schedule: Schedule,
    allocation: Allocation,
    heuristic: PriorityHeuristic,
    stats: AttemptStats,
    stall: f64,
}

enum AttemptOutcome {
    Success(Box<Candidate>),
    AllocFailed(Vec<swp_regalloc::SpillCandidate>),
    SchedFailed,
}

/// Software-pipeline a loop with the SGI-style heuristic pipeliner.
///
/// # Errors
///
/// [`PipelineError::EmptyLoop`] for empty bodies;
/// [`PipelineError::NoSchedule`] when the II search (including spill
/// retries) exhausts `MaxII`.
pub fn pipeline(
    lp: &Loop,
    machine: &Machine,
    opts: &HeurOptions,
) -> Result<Pipelined, PipelineError> {
    if lp.is_empty() {
        return Err(PipelineError::EmptyLoop);
    }
    let mut body = lp.clone();
    let mut stats = PipelineStats::default();
    let mut spill_round = 0u32;

    loop {
        let ddg = Ddg::build(&body, machine);
        let min_ii = ddg.min_ii();
        let max_ii = (min_ii * opts.max_ii_factor.max(1)).max(min_ii + 1);
        stats.min_ii = min_ii;

        let two_phase = opts.two_phase_search && spill_round == 0;
        let found = search_iis(
            &body, &ddg, machine, opts, min_ii, max_ii, two_phase, &mut stats,
        );

        match found {
            Ok(c) => {
                stats.pairs_formed = c.stats.pairs_formed;
                flush_stats(&stats);
                return Ok(Pipelined {
                    body,
                    schedule: c.schedule,
                    allocation: c.allocation,
                    heuristic: c.heuristic,
                    stats,
                });
            }
            Err(alloc_candidates) => {
                if opts.cancel.is_cancelled() {
                    flush_stats(&stats);
                    return Err(PipelineError::Cancelled);
                }
                let can_spill = opts.enable_spilling
                    && spill_round < 8
                    && alloc_candidates.as_ref().is_some_and(|c| !c.is_empty());
                match (can_spill, alloc_candidates) {
                    (true, Some(candidates)) => {
                        let n = 1usize << spill_round;
                        let chosen: Vec<_> = candidates.iter().take(n).map(|c| c.value).collect();
                        stats.spills += chosen.len() as u32;
                        stats.spill_rounds += 1;
                        spill_round += 1;
                        body = spill_to_memory(&body, &chosen);
                    }
                    _ => {
                        flush_stats(&stats);
                        return Err(PipelineError::NoSchedule { min_ii, max_ii });
                    }
                }
            }
        }
    }
}

/// Flush the search's aggregate work counters to telemetry. Called once
/// per [`pipeline`] exit (success or failure) so the disabled path costs a
/// handful of thread-local reads per compile, never per placement.
fn flush_stats(stats: &PipelineStats) {
    use swp_obs::{count, Counter};
    count(Counter::HeurAttempts, stats.attempts.into());
    count(Counter::HeurBacktracks, stats.backtracks.into());
    count(Counter::HeurPlacements, stats.placements);
    count(Counter::HeurIisTried, stats.iis_tried.len() as u64);
    count(Counter::HeurPairsFormed, stats.pairs_formed.into());
    count(Counter::HeurSpills, stats.spills.into());
    count(Counter::HeurSpillRounds, stats.spill_rounds.into());
}

/// Search the II space. `Err(None)` = scheduling failures only;
/// `Err(Some(candidates))` = at least one attempt scheduled but failed
/// register allocation (candidates from the best such attempt).
#[allow(clippy::too_many_arguments)]
fn search_iis(
    body: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    opts: &HeurOptions,
    min_ii: u32,
    max_ii: u32,
    two_phase: bool,
    stats: &mut PipelineStats,
) -> Result<Candidate, Option<Vec<swp_regalloc::SpillCandidate>>> {
    let mut alloc_failure: Option<Vec<swp_regalloc::SpillCandidate>> = None;
    let mut try_ii = |ii: u32, stats: &mut PipelineStats| -> Option<Candidate> {
        stats.iis_tried.push(ii);
        let _span = swp_obs::span("heur.attempt").with_i("ii", i64::from(ii));
        match attempt_at(body, ddg, machine, opts, ii, stats) {
            AttemptOutcome::Success(c) => Some(*c),
            AttemptOutcome::AllocFailed(cands) => {
                if alloc_failure.is_none() {
                    alloc_failure = Some(cands);
                }
                None
            }
            AttemptOutcome::SchedFailed => None,
        }
    };

    if two_phase {
        // Phase 1: exponential backoff from MinII (§2.3).
        let mut offsets = vec![0u32, 1, 2];
        let mut k = 4u32;
        while min_ii + k <= max_ii {
            offsets.push(k);
            k *= 2;
        }
        let mut last_failed: u32 = 0;
        let mut success: Option<(u32, Candidate)> = None;
        for off in offsets {
            let ii = min_ii + off;
            if ii > max_ii {
                break;
            }
            match try_ii(ii, stats) {
                Some(c) => {
                    success = Some((ii, c));
                    break;
                }
                None => last_failed = ii,
            }
        }
        let (ii_hi, cand_hi) = match success {
            Some(s) => s,
            None => return Err(alloc_failure),
        };
        if ii_hi <= min_ii + 2 {
            return Ok(cand_hi);
        }
        // Phase 2: binary search in (last_failed, ii_hi].
        let mut lo = last_failed + 1;
        let mut hi = ii_hi;
        let mut best = cand_hi;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match try_ii(mid, stats) {
                Some(c) => {
                    best = c;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        Ok(best)
    } else {
        // Plain binary search (used after spilling, §2.3): establish
        // feasibility at MaxII, then narrow.
        let mut best = match try_ii(max_ii, stats) {
            Some(c) => c,
            None => return Err(alloc_failure),
        };
        let mut lo = min_ii;
        let mut hi = max_ii;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match try_ii(mid, stats) {
                Some(c) => {
                    best = c;
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        Ok(best)
    }
}

/// Try all heuristics at one II, with register allocation and the §2.9
/// pressure feedback; pick the lowest predicted-stall success.
fn attempt_at(
    body: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    opts: &HeurOptions,
    ii: u32,
    stats: &mut PipelineStats,
) -> AttemptOutcome {
    let mut successes: Vec<Candidate> = Vec::new();
    let mut alloc_failed: Option<Vec<swp_regalloc::SpillCandidate>> = None;
    let banked = machine.bank_model().is_some();

    for &h in &opts.heuristics {
        if opts.cancel.is_cancelled() {
            break;
        }
        let order = priority_list(body, ddg, machine, h);
        // First try with full pairing, then (on alloc failure with priority
        // churn) with reduced pairing, then without.
        let mut pairing_modes = vec![opts.bank_pairing && banked];
        if opts.bank_pairing && banked {
            pairing_modes.push(false);
        }
        let mut tried_reduced = false;
        let mut mode_idx = 0;
        while mode_idx < pairing_modes.len() {
            let with_pairing = pairing_modes[mode_idx];
            let mut attempt = AttemptStats::default();
            let mut px = with_pairing.then(|| {
                let mut p = PairingContext::new(body, &order, ii);
                if tried_reduced {
                    p.reduce_requirement();
                }
                p
            });
            stats.attempts += 1;
            let times = schedule_at(
                body,
                ddg,
                machine,
                ii,
                &order,
                opts.backtrack_budget,
                px.as_mut(),
                &opts.cancel,
                &mut attempt,
            );
            stats.backtracks += attempt.backtracks;
            stats.placements += attempt.placements;
            let Some(times) = times else {
                mode_idx += 1;
                continue;
            };
            let times = adjust_pipestages(body, ddg, ii, times);
            let schedule = Schedule::new(ii, times);
            debug_assert_eq!(schedule.validate(body, ddg, machine), Ok(()));
            let (outcome, alloc_ns) =
                swp_obs::timed_ns("regalloc.attempt", || allocate(body, &schedule, machine));
            stats.alloc_ns = stats.alloc_ns.saturating_add(alloc_ns);
            match outcome {
                AllocOutcome::Allocated(allocation) => {
                    let stall = if banked {
                        stall_score(body, schedule.times(), ii, machine)
                    } else {
                        0.0
                    };
                    successes.push(Candidate {
                        schedule,
                        allocation,
                        heuristic: h,
                        stats: attempt,
                        stall,
                    });
                    break; // next heuristic
                }
                AllocOutcome::Failed { candidates } => {
                    if alloc_failed.is_none() {
                        alloc_failed = Some(candidates);
                    }
                    // §2.9: if pairing perturbed priorities and allocation
                    // failed, retry with reduced pairing before giving up
                    // on this heuristic.
                    if with_pairing && attempt.pairing_priority_changes > 0 && !tried_reduced {
                        tried_reduced = true;
                        continue; // same mode, reduced requirement
                    }
                    mode_idx += 1;
                }
            }
        }
        let exploring = opts.explore_stalls && banked;
        if !successes.is_empty() && !exploring {
            break; // first success wins when not exploring
        }
    }

    if successes.is_empty() {
        return match alloc_failed {
            Some(c) => AttemptOutcome::AllocFailed(c),
            None => AttemptOutcome::SchedFailed,
        };
    }
    let best = successes
        .into_iter()
        .min_by(|a, b| a.stall.partial_cmp(&b.stall).expect("finite stall scores"))
        .expect("nonempty");
    AttemptOutcome::Success(Box::new(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    fn saxpy() -> Loop {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        b.finish()
    }

    #[test]
    fn saxpy_pipelines_at_min_ii() {
        let m = Machine::r8000();
        let p = pipeline(&saxpy(), &m, &HeurOptions::default()).expect("pipelines");
        assert_eq!(p.ii(), 2);
        assert_eq!(p.stats.min_ii, 2);
        let ddg = Ddg::build(&p.body, &m);
        assert_eq!(p.schedule.validate(&p.body, &ddg, &m), Ok(()));
    }

    #[test]
    fn empty_loop_is_an_error() {
        let m = Machine::r8000();
        let lp = LoopBuilder::new("empty").finish();
        assert!(matches!(
            pipeline(&lp, &m, &HeurOptions::default()),
            Err(PipelineError::EmptyLoop)
        ));
    }

    #[test]
    fn reduction_achieves_rec_mii() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("dot");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fmadd(xv, yv, s.value());
        b.close(s, s1, 1);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        assert_eq!(p.ii(), 4, "RecMII of the fmadd recurrence");
    }

    #[test]
    fn divide_loop_pipelines() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("div");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.load(y, 0, 8);
        let q = b.fdiv(v, w);
        b.store(y, 0, 8, q);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default()).expect("pipelines");
        // One divide occupying 11 FP cycles: MinII ≥ 6 (11 slots / 2 pipes).
        assert!(p.ii() >= 6, "got II {}", p.ii());
    }

    #[test]
    fn single_heuristic_subset_works() {
        let m = Machine::r8000();
        for h in PriorityHeuristic::ALL {
            let opts = HeurOptions {
                heuristics: vec![h],
                ..HeurOptions::default()
            };
            let p = pipeline(&saxpy(), &m, &opts).expect("pipelines");
            assert_eq!(p.heuristic, h);
        }
    }

    #[test]
    fn spilling_rescues_tiny_register_file() {
        let m = swp_machine::MachineBuilder::new("tiny")
            .allocatable(swp_machine::RegClass::Float, 6)
            .build();
        // A loop with long chains → many overlapped live values.
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let mut acc = v;
        for _ in 0..4 {
            acc = b.fmul(acc, v);
        }
        b.store(y, 0, 8, acc);
        let lp = b.finish();
        let p = pipeline(&lp, &m, &HeurOptions::default());
        match p {
            Ok(p) => {
                // If it pipelined, spilling may have been needed.
                let ddg = Ddg::build(&p.body, &m);
                assert_eq!(p.schedule.validate(&p.body, &ddg, &m), Ok(()));
            }
            Err(e) => panic!("expected success (possibly with spills): {e}"),
        }
    }

    #[test]
    fn plain_binary_search_matches_two_phase_ii() {
        let m = Machine::r8000();
        let a = pipeline(&saxpy(), &m, &HeurOptions::default()).expect("two-phase");
        let b = pipeline(
            &saxpy(),
            &m,
            &HeurOptions {
                two_phase_search: false,
                ..HeurOptions::default()
            },
        )
        .expect("binary");
        assert_eq!(a.ii(), b.ii());
    }
}
