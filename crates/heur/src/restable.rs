//! The modulo reservation table.

use swp_machine::{Machine, OpClass};

/// Cyclic resource usage table: `ii` rows × resource classes, tracking the
/// reservations of the partially scheduled loop.
#[derive(Debug, Clone)]
pub struct ResTable {
    ii: u32,
    rows: Vec<[u32; 4]>,
    limits: [u32; 4],
}

impl ResTable {
    /// An empty table for a machine at a given II.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &Machine, ii: u32) -> ResTable {
        assert!(ii > 0, "II must be positive");
        let mut limits = [0u32; 4];
        for class in swp_machine::ResourceClass::ALL {
            limits[class.index()] = machine.units(class);
        }
        ResTable {
            ii,
            rows: vec![[0; 4]; ii as usize],
            limits,
        }
    }

    /// The table's II.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether an op of `class` fits at issue `cycle` (possibly negative).
    ///
    /// Reservations longer than the II wrap and can hit the same row more
    /// than once; their demand is aggregated per row before comparing. The
    /// common case — every reservation shorter than the II — needs no
    /// aggregation and stays allocation-free.
    pub fn fits(&self, machine: &Machine, class: OpClass, cycle: i64) -> bool {
        let reservations = machine.reservations(class);
        if reservations.iter().all(|r| r.duration <= self.ii) {
            for r in &reservations {
                for d in 0..r.duration {
                    let row = (cycle + i64::from(d)).rem_euclid(i64::from(self.ii)) as usize;
                    if self.rows[row][r.class.index()] + 1 > self.limits[r.class.index()] {
                        return false;
                    }
                }
            }
            return true;
        }
        let mut demand: Vec<[u32; 4]> = vec![[0; 4]; self.ii as usize];
        for r in &reservations {
            for d in 0..r.duration {
                let row = (cycle + i64::from(d)).rem_euclid(i64::from(self.ii)) as usize;
                demand[row][r.class.index()] += 1;
            }
        }
        for (row, dem) in demand.iter().enumerate() {
            for (c, d) in dem.iter().enumerate() {
                if *d > 0 && self.rows[row][c] + d > self.limits[c] {
                    return false;
                }
            }
        }
        true
    }

    /// Reserve the resources of an op at `cycle`.
    ///
    /// # Panics
    ///
    /// Debug-panics when called on a non-fitting placement.
    pub fn place(&mut self, machine: &Machine, class: OpClass, cycle: i64) {
        debug_assert!(self.fits(machine, class, cycle), "placing into a full row");
        for r in machine.reservations(class) {
            for d in 0..r.duration {
                let row = (cycle + i64::from(d)).rem_euclid(i64::from(self.ii)) as usize;
                self.rows[row][r.class.index()] += 1;
            }
        }
    }

    /// Release the resources of an op previously placed at `cycle`.
    pub fn remove(&mut self, machine: &Machine, class: OpClass, cycle: i64) {
        for r in machine.reservations(class) {
            for d in 0..r.duration {
                let row = (cycle + i64::from(d)).rem_euclid(i64::from(self.ii)) as usize;
                debug_assert!(
                    self.rows[row][r.class.index()] > 0,
                    "removing from empty row"
                );
                self.rows[row][r.class.index()] -= 1;
            }
        }
    }

    /// Memory references currently in a row (for bank pairing accounting).
    pub fn memory_in_row(&self, row: u32) -> u32 {
        self.rows[row as usize][swp_machine::ResourceClass::Memory.index()]
    }
}

/// Whether two op classes have identical resource requirements on this
/// machine (used by catch-point pruning rule 2 of §2.4).
pub fn identical_resources(machine: &Machine, a: OpClass, b: OpClass) -> bool {
    machine.reservations(a) == machine.reservations(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::Machine;

    #[test]
    fn fits_and_place_respect_limits() {
        let m = Machine::r8000();
        let mut t = ResTable::new(&m, 1);
        assert!(t.fits(&m, OpClass::Load, 0));
        t.place(&m, OpClass::Load, 0);
        t.place(&m, OpClass::Load, 0);
        assert!(
            !t.fits(&m, OpClass::Load, 5),
            "2 memory units exhausted in the single row"
        );
        t.remove(&m, OpClass::Load, 0);
        assert!(t.fits(&m, OpClass::Load, 0));
    }

    #[test]
    fn unpipelined_spans_rows() {
        let m = Machine::r8000();
        let mut t = ResTable::new(&m, 11);
        t.place(&m, OpClass::FDiv, 0); // occupies FP rows 0..11
        t.place(&m, OpClass::FDiv, 3); // second pipe
        assert!(
            !t.fits(&m, OpClass::FAdd, 5),
            "both FP pipes blocked everywhere"
        );
    }

    #[test]
    fn negative_cycles_wrap() {
        let m = Machine::r8000();
        let mut t = ResTable::new(&m, 4);
        t.place(&m, OpClass::Load, -1); // row 3
        t.place(&m, OpClass::Load, 3);
        assert!(!t.fits(&m, OpClass::Store, 7), "row 3 is full");
        assert!(t.fits(&m, OpClass::Store, 2));
    }

    #[test]
    fn issue_width_binds() {
        let m = Machine::r8000();
        let mut t = ResTable::new(&m, 1);
        t.place(&m, OpClass::FAdd, 0);
        t.place(&m, OpClass::FMul, 0);
        t.place(&m, OpClass::IntAlu, 0);
        t.place(&m, OpClass::IntAlu, 0);
        // 4 issue slots used; a load has a free memory unit but no slot.
        assert!(!t.fits(&m, OpClass::Load, 0));
    }
}
