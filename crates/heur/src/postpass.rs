//! The pipestage adjustment postpass (§2.5).
//!
//! The branch-and-bound scheduler only enforces dependences against
//! *already scheduled* operations, so a non-topological priority list can
//! produce "schedules" that violate cross-component precedence. A single
//! depth-first walk of the SCC condensation from the roots (stores) toward
//! predecessors repairs this: each component is moved *earlier* by
//! multiples of II until its arcs into already-visited successors hold.
//! Moving by multiples of II leaves every op's kernel row — and therefore
//! the modulo reservation table and any same-row memory pairing — intact.

use swp_ir::{Ddg, Loop};

/// Repair cross-SCC dependence violations by moving whole components
/// earlier by multiples of II, then normalize so the earliest op issues in
/// cycle `[0, II)` (again shifting only by multiples of II).
pub fn adjust_pipestages(lp: &Loop, ddg: &Ddg, ii: u32, mut times: Vec<i64>) -> Vec<i64> {
    let ii64 = i64::from(ii);
    // ddg.sccs() is in reverse topological order: successors first.
    for scc in ddg.sccs() {
        // Maximum violation of arcs from this component to visited
        // components (all cross arcs out of it — successors are earlier in
        // the order and already final).
        let mut need = 0i64;
        for &m in &scc.members {
            for e in ddg.succ_edges(m) {
                if ddg.scc_of(e.to) == scc.id {
                    continue;
                }
                let sep_needed = e.latency - ii64 * i64::from(e.distance);
                let actual = times[e.to.index()] - times[e.from.index()];
                if actual < sep_needed {
                    need = need.max(sep_needed - actual);
                }
            }
        }
        if need > 0 {
            let k = need.div_euclid(ii64) + i64::from(need % ii64 != 0);
            for &m in &scc.members {
                times[m.index()] -= k * ii64;
            }
        }
    }
    // Normalize to non-negative times, preserving rows.
    let min = times.iter().copied().min().unwrap_or(0);
    if min < 0 {
        let k = (-min).div_euclid(ii64) + i64::from((-min) % ii64 != 0);
        for t in &mut times {
            *t += k * ii64;
        }
    } else {
        let k = min.div_euclid(ii64);
        for t in &mut times {
            *t -= k * ii64;
        }
    }
    let _ = lp;
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::{Ddg, LoopBuilder, Schedule};
    use swp_machine::Machine;

    #[test]
    fn repairs_backward_placed_consumer() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        // Deliberately violated: the fadd issues before its load's result.
        let broken = vec![4, 0, 2];
        let fixed = adjust_pipestages(&lp, &ddg, 2, broken);
        let s = Schedule::new(2, fixed.clone());
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()), "fixed times: {fixed:?}");
    }

    #[test]
    fn preserves_rows() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        b.store(y, 0, 8, w);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let broken = vec![5, 0, 2];
        let ii = 3;
        let rows_before: Vec<i64> = broken.iter().map(|t: &i64| t.rem_euclid(ii)).collect();
        let fixed = adjust_pipestages(&lp, &ddg, ii as u32, broken);
        let rows_after: Vec<i64> = fixed.iter().map(|t| t.rem_euclid(ii)).collect();
        assert_eq!(rows_before, rows_after);
    }

    #[test]
    fn valid_schedule_unchanged_modulo_normalization() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        b.store(y, 0, 8, v);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let good = vec![0, 4];
        let fixed = adjust_pipestages(&lp, &ddg, 2, good.clone());
        assert_eq!(fixed, good);
    }

    #[test]
    fn chain_of_components_moves_transitively() {
        // a -> b -> c all misplaced: repairs must cascade.
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        let u = b.fadd(w, w);
        b.store(y, 0, 8, u);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let broken = vec![9, 5, 1, 0];
        let fixed = adjust_pipestages(&lp, &ddg, 2, broken);
        let s = Schedule::new(2, fixed.clone());
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()), "fixed: {fixed:?}");
    }
}
