//! Memory bank pairing heuristics (§2.9).
//!
//! The R8000 services two same-cycle memory references only when they hit
//! opposite cache banks; same-bank pairs queue in the one-entry bellows and
//! eventually stall the pipe. MIPSpro therefore tries to co-schedule
//! references *known* to be an even/odd pair whenever references must share
//! a cycle, and avoids pairing references whose relative bank is unknown.
//!
//! Bank knowledge is static: two affine references with equal strides are
//! opposite-bank in every iteration when their addresses differ by
//! 8 (mod 16) and share the same double-word alignment; same-bank when they
//! differ by 0 (mod 16). Anything else — unequal strides, indirect
//! references (mdljdp2's indirection in §4.3) — is unknown.

use crate::modsched::{AttemptStats, PairingView};
use swp_ir::{Loop, MemAccess, OpId};
use swp_machine::Machine;

/// Static relative-bank knowledge for two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelBank {
    /// Opposite banks in every iteration (safe to pair).
    KnownOpposite,
    /// Same bank in every iteration (never pair).
    KnownSame,
    /// Cannot be determined at compile time.
    Unknown,
}

/// Classify the relative bank of two memory accesses issued in the same
/// cycle on behalf of the *same* iteration.
pub fn relative_bank(lp: &Loop, a: &MemAccess, b: &MemAccess) -> RelBank {
    classify_delta(lp, a, b, 0)
}

/// Classify the relative bank of two same-row references `a` at `t_a` and
/// `b` at `t_b` (times must share a row mod II): the co-issued instances
/// come from iterations `(t_a − t_b)/II` apart.
pub fn relative_bank_at(
    lp: &Loop,
    a: &MemAccess,
    t_a: i64,
    b: &MemAccess,
    t_b: i64,
    ii: u32,
) -> RelBank {
    let dt = t_a - t_b;
    debug_assert_eq!(dt.rem_euclid(i64::from(ii)), 0, "ops must share a row");
    let stage_delta = dt / i64::from(ii);
    classify_delta(lp, a, b, stage_delta)
}

/// Core classification: instance of `a` from iteration `i − k`, instance
/// of `b` from iteration `i`, for all `i` (`k` = stage delta of `a` over
/// `b`).
fn classify_delta(lp: &Loop, a: &MemAccess, b: &MemAccess, stage_delta: i64) -> RelBank {
    if a.indirect || b.indirect || a.stride != b.stride {
        return RelBank::Unknown;
    }
    let addr = |m: &MemAccess| lp.array(m.array).base_align as i64 + m.offset;
    let (aa, ab) = (addr(a) - a.stride * stage_delta, addr(b));
    if aa.rem_euclid(8) != ab.rem_euclid(8) {
        return RelBank::Unknown;
    }
    match (aa - ab).rem_euclid(16) {
        8 => RelBank::KnownOpposite,
        0 => RelBank::KnownSame,
        _ => RelBank::Unknown,
    }
}

/// The §2.9 pairing state threaded through one scheduling attempt.
#[derive(Debug, Clone)]
pub struct PairingContext {
    /// For each op (by index): priority-ordered partner candidate ops.
    partners: Vec<Vec<OpId>>,
    /// Pairs that must share cycles at this II (`max(0, M − II)`).
    pairs_needed: u32,
    pairs_done: u32,
}

impl PairingContext {
    /// Build pairing lists for a loop at a given II, with partner lists
    /// ordered by the scheduling priority `order` (the paper forms `L(m)`
    /// after priority orders are calculated).
    pub fn new(lp: &Loop, order: &[OpId], ii: u32) -> PairingContext {
        let mem_count = lp.mem_ops().count() as u32;
        let pairs_needed = mem_count.saturating_sub(ii);
        let mut partners = vec![Vec::new(); lp.len()];
        let pos_of = |op: OpId| order.iter().position(|&o| o == op).expect("op in order");
        for m in lp.mem_ops() {
            let Some(am) = m.mem else { continue };
            let mut list: Vec<OpId> = lp
                .mem_ops()
                .filter(|m2| m2.id != m.id)
                .filter(|m2| {
                    m2.mem
                        .is_some_and(|a2| relative_bank(lp, &am, &a2) == RelBank::KnownOpposite)
                })
                .map(|m2| m2.id)
                .collect();
            list.sort_by_key(|&o| pos_of(o));
            partners[m.id.index()] = list;
        }
        PairingContext {
            partners,
            pairs_needed,
            pairs_done: 0,
        }
    }

    /// Whether a reference has any known-opposite partner.
    pub fn is_pairable(&self, op: OpId) -> bool {
        !self.partners[op.index()].is_empty()
    }

    /// How many same-cycle pairs this attempt should form.
    pub fn pairs_needed(&self) -> u32 {
        self.pairs_needed
    }

    /// Pairs formed so far.
    pub fn pairs_done(&self) -> u32 {
        self.pairs_done
    }

    /// Reduce the pairing requirement (the §2.9 pressure response: "if
    /// register allocation fails, it tries scheduling again with reduced
    /// pairing requirements").
    pub fn reduce_requirement(&mut self) {
        self.pairs_needed /= 2;
    }

    /// Whether issuing `op` at `t_op` is bank-safe against the placed
    /// `other` at `t_other` in the same kernel row: only known-opposite
    /// pairs are. Known-same pairs guarantee stalls; unknown pairs risk
    /// them (§4.3's mdljdp2 story: "memory references with unknowable
    /// relative offsets are grouped together unnecessarily. The memory
    /// bank heuristics prevent that grouping").
    ///
    /// Same-row ops `k` stages apart co-issue with instances from
    /// iterations `k` apart, so the address delta gains `stride·k`
    /// (`k = (t_op − t_other) / II`).
    pub fn safe_together(
        lp: &Loop,
        op: OpId,
        t_op: i64,
        other: OpId,
        t_other: i64,
        ii: u32,
    ) -> bool {
        let (Some(a), Some(b)) = (lp.op(op).mem, lp.op(other).mem) else {
            return true;
        };
        relative_bank_at(lp, &a, t_op, &b, t_other, ii) == RelBank::KnownOpposite
    }

    /// Hook called by the scheduler right after placing op at priority
    /// position `pos` in `cycle`: try to co-schedule the first possible
    /// unscheduled partner in the same cycle (§2.9's primary move; the
    /// paper's further fallbacks reuse the scheduler's own backtracking).
    pub(crate) fn after_place(
        &mut self,
        view: &mut PairingView<'_, '_>,
        pos: usize,
        cycle: i64,
        stats: &mut AttemptStats,
    ) {
        if self.pairs_done >= self.pairs_needed {
            return;
        }
        let op = view.order[pos];
        let list = &self.partners[op.index()];
        if list.is_empty() {
            return;
        }
        for &cand in list {
            let cpos = view.pos_of[cand.index()];
            if view.time[cand.index()].is_some() {
                continue;
            }
            if view.try_place_at(cpos, cycle) {
                self.pairs_done += 1;
                stats.pairs_formed += 1;
                if cpos != pos + 1 {
                    stats.pairing_priority_changes += 1;
                }
                return;
            }
        }
    }
}

/// Static stall-risk score of a schedule (lower is better): for every
/// kernel row shared by two memory references, average over a window of
/// iterations the bellows outcome — 1 for a known same-bank pair, 0 for
/// known opposite, ½ for unknown. Used for the "small exploration of other
/// schedules … searching for schedules with provably better stalling
/// behavior" at the end of §2.9.
pub fn stall_score(lp: &Loop, times: &[i64], ii: u32, machine: &Machine) -> f64 {
    let Some(bank_model) = machine.bank_model() else {
        return 0.0;
    };
    let mut rows: Vec<Vec<OpId>> = vec![Vec::new(); ii as usize];
    for op in lp.mem_ops() {
        let row = times[op.id.index()].rem_euclid(i64::from(ii)) as usize;
        rows[row].push(op.id);
    }
    const WINDOW: i64 = 16;
    let mut score = 0.0;
    for row_ops in &rows {
        for (i, &a) in row_ops.iter().enumerate() {
            for &b in &row_ops[i + 1..] {
                let ma = lp.op(a).mem.expect("mem op");
                let mb = lp.op(b).mem.expect("mem op");
                if ma.indirect || mb.indirect {
                    score += 0.5;
                    continue;
                }
                // Same row, possibly different stages: co-issued instances
                // differ by (t_a − t_b)/II iterations.
                let k = (times[a.index()] - times[b.index()]) / i64::from(ii);
                let mut same = 0i64;
                for it in WINDOW..(2 * WINDOW) {
                    let ia = (it - k).max(0) as u64;
                    let addr_a = (lp.array(ma.array).base_align as i64 + ma.addr_at(ia)) as u64;
                    let addr_b =
                        (lp.array(mb.array).base_align as i64 + mb.addr_at(it as u64)) as u64;
                    if bank_model.bank_of(addr_a) == bank_model.bank_of(addr_b) {
                        same += 1;
                    }
                }
                score += same as f64 / WINDOW as f64;
            }
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;

    #[test]
    fn relative_bank_classification() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v0 = b.load(x, 0, 16);
        let v8 = b.load(x, 8, 16);
        let v16 = b.load(x, 16, 16);
        let s = b.fadd(v0, v8);
        let s2 = b.fadd(s, v16);
        b.store(x, 80000, 16, s2);
        let lp = b.finish();
        let m0 = lp.ops()[0].mem.unwrap();
        let m8 = lp.ops()[1].mem.unwrap();
        let m16 = lp.ops()[2].mem.unwrap();
        assert_eq!(relative_bank(&lp, &m0, &m8), RelBank::KnownOpposite);
        assert_eq!(relative_bank(&lp, &m0, &m16), RelBank::KnownSame);
    }

    #[test]
    fn unequal_strides_are_unknown() {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.load(y, 8, 16);
        let s = b.fadd(v, w);
        b.store(x, 80000, 8, s);
        let lp = b.finish();
        let ma = lp.ops()[0].mem.unwrap();
        let mb = lp.ops()[1].mem.unwrap();
        assert_eq!(relative_bank(&lp, &ma, &mb), RelBank::Unknown);
    }

    #[test]
    fn single_precision_even_alignment_is_same_bank() {
        // 4-byte elements: v[i] and v[i+1] are 4 bytes apart — different
        // double-word alignment → unknown; v[i] and v[i+2] (8 apart, same
        // alignment) → opposite.
        let mut b = LoopBuilder::new("t");
        let v = b.array("v", 4);
        let a = b.load(v, 0, 16);
        let bq = b.load(v, 4, 16);
        let c = b.load(v, 8, 16);
        let s = b.fadd(a, bq);
        let s2 = b.fadd(s, c);
        b.store(v, 80000, 16, s2);
        let lp = b.finish();
        let m0 = lp.ops()[0].mem.unwrap();
        let m4 = lp.ops()[1].mem.unwrap();
        let m8 = lp.ops()[2].mem.unwrap();
        assert_eq!(relative_bank(&lp, &m0, &m4), RelBank::Unknown);
        assert_eq!(relative_bank(&lp, &m0, &m8), RelBank::KnownOpposite);
    }

    #[test]
    fn stage_shift_flips_bank_relation() {
        // Two refs 8 bytes apart with stride 8: opposite when co-issued at
        // the same stage, but SAME bank when one is a stage later at II=1
        // (the shift subtracts one stride: 8 − 8 = 0 mod 16). This is the
        // wave5.field pattern that a purely static check gets wrong.
        let mut b = LoopBuilder::new("t");
        let f = b.array("f", 8);
        let a = b.load(f, 0, 8);
        let c = b.load(f, 8, 8);
        let s = b.fadd(a, c);
        b.store(f, 800000, 8, s);
        let lp = b.finish();
        let ma = lp.ops()[0].mem.unwrap();
        let mb = lp.ops()[1].mem.unwrap();
        assert_eq!(relative_bank(&lp, &mb, &ma), RelBank::KnownOpposite);
        // Same row at II=2 but 3 stages apart: delta = 8 − 8·3 = −16 ≡ 0.
        assert_eq!(relative_bank_at(&lp, &mb, 7, &ma, 1, 2), RelBank::KnownSame);
        // 2 stages apart: delta = 8 − 16 = −8 ≡ 8 → opposite again.
        assert_eq!(
            relative_bank_at(&lp, &mb, 5, &ma, 1, 2),
            RelBank::KnownOpposite
        );
    }

    #[test]
    fn stall_score_accounts_for_stage_deltas() {
        let machine = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let f = b.array("f", 8);
        let a = b.load(f, 0, 8);
        let c = b.load(f, 8, 8);
        let s = b.fadd(a, c);
        b.store(f, 800000, 8, s);
        let lp = b.finish();
        // Same cycle: opposite banks → score 0.
        let same_cycle = vec![0, 0, 4, 9];
        assert_eq!(stall_score(&lp, &same_cycle, 2, &machine), 0.0);
        // Same row, 3 stages apart: same bank every iteration → score 1.
        let shifted = vec![1, 7, 11, 16];
        assert_eq!(stall_score(&lp, &shifted, 2, &machine), 1.0);
    }

    #[test]
    fn stall_score_prefers_opposite_pairs() {
        let machine = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v0 = b.load(x, 0, 16);
        let v8 = b.load(x, 8, 16);
        let v16 = b.load(x, 16, 16);
        let v24 = b.load(x, 24, 16);
        let s1 = b.fadd(v0, v8);
        let s2 = b.fadd(v16, v24);
        let s = b.fadd(s1, s2);
        b.store(x, 80000, 16, s);
        let lp = b.finish();
        // Pairing (0,8) and (16,24) in rows: opposite banks → score 0.
        let good = vec![0, 0, 1, 1, 4, 4, 8, 14];
        // Pairing (0,16) and (8,24): same banks → score 2.
        let bad = vec![0, 1, 0, 1, 4, 4, 8, 14];
        let gs = stall_score(&lp, &good, 3, &machine);
        let bs = stall_score(&lp, &bad, 3, &machine);
        assert!(gs < bs, "good={gs} bad={bs}");
        assert_eq!(gs, 0.0);
        assert_eq!(bs, 2.0);
    }
}
