//! The four scheduling priority heuristics of §2.7.
//!
//! The MIPSpro pipeliner discovered that no single priority order works for
//! every loop and therefore tries several in sequence:
//!
//! 1. **FDMS** — folded depth-first ordering with a final memory sort,
//! 2. **FDNMS** — folded depth-first ordering, no memory sort,
//! 3. **HMS** — data-precedence-graph heights with a memory sort,
//! 4. **RHMS** — reversed heights with a memory sort.
//!
//! *Folded depth-first*: a depth-first walk from the roots (stores) toward
//! the leaves (loads); hard-to-schedule operations (unpipelined divides and
//! square roots) and large strongly connected components are *folded* —
//! treated as virtual roots so they are listed (and hence scheduled) first.
//! *Heights*: operations ordered by the maximum latency-sum along any path
//! to a root. The *final memory sort* moves stores with no successors and
//! loads with no predecessors to the end of the list.

use std::fmt;
use swp_ir::{Ddg, Loop, OpId};
use swp_machine::{Machine, OpClass};

/// One of the four priority-list heuristics (§2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityHeuristic {
    /// Folded depth-first with final memory sort.
    Fdms,
    /// Folded depth-first, no memory sort.
    Fdnms,
    /// Heights with final memory sort.
    Hms,
    /// Reversed heights with final memory sort.
    Rhms,
}

impl PriorityHeuristic {
    /// All four, in the order MIPSpro tries them.
    pub const ALL: [PriorityHeuristic; 4] = [
        PriorityHeuristic::Fdms,
        PriorityHeuristic::Fdnms,
        PriorityHeuristic::Hms,
        PriorityHeuristic::Rhms,
    ];
}

impl fmt::Display for PriorityHeuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PriorityHeuristic::Fdms => "FDMS",
            PriorityHeuristic::Fdnms => "FDNMS",
            PriorityHeuristic::Hms => "HMS",
            PriorityHeuristic::Rhms => "RHMS",
        })
    }
}

/// Minimum SCC size considered "large" enough to fold to the list head.
const FOLD_SCC_SIZE: usize = 3;

/// Build the priority list for a heuristic. Every op appears exactly once;
/// members of one SCC appear contiguously (required by the catch-point
/// pruning rule 1 of §2.4).
pub fn priority_list(
    lp: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    heuristic: PriorityHeuristic,
) -> Vec<OpId> {
    let mut order = match heuristic {
        PriorityHeuristic::Fdms | PriorityHeuristic::Fdnms => folded_dfs(lp, ddg, machine),
        PriorityHeuristic::Hms => heights_order(lp, ddg, machine, false),
        PriorityHeuristic::Rhms => heights_order(lp, ddg, machine, true),
    };
    if heuristic != PriorityHeuristic::Fdnms {
        memory_sort(lp, ddg, &mut order);
    }
    debug_assert_eq!(order.len(), lp.len());
    order
}

/// Folded depth-first ordering over the SCC condensation: fold points
/// (unpipelined ops, large SCCs) first, then a DFS from the roots (SCCs
/// with no successors) toward the leaves.
fn folded_dfs(lp: &Loop, ddg: &Ddg, machine: &Machine) -> Vec<OpId> {
    let nscc = ddg.sccs().len();
    // Condensation adjacency: component -> predecessor components.
    let mut comp_preds: Vec<Vec<usize>> = vec![Vec::new(); nscc];
    let mut comp_succ_count = vec![0usize; nscc];
    for e in ddg.edges() {
        let cf = ddg.scc_of(e.from).index();
        let ct = ddg.scc_of(e.to).index();
        if cf != ct {
            comp_preds[ct].push(cf);
            comp_succ_count[cf] += 1;
        }
    }

    let is_fold = |c: usize| {
        let scc = &ddg.sccs()[c];
        if scc.members.len() >= FOLD_SCC_SIZE && scc.nontrivial {
            return true;
        }
        scc.members.iter().any(|&m| {
            machine
                .reservations(lp.op(m).class)
                .iter()
                .any(|r| r.duration > 1)
        })
    };

    let mut visited = vec![false; nscc];
    let mut order: Vec<OpId> = Vec::with_capacity(lp.len());

    // DFS that emits a component then walks to its predecessor components
    // (backward toward the leaves/loads).
    fn visit(
        c: usize,
        visited: &mut [bool],
        comp_preds: &[Vec<usize>],
        ddg: &Ddg,
        order: &mut Vec<OpId>,
    ) {
        if visited[c] {
            return;
        }
        visited[c] = true;
        order.extend(scc_internal_order(ddg, c));
        let mut preds = comp_preds[c].clone();
        preds.sort_unstable();
        preds.dedup();
        for p in preds {
            visit(p, visited, comp_preds, ddg, order);
        }
    }

    // Fold points become virtual roots.
    let mut folds: Vec<usize> = (0..nscc).filter(|&c| is_fold(c)).collect();
    // Larger components first: they are the hardest to place.
    folds.sort_by_key(|&c| std::cmp::Reverse(ddg.sccs()[c].members.len()));
    for c in folds {
        visit(c, &mut visited, &comp_preds, ddg, &mut order);
    }
    // Then true roots (no successors), i.e. the stores.
    let mut roots: Vec<usize> = (0..nscc).filter(|&c| comp_succ_count[c] == 0).collect();
    roots.sort_unstable();
    for c in roots {
        visit(c, &mut visited, &comp_preds, ddg, &mut order);
    }
    // Anything unreached (defensive: possible with exotic edge structure).
    for c in 0..nscc {
        visit(c, &mut visited, &comp_preds, ddg, &mut order);
    }
    order
}

/// Heights ordering: descending maximum latency-sum along any path to a
/// root, with SCC members kept contiguous (components ordered by their
/// maximum member height). `reversed` flips to ascending.
fn heights_order(lp: &Loop, ddg: &Ddg, machine: &Machine, reversed: bool) -> Vec<OpId> {
    let h = heights(lp, ddg, machine);
    let nscc = ddg.sccs().len();
    let mut comp_height = vec![0i64; nscc];
    for op in lp.ops() {
        let c = ddg.scc_of(op.id).index();
        comp_height[c] = comp_height[c].max(h[op.id.index()]);
    }
    let mut comps: Vec<usize> = (0..nscc).collect();
    comps.sort_by_key(|&c| (std::cmp::Reverse(comp_height[c]), c));
    if reversed {
        comps.reverse();
    }
    let mut order = Vec::with_capacity(lp.len());
    for c in comps {
        let mut members = scc_internal_order(ddg, c);
        members.sort_by_key(|&m| {
            let key = h[m.index()];
            (std::cmp::Reverse(if reversed { -key } else { key }), m)
        });
        order.extend(members);
    }
    order
}

/// Maximum latency-sum along any zero-distance path to a sink, computed on
/// the acyclic condensation (distance-0 arcs within SCCs are bounded by the
/// member count to keep this well-defined).
pub fn heights(lp: &Loop, ddg: &Ddg, machine: &Machine) -> Vec<i64> {
    let _ = machine; // latencies already baked into edges
    let n = lp.len();
    let mut h = vec![0i64; n];
    // Iterate to a fixpoint over distance-0 arcs, capped to avoid cycles
    // (cycles with all-zero distance cannot exist in a valid loop).
    let mut changed = true;
    let mut guard = 0;
    while changed && guard <= n + 1 {
        changed = false;
        guard += 1;
        for e in ddg.edges() {
            if e.distance == 0 {
                let cand = h[e.to.index()] + e.latency;
                if cand > h[e.from.index()] {
                    h[e.from.index()] = cand;
                    changed = true;
                }
            }
        }
    }
    h
}

/// §2.7's final memory sort: stores with no successors and loads with no
/// predecessors move to the end of the list (stable otherwise).
fn memory_sort(lp: &Loop, ddg: &Ddg, order: &mut Vec<OpId>) {
    let is_tail = |op: OpId| {
        let o = lp.op(op);
        match o.class {
            OpClass::Store => ddg.succ_edges(op).next().is_none(),
            OpClass::Load => ddg.pred_edges(op).next().is_none(),
            _ => false,
        }
    };
    let (mut head, tail): (Vec<OpId>, Vec<OpId>) = order.iter().partition(|&&op| !is_tail(op));
    head.extend(tail);
    *order = head;
}

/// Members of one SCC in a deterministic internal order: a local DFS from
/// the member with the most in-SCC successors, falling back to id order.
fn scc_internal_order(ddg: &Ddg, c: usize) -> Vec<OpId> {
    let scc = &ddg.sccs()[c];
    if scc.members.len() <= 1 {
        return scc.members.clone();
    }
    let mut order = Vec::with_capacity(scc.members.len());
    let mut seen = vec![false; scc.members.len()];
    let index_of = |op: OpId| scc.members.binary_search(&op).expect("member");
    let mut stack: Vec<OpId> = vec![scc.members[0]];
    while let Some(op) = stack.pop() {
        let i = index_of(op);
        if seen[i] {
            continue;
        }
        seen[i] = true;
        order.push(op);
        let mut nexts: Vec<OpId> = ddg
            .succ_edges(op)
            .filter(|e| ddg.scc_of(e.to).index() == c)
            .map(|e| e.to)
            .collect();
        nexts.sort_unstable_by(|a, b| b.cmp(a));
        for nx in nexts {
            if !seen[index_of(nx)] {
                stack.push(nx);
            }
        }
    }
    for (i, &m) in scc.members.iter().enumerate() {
        if !seen[i] {
            order.push(m);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ir::LoopBuilder;
    use swp_machine::Machine;

    fn chain_loop() -> Loop {
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fmul(v, v);
        let u = b.fadd(w, v);
        b.store(y, 0, 8, u);
        b.finish()
    }

    #[test]
    fn every_heuristic_is_a_permutation() {
        let m = Machine::r8000();
        let lp = chain_loop();
        let ddg = Ddg::build(&lp, &m);
        for h in PriorityHeuristic::ALL {
            let order = priority_list(&lp, &ddg, &m, h);
            let mut sorted: Vec<_> = order.iter().map(|o| o.index()).collect();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..lp.len()).collect::<Vec<_>>(), "{h}");
        }
    }

    #[test]
    fn heights_descend_along_chains() {
        let m = Machine::r8000();
        let lp = chain_loop();
        let ddg = Ddg::build(&lp, &m);
        let h = heights(&lp, &ddg, &m);
        // load feeds mul feeds add feeds store: strictly higher upstream.
        assert!(h[0] > h[1]);
        assert!(h[1] > h[2]);
        assert!(h[2] > h[3]);
    }

    #[test]
    fn memory_sort_moves_root_store_to_tail() {
        let m = Machine::r8000();
        let lp = chain_loop();
        let ddg = Ddg::build(&lp, &m);
        let order = priority_list(&lp, &ddg, &m, PriorityHeuristic::Hms);
        // The store has no successors; the load has no predecessors: both
        // are at the tail under HMS.
        let tail: Vec<usize> = order[2..].iter().map(|o| o.index()).collect();
        assert!(tail.contains(&0), "load at tail: {order:?}");
        assert!(tail.contains(&3), "store at tail: {order:?}");
    }

    #[test]
    fn folded_dfs_puts_divide_first() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v = b.load(x, 0, 8);
        let w = b.fadd(v, v);
        let d = b.fdiv(w, v);
        b.store(y, 0, 8, d);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let order = priority_list(&lp, &ddg, &m, PriorityHeuristic::Fdnms);
        assert_eq!(
            order[0].index(),
            2,
            "unpipelined divide folded to head: {order:?}"
        );
    }

    #[test]
    fn scc_members_contiguous_in_all_heuristics() {
        let m = Machine::r8000();
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let t = b.fadd(s.value(), v);
        let u = b.fmul(t, v);
        let w = b.fadd(u, t);
        b.close(s, w, 1);
        b.store(x, 80000, 8, w);
        let lp = b.finish();
        let ddg = Ddg::build(&lp, &m);
        let cyclic: Vec<bool> = lp.ops().iter().map(|o| ddg.in_cycle(o.id)).collect();
        assert!(
            cyclic.iter().filter(|&&c| c).count() >= 3,
            "loop has a big SCC"
        );
        for h in PriorityHeuristic::ALL {
            let order = priority_list(&lp, &ddg, &m, h);
            let positions: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, op)| ddg.in_cycle(**op))
                .map(|(i, _)| i)
                .collect();
            for w in positions.windows(2) {
                assert_eq!(w[1], w[0] + 1, "SCC contiguous under {h}: {order:?}");
            }
        }
    }
}
