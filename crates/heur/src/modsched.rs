//! Branch-and-bound enumeration of modulo schedules at a fixed II
//! (Figure 1 of the paper) with the catch-point pruning rules of §2.4.

use crate::bankopt::PairingContext;
use crate::restable::{identical_resources, ResTable};
use swp_ir::{Ddg, LongestPaths, Loop, OpId};
use swp_machine::Machine;

/// Outcome statistics of one scheduling attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptStats {
    /// Backtracks consumed.
    pub backtracks: u32,
    /// Operations (re)placed.
    pub placements: u64,
    /// Same-cycle bank pairs formed.
    pub pairs_formed: u32,
    /// Priority inversions caused by pairing (§2.9's pressure signal).
    pub pairing_priority_changes: u32,
}

/// One scheduled entry on the priority list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Placed {
    cycle: i64,
    range_hi: i64,
}

/// The in-progress scheduling state.
struct State<'a> {
    lp: &'a Loop,
    ddg: &'a Ddg,
    machine: &'a Machine,
    ii: u32,
    lpaths: &'a LongestPaths,
    order: &'a [OpId],
    pos_of: Vec<usize>,
    table: ResTable,
    /// Indexed by priority position.
    placed: Vec<Option<Placed>>,
    /// Indexed by op.
    time: Vec<Option<i64>>,
}

const INF: i64 = i64::MAX / 4;

/// Legal range of cycles for `op` against an explicit time vector
/// (§2.4 step 2a). Within a nontrivial SCC the longest-path table against
/// scheduled members bounds both sides — those bounds are hard. For other
/// ops only *scheduled* direct predecessors/successors constrain the
/// placement, and the constraints are soft: §2.5's pipestage postpass can
/// repair any cross-component arc by moving whole components in II
/// multiples, so when the window is empty the successor bound is dropped
/// rather than failing. The range is clipped to II consecutive cycles.
fn compute_range(
    ddg: &Ddg,
    lpaths: &LongestPaths,
    ii: u32,
    time: &[Option<i64>],
    op: OpId,
) -> Option<(i64, i64, bool)> {
    let ii = i64::from(ii);
    let mut lo = -INF;
    let mut hi = INF;
    if ddg.in_cycle(op) {
        let scc = ddg.scc_of(op);
        for &m in &ddg.sccs()[scc.index()].members {
            if m == op {
                continue;
            }
            let Some(tm) = time[m.index()] else { continue };
            if let Some(d) = lpaths.get(m, op) {
                lo = lo.max(tm + d);
            }
            if let Some(d) = lpaths.get(op, m) {
                hi = hi.min(tm - d);
            }
        }
        let prefer_late = lo == -INF && hi != INF;
        let (lo, hi) = clip(lo, hi, ii);
        (lo <= hi).then_some((lo, hi, prefer_late))
    } else {
        for e in ddg.pred_edges(op) {
            if e.from == op {
                continue;
            }
            if let Some(tf) = time[e.from.index()] {
                lo = lo.max(tf + e.latency - ii * i64::from(e.distance));
            }
        }
        for e in ddg.succ_edges(op) {
            if e.to == op {
                continue;
            }
            if let Some(tt) = time[e.to.index()] {
                hi = hi.min(tt - e.latency + ii * i64::from(e.distance));
            }
        }
        if lo != -INF && hi != INF && lo > hi {
            // Empty window between scheduled preds and succs: prefer the
            // predecessor side; the postpass will move components to
            // satisfy the successor arcs.
            hi = INF;
        }
        // §2.7: when only consumers are scheduled (backward orders), place
        // the op as low (late) as possible to shorten its live range from
        // the definition side.
        let prefer_late = lo == -INF && hi != INF;
        let (lo, hi) = clip(lo, hi, ii);
        Some((lo, hi, prefer_late))
    }
}

fn clip(lo: i64, hi: i64, ii: i64) -> (i64, i64) {
    if lo == -INF && hi == INF {
        (0, ii - 1)
    } else if lo == -INF {
        (hi - ii + 1, hi)
    } else {
        (lo, hi.min(lo + ii - 1))
    }
}

impl<'a> State<'a> {
    fn new(
        lp: &'a Loop,
        ddg: &'a Ddg,
        machine: &'a Machine,
        ii: u32,
        lpaths: &'a LongestPaths,
        order: &'a [OpId],
    ) -> State<'a> {
        let mut pos_of = vec![usize::MAX; lp.len()];
        for (i, &op) in order.iter().enumerate() {
            pos_of[op.index()] = i;
        }
        State {
            lp,
            ddg,
            machine,
            ii,
            lpaths,
            order,
            pos_of,
            table: ResTable::new(machine, ii),
            placed: vec![None; lp.len()],
            time: vec![None; lp.len()],
        }
    }

    /// Legal range for `op` in the current state (see [`compute_range`]).
    fn legal_range(&self, op: OpId) -> Option<(i64, i64, bool)> {
        compute_range(self.ddg, self.lpaths, self.ii, &self.time, op)
    }

    /// First cycle in `[from, hi]` where `op` fits, or `None`. With
    /// `late`, the scan runs downward from `hi` (live-range shortening for
    /// consumer-bounded ops, §2.7).
    fn find_cycle(&self, op: OpId, from: i64, hi: i64, late: bool) -> Option<i64> {
        let class = self.lp.op(op).class;
        if late {
            (from..=hi)
                .rev()
                .find(|&c| self.table.fits(self.machine, class, c))
        } else {
            (from..=hi).find(|&c| self.table.fits(self.machine, class, c))
        }
    }

    /// Like [`State::find_cycle`], but for memory references under the
    /// §2.9 bank heuristics: prefer a cycle whose row holds no memory
    /// reference that is same-bank or unknown relative to `op`. Falls back
    /// to plain first-fit when no bank-safe cycle exists.
    fn find_cycle_bank_aware(&self, op: OpId, from: i64, hi: i64, late: bool) -> Option<i64> {
        /// How far past the first fit the safe-cycle search may wander —
        /// bounding the live-range growth the avoidance can cause (§2.9's
        /// register-pressure feedback in miniature).
        const MAX_DISPLACEMENT: i64 = 3;
        let class = self.lp.op(op).class;
        let ii = i64::from(self.ii);
        let first_fit = self.find_cycle(op, from, hi, late)?;
        let lo_w = if late {
            (first_fit - MAX_DISPLACEMENT).max(from)
        } else {
            first_fit
        };
        let hi_w = if late {
            first_fit
        } else {
            hi.min(first_fit + MAX_DISPLACEMENT)
        };
        let safe = (lo_w..=hi_w).find(|&c| {
            if !self.table.fits(self.machine, class, c) {
                return false;
            }
            let row = c.rem_euclid(ii);
            self.lp.mem_ops().all(|o| {
                if o.id == op {
                    return true;
                }
                match self.time[o.id.index()] {
                    Some(t) if t.rem_euclid(ii) == row => {
                        PairingContext::safe_together(self.lp, op, c, o.id, t, self.ii)
                    }
                    _ => true,
                }
            })
        });
        Some(safe.unwrap_or(first_fit))
    }

    fn place(&mut self, pos: usize, cycle: i64, hi: i64) {
        let op = self.order[pos];
        self.table.place(self.machine, self.lp.op(op).class, cycle);
        self.placed[pos] = Some(Placed {
            cycle,
            range_hi: hi,
        });
        self.time[op.index()] = Some(cycle);
    }

    fn unschedule(&mut self, pos: usize) {
        if let Some(p) = self.placed[pos].take() {
            let op = self.order[pos];
            self.table
                .remove(self.machine, self.lp.op(op).class, p.cycle);
            self.time[op.index()] = None;
        }
    }

    /// Whether `pos` may be a catch point under rule 1: the op is either
    /// not in a nontrivial SCC, or is the first of its SCC on the list.
    fn may_catch_rule1(&self, pos: usize) -> bool {
        let op = self.order[pos];
        if !self.ddg.in_cycle(op) {
            return true;
        }
        let scc = self.ddg.scc_of(op);
        let first = self.ddg.sccs()[scc.index()]
            .members
            .iter()
            .map(|&m| self.pos_of[m.index()])
            .min()
            .expect("scc nonempty");
        first == pos
    }
}

/// Schedule `order` at the given II. On success the times satisfy all
/// resource constraints and all *within-SCC* dependences; cross-SCC arcs
/// may still be violated and are repaired by
/// [`crate::postpass::adjust_pipestages`].
///
/// `budget` caps backtracks; `pairing` enables the §2.9 memory-bank
/// heuristics. `cancel` is polled once per placement/backtrack step — the
/// same granularity at which the ILP backend polls its wall-clock deadline
/// — so a losing portfolio racer abandons the search promptly.
#[allow(clippy::too_many_arguments)]
pub fn schedule_at(
    lp: &Loop,
    ddg: &Ddg,
    machine: &Machine,
    ii: u32,
    order: &[OpId],
    budget: u32,
    mut pairing: Option<&mut PairingContext>,
    cancel: &swp_obs::CancelToken,
    stats: &mut AttemptStats,
) -> Option<Vec<i64>> {
    let lpaths = LongestPaths::compute(ddg, ii)?;
    let mut st = State::new(lp, ddg, machine, ii, &lpaths, order);
    let mut budget_left = budget;
    let n = order.len();
    let mut i = 0usize;
    // Pending minimum cycle for the op at position i (set on backtrack).
    let mut min_cycle: Option<i64> = None;

    while i < n {
        if cancel.is_cancelled() {
            return None;
        }
        if st.placed[i].is_some() {
            // Already placed out of order by the pairing hook.
            i += 1;
            min_cycle = None;
            continue;
        }
        let op = order[i];
        let ranged = st.legal_range(op);
        let bank_aware = pairing.is_some() && lp.op(op).is_mem();
        let slot = ranged.and_then(|(lo, hi, late)| {
            let from = min_cycle.map_or(lo, |m| m.max(lo));
            // Backtracking resumption always walks forward through the
            // range, so a pending minimum cycle forces the upward scan.
            let late = late && min_cycle.is_none();
            let found = if bank_aware {
                st.find_cycle_bank_aware(op, from, hi, late)
            } else {
                st.find_cycle(op, from, hi, late)
            };
            found.map(|c| (c, hi))
        });
        min_cycle = None;
        match slot {
            Some((c, hi)) => {
                st.place(i, c, hi);
                stats.placements += 1;
                // Memory-bank pairing hook (§2.9).
                if let Some(px) = pairing.as_deref_mut() {
                    px.after_place(
                        &mut PairingView {
                            lp,
                            machine,
                            order,
                            pos_of: &st.pos_of,
                            table: &mut st.table,
                            placed: &mut st.placed,
                            time: &mut st.time,
                            ddg,
                            lpaths: &lpaths,
                            ii,
                        },
                        i,
                        c,
                        stats,
                    );
                }
                i += 1;
            }
            None => {
                // Backtrack (Figure 1 step 4 with §2.4 pruning).
                if budget_left == 0 {
                    return None;
                }
                budget_left -= 1;
                stats.backtracks += 1;
                match find_catch_point(&mut st, i) {
                    Some(j) => {
                        let next = st.placed[j].expect("catch point is placed");
                        for p in (j..i).rev() {
                            st.unschedule(p);
                        }
                        // Also unschedule any ops after i placed by pairing.
                        for p in i..n {
                            if st.placed[p].is_some() {
                                st.unschedule(p);
                            }
                        }
                        i = j;
                        min_cycle = Some(next.cycle + 1);
                    }
                    None => return None,
                }
            }
        }
    }
    Some(
        (0..lp.len())
            .map(|v| st.time[v].expect("all ops scheduled"))
            .collect(),
    )
}

/// Find the largest catch point `j < i` per §2.4: first under the strict
/// rule (non-identical resources and unscheduling helps), then under the
/// loose rule (identical resources allowed if `i` lands in a different
/// slot than `j` held).
fn find_catch_point(st: &mut State<'_>, i: usize) -> Option<usize> {
    let op_i = st.order[i];
    let class_i = st.lp.op(op_i).class;
    for strict in [true, false] {
        // Progressively unschedule from i-1 down to j, testing at each step.
        // Work on a scratch clone so the real state survives failures.
        let mut scratch_table = st.table.clone();
        let mut scratch_time = st.time.clone();
        for j in (0..i).rev() {
            // Unschedule position j in the scratch state.
            if let Some(p) = st.placed[j] {
                let opj = st.order[j];
                scratch_table.remove(st.machine, st.lp.op(opj).class, p.cycle);
                scratch_time[opj.index()] = None;

                if p.cycle >= p.range_hi {
                    continue; // legal range exhausted
                }
                if !st.may_catch_rule1(j) {
                    continue;
                }
                let class_j = st.lp.op(opj).class;
                let identical = identical_resources(st.machine, class_i, class_j);
                if strict && identical {
                    continue;
                }
                // Can i be scheduled now (with j..i-1 unscheduled)?
                let range = compute_range(st.ddg, st.lpaths, st.ii, &scratch_time, op_i);
                let Some((lo, hi, _)) = range else { continue };
                let found = (lo..=hi).find(|&c| scratch_table.fits(st.machine, class_i, c));
                match found {
                    Some(c) => {
                        if !strict && identical && c == p.cycle {
                            // Rule 3 requires a *different* slot; look past it.
                            let alt = ((c + 1)..=hi)
                                .find(|&cc| scratch_table.fits(st.machine, class_i, cc));
                            if alt.is_none() {
                                continue;
                            }
                        }
                        return Some(j);
                    }
                    None => continue,
                }
            }
        }
    }
    None
}

/// A narrowed view of the scheduler state handed to the pairing hook.
pub(crate) struct PairingView<'a, 'b> {
    pub lp: &'a Loop,
    pub machine: &'a Machine,
    pub order: &'a [OpId],
    pub pos_of: &'b [usize],
    pub table: &'b mut ResTable,
    pub placed: &'b mut [Option<Placed>],
    pub time: &'b mut [Option<i64>],
    pub ddg: &'a Ddg,
    pub lpaths: &'a LongestPaths,
    pub ii: u32,
}

impl PairingView<'_, '_> {
    /// Attempt to place the op at priority position `pos` at `cycle`,
    /// respecting its legal range and resources. Returns true on success.
    pub fn try_place_at(&mut self, pos: usize, cycle: i64) -> bool {
        if self.placed[pos].is_some() {
            return false;
        }
        let op = self.order[pos];
        let Some((lo, hi, _)) = compute_range(self.ddg, self.lpaths, self.ii, self.time, op) else {
            return false;
        };
        if cycle < lo || cycle > hi {
            return false;
        }
        let class = self.lp.op(op).class;
        if !self.table.fits(self.machine, class, cycle) {
            return false;
        }
        self.table.place(self.machine, class, cycle);
        self.placed[pos] = Some(Placed {
            cycle,
            range_hi: hi,
        });
        self.time[op.index()] = Some(cycle);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::{priority_list, PriorityHeuristic};
    use swp_ir::{LoopBuilder, Schedule};
    use swp_machine::Machine;

    fn sched(lp: &Loop, ii: u32) -> Option<Vec<i64>> {
        let m = Machine::r8000();
        let ddg = Ddg::build(lp, &m);
        let order = priority_list(lp, &ddg, &m, PriorityHeuristic::Fdms);
        let mut stats = AttemptStats::default();
        schedule_at(
            lp,
            &ddg,
            &m,
            ii,
            &order,
            400,
            None,
            &swp_obs::CancelToken::never(),
            &mut stats,
        )
    }

    #[test]
    fn saxpy_schedules_at_min_ii() {
        let mut b = LoopBuilder::new("saxpy");
        let a = b.invariant_f("a");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let xv = b.load(x, 0, 8);
        let yv = b.load(y, 0, 8);
        let r = b.fmadd(a, xv, yv);
        b.store(y, 0, 8, r);
        let lp = b.finish();
        let m = Machine::r8000();
        let ddg = Ddg::build(&lp, &m);
        let ii = ddg.min_ii();
        assert_eq!(ii, 2, "3 mem refs on 2 pipes");
        let times = sched(&lp, ii).expect("schedulable at MinII");
        // Within-SCC + postpass story: here no SCCs, so validate after the
        // postpass (which may shift components by multiples of II).
        let adjusted = crate::postpass::adjust_pipestages(&lp, &ddg, ii, times);
        let s = Schedule::new(ii, adjusted);
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
    }

    #[test]
    fn reduction_respects_recurrence() {
        let mut b = LoopBuilder::new("sum");
        let x = b.array("x", 8);
        let v = b.load(x, 0, 8);
        let s = b.carried_f("s");
        let s1 = b.fadd(s.value(), v);
        b.close(s, s1, 1);
        let lp = b.finish();
        let m = Machine::r8000();
        let ddg = Ddg::build(&lp, &m);
        assert_eq!(ddg.min_ii(), 4);
        let times = sched(&lp, 4).expect("schedulable");
        let adjusted = crate::postpass::adjust_pipestages(&lp, &ddg, 4, times);
        let s = Schedule::new(4, adjusted);
        assert_eq!(s.validate(&lp, &ddg, &m), Ok(()));
    }

    #[test]
    fn infeasible_ii_fails() {
        // 5 loads cannot fit at II=2 (2 memory pipes).
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let mut acc = b.load(x, 0, 8);
        for k in 1..5 {
            let v = b.load(x, 800 * k, 8);
            acc = b.fadd(acc, v);
        }
        b.store(x, 80000, 8, acc);
        let lp = b.finish();
        assert!(sched(&lp, 2).is_none());
        assert!(sched(&lp, 3).is_some());
    }

    #[test]
    fn backtracking_rescues_tight_schedules() {
        // Many FP ops at a tight II force slot competition: zero budget may
        // fail where a real budget succeeds. (Construct a case where naive
        // first-fit placement runs out of issue slots.)
        let mut b = LoopBuilder::new("t");
        let x = b.array("x", 8);
        let y = b.array("y", 8);
        let v1 = b.load(x, 0, 8);
        let v2 = b.load(y, 0, 8);
        let mut ops = Vec::new();
        for _ in 0..6 {
            ops.push(b.fadd(v1, v2));
        }
        let mut acc = ops[0];
        for &o in &ops[1..] {
            acc = b.fadd(acc, o);
        }
        b.store(x, 80000, 8, acc);
        let lp = b.finish();
        let m = Machine::r8000();
        let ddg = Ddg::build(&lp, &m);
        let min_ii = ddg.min_ii();
        let order = priority_list(&lp, &ddg, &m, PriorityHeuristic::Hms);
        let mut stats = AttemptStats::default();
        let result = schedule_at(
            &lp,
            &ddg,
            &m,
            min_ii,
            &order,
            1000,
            None,
            &swp_obs::CancelToken::never(),
            &mut stats,
        );
        assert!(
            result.is_some(),
            "budget allows a schedule at MinII={min_ii}"
        );
    }
}
