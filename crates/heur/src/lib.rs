//! The SGI MIPSpro-style heuristic software pipeliner (§2 of the paper).
//!
//! A faithful reimplementation of the production pipeliner the paper
//! validates:
//!
//! - branch-and-bound enumeration of modulo schedules at a fixed II with
//!   the three catch-point pruning rules of §2.4 ([`modsched`]),
//! - legal ranges from SCC longest-path tables, with the pipestage
//!   adjustment postpass of §2.5 ([`postpass`]),
//! - the four priority-list heuristics FDMS/FDNMS/HMS/RHMS of §2.7
//!   ([`priority`]),
//! - two-phase II search — exponential backoff then binary — bounded by
//!   `MaxII = 2·MinII` (§2.3),
//! - register allocation by modulo renaming + Chaitin–Briggs via
//!   [`swp_regalloc`], with exponential spilling on failure (§2.8),
//! - the memory-bank pairing heuristics of §2.9 ([`bankopt`]).
//!
//! # Examples
//!
//! ```
//! use swp_heur::{pipeline, HeurOptions};
//! use swp_ir::LoopBuilder;
//! use swp_machine::Machine;
//!
//! let m = Machine::r8000();
//! let mut b = LoopBuilder::new("saxpy");
//! let a = b.invariant_f("a");
//! let x = b.array("x", 8);
//! let y = b.array("y", 8);
//! let xv = b.load(x, 0, 8);
//! let yv = b.load(y, 0, 8);
//! let r = b.fmadd(a, xv, yv);
//! b.store(y, 0, 8, r);
//! let lp = b.finish();
//!
//! let p = pipeline(&lp, &m, &HeurOptions::default())?;
//! assert_eq!(p.ii(), 2); // 3 memory references on 2 memory pipes
//! # Ok::<(), swp_heur::PipelineError>(())
//! ```

pub mod bankopt;
pub mod modsched;
pub mod postpass;
pub mod priority;
mod restable;
mod search;

pub use modsched::{schedule_at, AttemptStats};
pub use priority::{priority_list, PriorityHeuristic};
pub use restable::{identical_resources, ResTable};
pub use search::{pipeline, HeurOptions, PipelineError, PipelineStats, Pipelined};

#[cfg(test)]
mod tests {
    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Pipelined>();
        assert_send_sync::<crate::HeurOptions>();
    }
}
