//! The machine description proper: units, latencies, reservations.

use crate::banks::BankModel;
use crate::ops::OpClass;
use crate::regs::{RegClass, RegFile};
use std::fmt;

/// A functional-unit resource class.
///
/// Every operation consumes one issue slot plus cycles on exactly one of
/// these unit classes (possibly several consecutive cycles for unpipelined
/// operations such as divide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Issue bandwidth (the R8000 dispatches at most 4 ops per cycle).
    Issue,
    /// Memory pipes (2 on the R8000).
    Memory,
    /// Floating-point pipes (2 on the R8000).
    Float,
    /// Integer ALUs (2 on the R8000).
    Integer,
}

impl ResourceClass {
    /// All resource classes in a fixed order.
    pub const ALL: [ResourceClass; 4] = [
        ResourceClass::Issue,
        ResourceClass::Memory,
        ResourceClass::Float,
        ResourceClass::Integer,
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            ResourceClass::Issue => 0,
            ResourceClass::Memory => 1,
            ResourceClass::Float => 2,
            ResourceClass::Integer => 3,
        }
    }
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceClass::Issue => "issue",
            ResourceClass::Memory => "mem",
            ResourceClass::Float => "fp",
            ResourceClass::Integer => "int",
        };
        f.write_str(s)
    }
}

/// One resource requirement of an operation: `count` units of `class` at
/// each cycle offset in `0..duration` relative to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Which unit class is reserved.
    pub class: ResourceClass,
    /// For how many consecutive cycles, starting at the issue cycle. Fully
    /// pipelined operations use 1; the R8000's divide blocks its FP pipe.
    pub duration: u32,
}

/// An immutable machine description.
///
/// Construct with [`Machine::r8000`] or via [`MachineBuilder`] for ablation
/// configurations (wider issue, un-banked memory, different latencies).
///
/// # Examples
///
/// ```
/// use swp_machine::{Machine, OpClass, ResourceClass};
/// let m = Machine::r8000();
/// assert_eq!(m.units(ResourceClass::Float), 2);
/// let res = m.reservations(OpClass::FDiv);
/// assert!(res.iter().any(|r| r.duration > 1), "divide is unpipelined");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    name: String,
    issue_width: u32,
    units: [u32; 4],
    latency: [u32; 12],
    occupancy: [u32; 12],
    regs: Vec<RegFile>,
    banks: Option<BankModel>,
}

impl Machine {
    /// The default model of the MIPS R8000 used throughout the reproduction.
    ///
    /// Parameters (documented in DESIGN.md §5): 4-issue; 2 memory, 2 FP and
    /// 2 integer pipes; FP arithmetic latency 4 (fully pipelined, including
    /// madd); load latency 4 (streaming second-level cache); unpipelined
    /// divide (latency 14, occupancy 11) and sqrt (latency 20, occupancy 17);
    /// 32 FP registers (31 allocatable) and 32 integer registers (24
    /// allocatable after ABI reservations); even/odd double-word banks with a
    /// one-entry bellows queue.
    pub fn r8000() -> Machine {
        MachineBuilder::new("r8000").build()
    }

    /// A variant of [`Machine::r8000`] with the banked memory system
    /// replaced by an ideal (conflict-free) memory. Used by experiments that
    /// isolate the memory-bank effects (Figures 4 and 5).
    pub fn r8000_unbanked() -> Machine {
        MachineBuilder::new("r8000-unbanked")
            .banked_memory(false)
            .build()
    }

    /// Machine name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum operations issued per cycle.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// Number of functional units of a class.
    pub fn units(&self, class: ResourceClass) -> u32 {
        self.units[class.index()]
    }

    /// Result latency of an operation class: the number of cycles before a
    /// dependent operation may issue. Always at least 1.
    pub fn latency(&self, op: OpClass) -> u32 {
        self.latency[op_index(op)]
    }

    /// The resource reservations of an operation class: one issue slot plus
    /// `occupancy` cycles on its pipe.
    pub fn reservations(&self, op: OpClass) -> Vec<Reservation> {
        let pipe = pipe_of(op);
        vec![
            Reservation {
                class: ResourceClass::Issue,
                duration: 1,
            },
            Reservation {
                class: pipe,
                duration: self.occupancy[op_index(op)],
            },
        ]
    }

    /// Register files, one per [`RegClass`].
    pub fn reg_files(&self) -> &[RegFile] {
        &self.regs
    }

    /// Allocatable register count for a class.
    pub fn allocatable(&self, class: RegClass) -> u32 {
        self.regs
            .iter()
            .find(|f| f.class() == class)
            .map_or(0, RegFile::allocatable)
    }

    /// The banked-memory model, if this machine has one.
    pub fn bank_model(&self) -> Option<&BankModel> {
        self.banks.as_ref()
    }

    /// A loose per-iteration resource lower bound on II for an op-class
    /// histogram: `max_r ceil(uses_r / units_r)` (the ResMII component of
    /// MinII, \[RaGl81\]). Unpipelined ops contribute their full occupancy.
    ///
    /// `counts` maps each [`OpClass`] to the number of such operations in
    /// the loop body.
    pub fn res_mii(&self, counts: &[(OpClass, u32)]) -> u32 {
        let mut usage = [0u64; 4];
        for &(op, n) in counts {
            usage[ResourceClass::Issue.index()] += u64::from(n);
            usage[pipe_of(op).index()] += u64::from(n) * u64::from(self.occupancy[op_index(op)]);
        }
        let mut ii = 1;
        for class in ResourceClass::ALL {
            let units = u64::from(self.units(class)).max(1);
            let need = usage[class.index()].div_ceil(units);
            ii = ii.max(need as u32);
        }
        ii
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::r8000()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}-issue, mem={}, fp={}, int={}, banks={})",
            self.name,
            self.issue_width,
            self.units[1],
            self.units[2],
            self.units[3],
            if self.banks.is_some() {
                "even/odd"
            } else {
                "ideal"
            }
        )
    }
}

fn op_index(op: OpClass) -> usize {
    OpClass::ALL
        .iter()
        .position(|&c| c == op)
        .expect("op class in table")
}

fn pipe_of(op: OpClass) -> ResourceClass {
    if op.is_memory() {
        ResourceClass::Memory
    } else if op.is_float() {
        ResourceClass::Float
    } else {
        ResourceClass::Integer
    }
}

/// Builder for custom machine configurations.
///
/// # Examples
///
/// ```
/// use swp_machine::{MachineBuilder, OpClass, ResourceClass};
/// let wide = MachineBuilder::new("wide8")
///     .issue_width(8)
///     .units(ResourceClass::Float, 4)
///     .latency(OpClass::FAdd, 2)
///     .build();
/// assert_eq!(wide.issue_width(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Start from the R8000 defaults under the given name.
    pub fn new(name: &str) -> MachineBuilder {
        // Index order must match OpClass::ALL:
        // Load Store FAdd FMul FMadd FDiv FSqrt FCmp CMov IntAlu IntMul Copy
        let latency = [4, 1, 4, 4, 4, 14, 20, 1, 1, 1, 4, 1];
        let occupancy = [1, 1, 1, 1, 1, 11, 17, 1, 1, 1, 1, 1];
        MachineBuilder {
            machine: Machine {
                name: name.to_owned(),
                issue_width: 4,
                units: [4, 2, 2, 2],
                latency,
                occupancy,
                regs: vec![
                    RegFile::new(RegClass::Float, 32, 31),
                    RegFile::new(RegClass::Int, 32, 24),
                ],
                banks: Some(BankModel::r8000()),
            },
        }
    }

    /// Set the issue width (also the `Issue` resource count).
    pub fn issue_width(&mut self, w: u32) -> &mut MachineBuilder {
        assert!(w > 0, "issue width must be positive");
        self.machine.issue_width = w;
        self.machine.units[ResourceClass::Issue.index()] = w;
        self
    }

    /// Set the unit count of a resource class.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `class` is [`ResourceClass::Issue`] (use
    /// [`MachineBuilder::issue_width`]).
    pub fn units(&mut self, class: ResourceClass, n: u32) -> &mut MachineBuilder {
        assert!(n > 0, "unit count must be positive");
        assert!(
            class != ResourceClass::Issue,
            "set issue width via issue_width()"
        );
        self.machine.units[class.index()] = n;
        self
    }

    /// Set the result latency of an op class (min 1).
    pub fn latency(&mut self, op: OpClass, cycles: u32) -> &mut MachineBuilder {
        self.machine.latency[op_index(op)] = cycles.max(1);
        self
    }

    /// Set the pipe occupancy of an op class (1 = fully pipelined).
    pub fn occupancy(&mut self, op: OpClass, cycles: u32) -> &mut MachineBuilder {
        self.machine.occupancy[op_index(op)] = cycles.max(1);
        self
    }

    /// Set the allocatable register count of a class.
    pub fn allocatable(&mut self, class: RegClass, n: u32) -> &mut MachineBuilder {
        for f in &mut self.machine.regs {
            if f.class() == class {
                *f = RegFile::new(class, f.total().max(n), n);
            }
        }
        self
    }

    /// Enable or disable the banked memory system.
    pub fn banked_memory(&mut self, enabled: bool) -> &mut MachineBuilder {
        self.machine.banks = if enabled {
            Some(BankModel::r8000())
        } else {
            None
        };
        self
    }

    /// Finish the build.
    pub fn build(&self) -> Machine {
        self.machine.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_r8000() {
        assert_eq!(Machine::default(), Machine::r8000());
    }

    #[test]
    fn res_mii_memory_bound() {
        let m = Machine::r8000();
        // 8 loads on 2 memory pipes: at least 4 cycles per iteration.
        assert_eq!(m.res_mii(&[(OpClass::Load, 8)]), 4);
    }

    #[test]
    fn res_mii_issue_bound() {
        let m = Machine::r8000();
        // 4 loads + 4 fadds + 4 ialu = 12 ops on 4-issue: at least 3.
        let counts = [(OpClass::Load, 4), (OpClass::FAdd, 4), (OpClass::IntAlu, 4)];
        assert_eq!(m.res_mii(&counts), 3);
    }

    #[test]
    fn res_mii_unpipelined_divide() {
        let m = Machine::r8000();
        // 2 divides on 2 FP pipes, each blocking 11 cycles: ceil(22/2)=11.
        assert_eq!(m.res_mii(&[(OpClass::FDiv, 2)]), 11);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineBuilder::new("t")
            .latency(OpClass::Load, 6)
            .occupancy(OpClass::FDiv, 1)
            .build();
        assert_eq!(m.latency(OpClass::Load), 6);
        assert!(m
            .reservations(OpClass::FDiv)
            .iter()
            .all(|r| r.duration == 1));
    }

    #[test]
    fn unbanked_has_no_bank_model() {
        assert!(Machine::r8000_unbanked().bank_model().is_none());
        assert!(Machine::r8000().bank_model().is_some());
    }

    #[test]
    fn every_class_has_reservation_on_its_pipe() {
        let m = Machine::r8000();
        for op in OpClass::ALL {
            let res = m.reservations(op);
            assert_eq!(res[0].class, ResourceClass::Issue);
            assert_eq!(res.len(), 2);
        }
    }
}
