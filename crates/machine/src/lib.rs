//! R8000-like machine model for the Software Pipelining Showdown reproduction.
//!
//! The paper targets the MIPS R8000 ("TFP", \[Hsu94\]): an in-order 4-issue
//! superscalar with fully pipelined floating-point and memory operations and
//! a two-banked second-level cache. This crate captures the *architectural
//! parameters the paper's effects depend on*:
//!
//! - issue width and per-class functional unit counts,
//! - operation latencies and reservation tables (including unpipelined
//!   divide, which the paper calls out as hard to schedule),
//! - register file sizes per class,
//! - the even/odd double-word memory-bank geometry and the one-entry
//!   *bellows* queue.
//!
//! # Examples
//!
//! ```
//! use swp_machine::{Machine, OpClass, ResourceClass};
//!
//! let m = Machine::r8000();
//! assert_eq!(m.issue_width(), 4);
//! assert_eq!(m.latency(OpClass::FAdd), 4);
//! assert_eq!(m.units(ResourceClass::Memory), 2);
//! ```

mod banks;
mod machine;
mod ops;
mod regs;

pub use banks::{Bank, BankModel, Bellows};
pub use machine::{Machine, MachineBuilder, Reservation, ResourceClass};
pub use ops::OpClass;
pub use regs::{RegClass, RegFile};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r8000_is_four_issue() {
        assert_eq!(Machine::r8000().issue_width(), 4);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Machine>();
        assert_send_sync::<BankModel>();
    }
}
