//! The R8000's two-banked streaming cache and its *bellows* queue.
//!
//! §2.9 of the paper: the second-level cache is divided into two banks of
//! double-words (even and odd addresses). Two references in one cycle to
//! opposite banks are both serviced immediately; two to the same bank put
//! one into a one-element queue (the bellows); if the bellows is already
//! full the processor stalls.

use std::fmt;

/// Which memory bank a double-word address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bank {
    /// Even double-word addresses (bit 3 of the byte address clear).
    Even,
    /// Odd double-word addresses (bit 3 of the byte address set).
    Odd,
}

impl Bank {
    /// The opposite bank.
    pub fn other(self) -> Bank {
        match self {
            Bank::Even => Bank::Odd,
            Bank::Odd => Bank::Even,
        }
    }
}

impl fmt::Display for Bank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bank::Even => "even",
            Bank::Odd => "odd",
        })
    }
}

/// Geometry of the banked memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankModel {
    /// log2 of the bank interleave granule in bytes (3 = double-word).
    granule_log2: u32,
}

impl BankModel {
    /// The R8000 geometry: double-word (8-byte) interleave.
    pub fn r8000() -> BankModel {
        BankModel { granule_log2: 3 }
    }

    /// Bank of a byte address.
    ///
    /// # Examples
    ///
    /// ```
    /// use swp_machine::{Bank, BankModel};
    /// let m = BankModel::r8000();
    /// assert_eq!(m.bank_of(0), Bank::Even);
    /// assert_eq!(m.bank_of(8), Bank::Odd);
    /// assert_eq!(m.bank_of(16), Bank::Even);
    /// ```
    pub fn bank_of(&self, addr: u64) -> Bank {
        if (addr >> self.granule_log2) & 1 == 0 {
            Bank::Even
        } else {
            Bank::Odd
        }
    }

    /// Interleave granule in bytes (8 on the R8000).
    pub fn granule(&self) -> u64 {
        1 << self.granule_log2
    }
}

impl Default for BankModel {
    fn default() -> BankModel {
        BankModel::r8000()
    }
}

/// Dynamic state of the one-element bellows queue.
///
/// Drive it one cycle at a time with the set of banks referenced that cycle;
/// it reports how many stall cycles the reference pattern induces. This is
/// the exact model the simulator uses, exposed here so schedulers and tests
/// can evaluate candidate reference patterns cheaply.
///
/// # Examples
///
/// ```
/// use swp_machine::{Bank, Bellows};
/// let mut b = Bellows::new();
/// // Same-bank pair: absorbed by the bellows, no stall yet.
/// assert_eq!(b.cycle(&[Bank::Even, Bank::Even]), 0);
/// // Another same-bank pair while the bellows is full: one stall cycle.
/// assert_eq!(b.cycle(&[Bank::Even, Bank::Even]), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bellows {
    queued: Option<Bank>,
}

impl Bellows {
    /// A bellows with an empty queue.
    pub fn new() -> Bellows {
        Bellows::default()
    }

    /// Whether a reference is waiting in the queue.
    pub fn is_occupied(&self) -> bool {
        self.queued.is_some()
    }

    /// Advance one cycle in which `refs` banks are referenced (at most two
    /// on the R8000, but the model accepts any number for wider machines).
    /// Returns the number of stall cycles incurred before the cycle's
    /// references are accepted.
    ///
    /// Per-cycle service model: each bank can service one reference per
    /// cycle; the queued reference (if any) is serviced first on its bank;
    /// one overflow reference can be queued; further overflow stalls one
    /// cycle per reference (during which banks drain).
    pub fn cycle(&mut self, refs: &[Bank]) -> u32 {
        let mut even: u32 = refs.iter().filter(|b| **b == Bank::Even).count() as u32;
        let mut odd: u32 = refs.iter().filter(|b| **b == Bank::Odd).count() as u32;
        let mut stalls = 0;

        // The queued reference consumes its bank's service slot this cycle.
        let mut even_cap = 1u32;
        let mut odd_cap = 1u32;
        if let Some(q) = self.queued.take() {
            match q {
                Bank::Even => even_cap = 0,
                Bank::Odd => odd_cap = 0,
            }
        }

        loop {
            let served_even = even.min(even_cap);
            let served_odd = odd.min(odd_cap);
            even -= served_even;
            odd -= served_odd;
            let overflow = even + odd;
            if overflow == 0 {
                break;
            }
            if overflow == 1 {
                // One leftover reference fits in the bellows.
                self.queued = Some(if even == 1 { Bank::Even } else { Bank::Odd });
                break;
            }
            // More than one leftover: stall a cycle; both banks free up.
            stalls += 1;
            even_cap = 1;
            odd_cap = 1;
        }
        stalls
    }

    /// Reset the queue (e.g. at a loop boundary in analytical models).
    pub fn reset(&mut self) {
        self.queued = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_banks_never_stall() {
        let mut b = Bellows::new();
        for _ in 0..100 {
            assert_eq!(b.cycle(&[Bank::Even, Bank::Odd]), 0);
            assert!(!b.is_occupied());
        }
    }

    #[test]
    fn worst_case_half_speed() {
        // Two same-bank refs every cycle: after the bellows fills, one stall
        // per cycle (the paper's "ends up running at half speed").
        let mut b = Bellows::new();
        let mut stalls = 0;
        for _ in 0..101 {
            stalls += b.cycle(&[Bank::Even, Bank::Even]);
        }
        assert_eq!(stalls, 100);
    }

    #[test]
    fn single_reference_stream_never_stalls() {
        let mut b = Bellows::new();
        for i in 0..100u64 {
            let bank = BankModel::r8000().bank_of(i * 8);
            assert_eq!(b.cycle(&[bank]), 0);
        }
    }

    #[test]
    fn queued_reference_drains_in_idle_cycle() {
        let mut b = Bellows::new();
        assert_eq!(b.cycle(&[Bank::Even, Bank::Even]), 0);
        assert!(b.is_occupied());
        assert_eq!(b.cycle(&[]), 0);
        assert!(!b.is_occupied());
    }

    #[test]
    fn bank_of_alternates_by_doubleword() {
        let m = BankModel::r8000();
        assert_eq!(m.granule(), 8);
        assert_eq!(m.bank_of(0), m.bank_of(4)); // same double-word
        assert_ne!(m.bank_of(0), m.bank_of(8));
    }
}
