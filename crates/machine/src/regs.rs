//! Register classes and register files.

use std::fmt;

/// Architectural register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Floating-point registers (`$f0..$f31` on the R8000).
    Float,
    /// Integer registers (`$0..$31`; several reserved by the ABI).
    Int,
}

impl RegClass {
    /// Both register classes.
    pub const ALL: [RegClass; 2] = [RegClass::Float, RegClass::Int];
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegClass::Float => "fp",
            RegClass::Int => "int",
        })
    }
}

/// A register file: total architectural registers and how many the register
/// allocator may use for loop values (the rest are reserved for the ABI,
/// loop control, and spill addressing, as in the MIPSpro compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegFile {
    class: RegClass,
    total: u32,
    allocatable: u32,
}

impl RegFile {
    /// Create a register file description.
    ///
    /// # Panics
    ///
    /// Panics if `allocatable > total`.
    pub fn new(class: RegClass, total: u32, allocatable: u32) -> RegFile {
        assert!(
            allocatable <= total,
            "allocatable registers exceed file size"
        );
        RegFile {
            class,
            total,
            allocatable,
        }
    }

    /// The class this file holds.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Total architectural registers.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Registers available to the allocator.
    pub fn allocatable(&self) -> u32 {
        self.allocatable
    }
}

impl fmt::Display for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} of {}]", self.class, self.allocatable, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regfile_invariant() {
        let f = RegFile::new(RegClass::Float, 32, 31);
        assert_eq!(f.allocatable(), 31);
        assert_eq!(f.total(), 32);
    }

    #[test]
    #[should_panic(expected = "allocatable")]
    fn regfile_rejects_bad_counts() {
        let _ = RegFile::new(RegClass::Int, 8, 9);
    }
}
