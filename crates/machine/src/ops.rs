//! Operation classes understood by the machine model.

use std::fmt;

/// Architectural class of an operation.
///
/// The loop IR maps its richer opcode set onto these classes; the machine
/// model assigns each class a latency and a reservation table. The split
/// mirrors how the MIPSpro scheduler only cares about resource usage and
/// latency, not the semantic identity of an operation.
///
/// # Examples
///
/// ```
/// use swp_machine::OpClass;
/// assert!(OpClass::FDiv.is_float());
/// assert!(OpClass::Load.is_memory());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Floating-point or integer load (memory pipe).
    Load,
    /// Store (memory pipe, produces no register result).
    Store,
    /// Floating-point add/subtract (fully pipelined).
    FAdd,
    /// Floating-point multiply (fully pipelined).
    FMul,
    /// Fused multiply-add (fully pipelined; the R8000's signature op).
    FMadd,
    /// Floating-point divide (unpipelined: blocks its unit for several
    /// cycles — the paper's "operations that are not fully pipelined").
    FDiv,
    /// Floating-point square root (unpipelined, like divide).
    FSqrt,
    /// Floating-point compare (sets a condition value).
    FCmp,
    /// Conditional move, the target of if-conversion (§2.1 of the paper).
    CMov,
    /// Integer ALU operation (adds, address arithmetic, shifts).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Register-to-register copy (either class).
    Copy,
}

impl OpClass {
    /// All operation classes, in a fixed order.
    pub const ALL: [OpClass; 12] = [
        OpClass::Load,
        OpClass::Store,
        OpClass::FAdd,
        OpClass::FMul,
        OpClass::FMadd,
        OpClass::FDiv,
        OpClass::FSqrt,
        OpClass::FCmp,
        OpClass::CMov,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::Copy,
    ];

    /// Whether this class executes on a memory pipe.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this class executes on a floating-point pipe.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            OpClass::FAdd
                | OpClass::FMul
                | OpClass::FMadd
                | OpClass::FDiv
                | OpClass::FSqrt
                | OpClass::FCmp
                | OpClass::CMov
        )
    }

    /// Whether this class executes on an integer pipe.
    pub fn is_integer(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul | OpClass::Copy)
    }

    /// Whether the op produces a register result.
    pub fn has_result(self) -> bool {
        !matches!(self, OpClass::Store)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::FAdd => "fadd",
            OpClass::FMul => "fmul",
            OpClass::FMadd => "fmadd",
            OpClass::FDiv => "fdiv",
            OpClass::FSqrt => "fsqrt",
            OpClass::FCmp => "fcmp",
            OpClass::CMov => "cmov",
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::Copy => "copy",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition() {
        for c in OpClass::ALL {
            let n = usize::from(c.is_memory())
                + usize::from(c.is_float())
                + usize::from(c.is_integer());
            assert_eq!(n, 1, "{c} must belong to exactly one pipe class");
        }
    }

    #[test]
    fn stores_have_no_result() {
        assert!(!OpClass::Store.has_result());
        assert!(OpClass::Load.has_result());
    }

    #[test]
    fn display_is_nonempty() {
        for c in OpClass::ALL {
            assert!(!c.to_string().is_empty());
        }
    }
}
