//! Experiment implementations for every figure and table of the paper.
//!
//! Each `fig*`/`tab*` function returns structured data; the `experiments`
//! binary renders them as the paper's rows, and the Criterion benches wrap
//! the hot paths. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes.

use showdown::{
    audit_suite_with, compare_with, geometric_mean, ladder_suite_with, run_suite_baseline_with,
    run_suite_with, ChaosFault, ChaosOptions, CompileError, CompileOptions, Corruption, Driver,
    LadderOptions, OptLevel, Rung, SchedulerChoice, Severity, SuiteAudit, SuiteLadder, VerifyLevel,
};
use std::time::{Duration, Instant};
use swp_heur::{HeurOptions, PriorityHeuristic};
use swp_kernels::{livermore, spec_suites, GenParams, Suite, WeightedLoop};
use swp_machine::Machine;
use swp_most::MostOptions;
use swp_obs::{Counter, Telemetry};
use swp_sat::SatOptions;

/// Experiment sizing: `quick` shrinks ILP budgets and trip counts so the
/// whole harness runs in CI time; `full` uses paper-scale settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small budgets (tests, Criterion).
    Quick,
    /// Paper-scale budgets (the experiments binary).
    Full,
}

impl Effort {
    /// MOST options for this effort level.
    ///
    /// `Quick` is **fully deterministic**: its budgets are node and pivot
    /// counts only, with every wall-clock limit disabled, so quick-effort
    /// results (tests, CI gates, the schedule cache) are identical on any
    /// host at any load. `Full` keeps the paper's wall-clock regime —
    /// results that truncate there carry `deadline_hit` and are not
    /// memoized.
    pub fn most_options(self) -> MostOptions {
        match self {
            Effort::Quick => MostOptions {
                node_limit: 20_000,
                pivot_limit: 400_000,
                time_limit: None,
                loop_time_limit: None,
                // The deterministic ladder cap: ~3 full solves' worth of
                // pivots across all IIs tried for one loop, so a loop
                // whose schedules keep failing allocation cannot grind
                // through every II to MaxII at full budget.
                loop_pivot_limit: Some(1_200_000),
                max_ops: 64,
                ..MostOptions::default()
            },
            Effort::Full => MostOptions {
                node_limit: 2_000_000,
                time_limit: Some(Duration::from_secs(10)),
                loop_time_limit: Some(Duration::from_secs(120)),
                ..MostOptions::default()
            },
        }
    }

    /// SAT options for this effort level, same determinism contract as
    /// [`Effort::most_options`]: `Quick` is conflict/propagation-counted
    /// only, `Full` keeps wall clocks.
    pub fn sat_options(self) -> SatOptions {
        match self {
            Effort::Quick => SatOptions {
                conflict_limit: 20_000,
                propagation_limit: 2_000_000,
                time_limit: None,
                loop_time_limit: None,
                loop_conflict_limit: Some(60_000),
                max_ops: 64,
                ..SatOptions::default()
            },
            Effort::Full => SatOptions {
                conflict_limit: 2_000_000,
                time_limit: Some(Duration::from_secs(10)),
                loop_time_limit: Some(Duration::from_secs(120)),
                ..SatOptions::default()
            },
        }
    }

    fn trip_scale(self) -> u64 {
        match self {
            Effort::Quick => 4,
            Effort::Full => 1,
        }
    }
}

/// The SPEC-like suites with trip counts scaled to the effort level.
fn scaled_suites(effort: Effort) -> Vec<Suite> {
    let mut suites = spec_suites();
    for suite in &mut suites {
        for l in &mut suite.loops {
            l.trip = (l.trip / effort.trip_scale()).max(8);
        }
    }
    suites
}

/// A plain sequential, uncached driver — the reference configuration the
/// `fig*` wrappers use, so their behavior matches the pre-driver harness
/// exactly (every compile from scratch, suite order, one thread).
fn reference_driver() -> Driver {
    Driver::uncached(1)
}

/// One row of Figure 2: SPECmark-style ratio of baseline to pipelined
/// time (pipelining speedup; > 1 means pipelining wins).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// Simulated time with pipelining disabled.
    pub baseline_time: f64,
    /// Simulated time with the heuristic pipeliner.
    pub pipelined_time: f64,
}

impl Fig2Row {
    /// Speedup from enabling software pipelining.
    pub fn speedup(&self) -> f64 {
        self.baseline_time / self.pipelined_time.max(1e-12)
    }
}

/// Figure 2: SPEC-like suites with pipelining enabled vs disabled.
pub fn fig2(machine: &Machine, effort: Effort) -> Vec<Fig2Row> {
    fig2_with(&reference_driver(), machine, effort)
}

/// [`fig2`] over a [`Driver`]: suites fan across the pool; each suite's
/// inner loops run on a sequential view sharing the driver's cache.
pub fn fig2_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<Fig2Row> {
    let suites = scaled_suites(effort);
    driver.run_indexed(suites.len(), |i| {
        let suite = &suites[i];
        let inner = driver.sequential_view();
        let base = run_suite_baseline_with(&inner, suite, machine);
        let pipe = run_suite_with(&inner, suite, machine, &SchedulerChoice::Heuristic)
            .expect("every suite loop pipelines");
        Fig2Row {
            name: suite.name.to_owned(),
            baseline_time: base.time,
            pipelined_time: pipe.time,
        }
    })
}

/// Geometric-mean speedup over Figure 2 rows.
pub fn fig2_geomean(rows: &[Fig2Row]) -> f64 {
    geometric_mean(&rows.iter().map(Fig2Row::speedup).collect::<Vec<_>>())
}

/// One row of Figure 3: per-suite time ratio of each single heuristic
/// against all four (1.0 = as good as the full set; < 1 = slower).
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Benchmark name.
    pub name: String,
    /// Ratio (all-four time / single-heuristic time) per heuristic, in
    /// [`PriorityHeuristic::ALL`] order.
    pub ratios: [f64; 4],
}

/// Figure 3: the effect of restricting to one scheduling heuristic.
/// Loops the restricted pipeliner cannot handle fall back to the
/// list-scheduled baseline, exactly as the production compiler would.
pub fn fig3(machine: &Machine, effort: Effort) -> Vec<Fig3Row> {
    fig3_with(&reference_driver(), machine, effort)
}

/// [`fig3`] over a [`Driver`].
pub fn fig3_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<Fig3Row> {
    use swp_sim::{simulate, simulate_baseline};
    let suites = scaled_suites(effort);
    driver.run_indexed(suites.len(), |si| {
        let suite = &suites[si];
        let inner = driver.sequential_view();
        let suite_time = |choice: &SchedulerChoice| -> f64 {
            let cycles: Vec<f64> = suite
                .loops
                .iter()
                .map(|wl| match inner.compile(&wl.body, machine, choice) {
                    Ok(c) => simulate(&c.code, wl.trip, machine).cycles as f64,
                    Err(_) => {
                        let base = showdown::compile_baseline(&wl.body, machine);
                        simulate_baseline(&base, wl.trip, machine).cycles as f64
                    }
                })
                .collect();
            suite.aggregate_time(&cycles)
        };
        let all = suite_time(&SchedulerChoice::Heuristic);
        let mut ratios = [0.0f64; 4];
        for (i, h) in PriorityHeuristic::ALL.iter().enumerate() {
            let opts = HeurOptions {
                heuristics: vec![*h],
                ..HeurOptions::default()
            };
            ratios[i] = all / suite_time(&SchedulerChoice::HeuristicWith(opts));
        }
        Fig3Row {
            name: suite.name.to_owned(),
            ratios,
        }
    })
}

/// One row of Figure 4: performance improvement from the memory-bank
/// pairing heuristics (> 1 = banks heuristic helps).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: String,
    /// Time with the heuristic disabled / time with it enabled.
    pub improvement: f64,
}

/// Figure 4: memory-bank heuristic on vs off.
pub fn fig4(machine: &Machine, effort: Effort) -> Vec<Fig4Row> {
    fig4_with(&reference_driver(), machine, effort)
}

/// [`fig4`] over a [`Driver`].
pub fn fig4_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<Fig4Row> {
    let suites = scaled_suites(effort);
    driver.run_indexed(suites.len(), |i| {
        let suite = &suites[i];
        let inner = driver.sequential_view();
        let on = run_suite_with(&inner, suite, machine, &SchedulerChoice::Heuristic)
            .expect("pipelines")
            .time;
        let off_opts = HeurOptions {
            bank_pairing: false,
            explore_stalls: false,
            ..HeurOptions::default()
        };
        let off = run_suite_with(
            &inner,
            suite,
            machine,
            &SchedulerChoice::HeuristicWith(off_opts),
        )
        .expect("pipelines")
        .time;
        Fig4Row {
            name: suite.name.to_owned(),
            improvement: off / on,
        }
    })
}

/// One row of Figure 5: ILP-scheduled code relative to MIPSpro, with the
/// SGI bank pairing enabled (solid bars) and disabled (striped bars).
/// Values > 1 mean the ILP code is faster.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: String,
    /// heuristic-time / ILP-time, SGI bank pairing on.
    pub vs_pairing: f64,
    /// heuristic-time / ILP-time, SGI bank pairing off.
    pub vs_no_pairing: f64,
    /// Fraction of suite loops where MOST fell back to the heuristic.
    pub fallback_fraction: f64,
}

/// Figure 5: the showdown — ILP vs heuristic on the SPEC-like suites.
pub fn fig5(machine: &Machine, effort: Effort) -> Vec<Fig5Row> {
    fig5_with(&reference_driver(), machine, effort)
}

/// [`fig5`] over a [`Driver`]. The per-loop fallback recount recompiles
/// every loop with the same MOST options as the suite run, so under a
/// caching driver that whole pass is served from the cache.
pub fn fig5_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<Fig5Row> {
    let most = SchedulerChoice::IlpWith(effort.most_options());
    let suites = scaled_suites(effort);
    driver.run_indexed(suites.len(), |i| {
        let suite = &suites[i];
        let inner = driver.sequential_view();
        let ilp = run_suite_with(&inner, suite, machine, &most).expect("most with fallback");
        let heur_on = run_suite_with(&inner, suite, machine, &SchedulerChoice::Heuristic)
            .expect("pipelines")
            .time;
        let off_opts = HeurOptions {
            bank_pairing: false,
            explore_stalls: false,
            ..HeurOptions::default()
        };
        let heur_off = run_suite_with(
            &inner,
            suite,
            machine,
            &SchedulerChoice::HeuristicWith(off_opts),
        )
        .expect("pipelines")
        .time;
        // Count fallbacks by recompiling each loop individually.
        let mut fallbacks = 0usize;
        for wl in &suite.loops {
            if let Ok(c) = inner.compile(&wl.body, machine, &most) {
                fallbacks += usize::from(c.stats.fell_back);
            }
        }
        Fig5Row {
            name: suite.name.to_owned(),
            vs_pairing: heur_on / ilp.time,
            vs_no_pairing: heur_off / ilp.time,
            fallback_fraction: fallbacks as f64 / suite.loops.len() as f64,
        }
    })
}

/// One row of Figure 6 / Figure 7: a Livermore kernel compared across
/// schedulers.
#[derive(Debug, Clone)]
pub struct LivermoreRow {
    /// Kernel number (1-24).
    pub number: u32,
    /// Kernel name.
    pub name: &'static str,
    /// heuristic/ILP cycle ratio at the short trip count (Fig. 6).
    pub relative_short: f64,
    /// heuristic/ILP cycle ratio at the long trip count (Fig. 6).
    pub relative_long: f64,
    /// MIPSpro − ILP total registers (Fig. 7).
    pub reg_delta: i64,
    /// MIPSpro − ILP overhead cycles (Fig. 7).
    pub overhead_delta: i64,
    /// Whether both schedulers reached the same II.
    pub same_ii: bool,
    /// Whether MOST fell back.
    pub ilp_fell_back: bool,
}

/// Figures 6 and 7: per-Livermore-kernel comparison.
pub fn fig6_fig7(machine: &Machine, effort: Effort) -> Vec<LivermoreRow> {
    fig6_fig7_with(&reference_driver(), machine, effort)
}

/// [`fig6_fig7`] over a [`Driver`]: kernels fan across the pool.
pub fn fig6_fig7_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<LivermoreRow> {
    let most = SchedulerChoice::IlpWith(effort.most_options());
    let kernels = livermore();
    driver.run_indexed(kernels.len(), |i| {
        let k = &kernels[i];
        let c = compare_with(
            driver,
            &k.body,
            machine,
            &SchedulerChoice::Heuristic,
            &most,
            k.short_trip,
            k.long_trip / effort.trip_scale().min(2),
        )
        .expect("both schedulers handle Livermore");
        LivermoreRow {
            number: k.number,
            name: k.name,
            relative_short: c.relative_short(),
            relative_long: c.relative_long(),
            reg_delta: c.reg_delta(),
            overhead_delta: c.overhead_delta(),
            same_ii: c.heuristic.ii == c.ilp.ii,
            ilp_fell_back: c.ilp.fell_back,
        }
    })
}

/// §4.7's compile-speed comparison over a set of loops.
#[derive(Debug, Clone, Copy)]
pub struct CompileSpeed {
    /// Wall-clock in the heuristic scheduler.
    pub heuristic: Duration,
    /// Wall-clock in the ILP scheduler (no fallback, so failures burn
    /// their full budget as in the paper's 3-minute limit).
    pub ilp: Duration,
    /// Loops measured.
    pub loops: usize,
}

impl CompileSpeed {
    /// The paper's ratio (67,634 s / 261 s ≈ 260×).
    pub fn ratio(&self) -> f64 {
        self.ilp.as_secs_f64() / self.heuristic.as_secs_f64().max(1e-9)
    }
}

/// Table (§4.7): total scheduling time, heuristic vs ILP.
pub fn compile_speed(machine: &Machine, effort: Effort) -> CompileSpeed {
    let loops: Vec<_> = spec_suites()
        .into_iter()
        .flat_map(|s| s.loops.into_iter().map(|l| l.body))
        .collect();
    let h0 = Instant::now();
    for lp in &loops {
        let _ = swp_heur::pipeline(lp, machine, &HeurOptions::default());
    }
    let heuristic = h0.elapsed();
    let most_opts = MostOptions {
        fallback: false,
        ..effort.most_options()
    };
    let i0 = Instant::now();
    for lp in &loops {
        let _ = swp_most::pipeline_most(lp, machine, &most_opts);
    }
    let ilp = i0.elapsed();
    CompileSpeed {
        heuristic,
        ilp,
        loops: loops.len(),
    }
}

/// §5.0's loop-size scalability: largest random loop each scheduler
/// handles within a fixed per-loop budget.
#[derive(Debug, Clone, Copy)]
pub struct LoopSize {
    /// Largest op count the heuristic scheduled.
    pub heuristic_max: usize,
    /// Largest op count MOST (no fallback) scheduled.
    pub most_max: usize,
}

/// Sweep loop sizes; per-loop budget fixed (the paper's 3-minute analogue).
pub fn loop_size(machine: &Machine, effort: Effort) -> LoopSize {
    let sizes: &[usize] = match effort {
        Effort::Quick => &[10, 20, 30, 45, 60, 80, 100, 116],
        Effort::Full => &[10, 20, 30, 45, 61, 80, 100, 116, 130],
    };
    let most_opts = MostOptions {
        fallback: false,
        ..effort.most_options()
    };
    let mut heuristic_max = 0;
    let mut most_max = 0;
    for &ops in sizes {
        let lp = swp_kernels::random_loop(
            &GenParams {
                ops,
                ..GenParams::default()
            },
            42,
        );
        if swp_heur::pipeline(&lp, machine, &HeurOptions::default()).is_ok() {
            heuristic_max = heuristic_max.max(lp.len());
        }
        if swp_most::pipeline_most(&lp, machine, &most_opts).is_ok() {
            most_max = most_max.max(lp.len());
        }
    }
    LoopSize {
        heuristic_max,
        most_max,
    }
}

/// §5.0's II comparison: on how many loops does each scheduler achieve a
/// strictly lower II?
#[derive(Debug, Clone, Copy, Default)]
pub struct IiCompare {
    /// Loops where the ILP II is strictly lower.
    pub ilp_wins: u32,
    /// Loops where the heuristic II is strictly lower (MOST timed out to a
    /// worse II or fell back at a higher one).
    pub heur_wins: u32,
    /// Equal IIs.
    pub ties: u32,
    /// ILP wins remaining after raising the heuristic backtrack budget
    /// (§5.0: "a very modest increase in the backtracking limits …
    /// equalized the situation").
    pub ilp_wins_after_budget_increase: u32,
}

/// Table (§5.0): II comparison over Livermore + suite loops.
pub fn ii_compare(machine: &Machine, effort: Effort) -> IiCompare {
    ii_compare_with(&reference_driver(), machine, effort)
}

/// [`ii_compare`] over a [`Driver`]. The MOST compiles use the same
/// options as Figure 5 (and the same loops), so in a shared-cache run
/// the entire suite-loop sweep is served from the cache; loops where
/// MOST fell back to the heuristic are excluded from the comparison,
/// which is equivalent to the fallback-disabled sweep (a fallback result
/// carries the heuristic's II, not MOST's).
pub fn ii_compare_with(driver: &Driver, machine: &Machine, effort: Effort) -> IiCompare {
    let most = SchedulerChoice::IlpWith(effort.most_options());
    let mut loops: Vec<swp_ir::Loop> = livermore().into_iter().map(|k| k.body).collect();
    loops.extend(
        spec_suites()
            .into_iter()
            .flat_map(|s| s.loops.into_iter().map(|l| l.body)),
    );
    let per_loop = driver.run_indexed(loops.len(), |li| {
        let lp = &loops[li];
        let Ok(h) = driver.compile(lp, machine, &SchedulerChoice::Heuristic) else {
            return None;
        };
        let Ok(i) = driver.compile(lp, machine, &most) else {
            return None;
        };
        if i.stats.fell_back {
            return None;
        }
        let mut won_after_increase = false;
        if i.stats.ii < h.stats.ii {
            // Retry with 16× backtrack budget.
            let big = HeurOptions {
                backtrack_budget: 6400,
                ..HeurOptions::default()
            };
            won_after_increase =
                match driver.compile(lp, machine, &SchedulerChoice::HeuristicWith(big)) {
                    Ok(h2) => h2.stats.ii > i.stats.ii,
                    Err(_) => true,
                };
        }
        Some((i.stats.ii.cmp(&h.stats.ii), won_after_increase))
    });
    let mut out = IiCompare::default();
    for (ord, won_after_increase) in per_loop.into_iter().flatten() {
        match ord {
            std::cmp::Ordering::Less => {
                out.ilp_wins += 1;
                out.ilp_wins_after_budget_increase += u32::from(won_after_increase);
            }
            std::cmp::Ordering::Greater => out.heur_wins += 1,
            std::cmp::Ordering::Equal => out.ties += 1,
        }
    }
    out
}

/// One figure's wall-clock under the sequential reference harness and
/// under the parallel cached [`Driver`].
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Figure name.
    pub figure: &'static str,
    /// Wall-clock of the sequential, uncached reference path.
    pub sequential: Duration,
    /// Wall-clock under the shared-cache parallel driver.
    pub parallel: Duration,
    /// Cache hits this figure contributed.
    pub hits: u64,
    /// Cache misses this figure contributed.
    pub misses: u64,
}

impl SpeedupRow {
    /// Sequential / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.parallel.as_secs_f64().max(1e-9)
    }

    /// Cache hits as a fraction of this figure's requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Measure the experiment pipeline end-to-end twice — once on the plain
/// sequential path (every figure recompiles from scratch, exactly as the
/// pre-driver harness did) and once on a shared-cache driver with the
/// given thread count — and report per-figure wall-clock and cache
/// counters. The figure set is the paper's result figures plus the §5.0
/// II comparison; the compile-*time* tables (§4.7, loop-size) are
/// excluded because memoizing a stopwatch measurement would be lying.
///
/// The driver pass runs Figure 5 first: it is by far the most expensive
/// figure and compiles every suite loop under every configuration the
/// cheaper figures need, so running it first lets the rest of the
/// pipeline reuse its work. The sequential reference keeps the display
/// order; per-figure totals are order-independent on that path because
/// nothing is shared.
pub fn driver_speedup(machine: &Machine, effort: Effort, threads: usize) -> Vec<SpeedupRow> {
    let reference = reference_driver();
    let driver = Driver::new(threads);
    type FigFn<'a> = Box<dyn Fn(&Driver) + 'a>;
    let mut figures: Vec<(&'static str, FigFn)> = vec![
        (
            "fig2",
            Box::new(|d: &Driver| drop(fig2_with(d, machine, effort))),
        ),
        (
            "fig3",
            Box::new(|d: &Driver| drop(fig3_with(d, machine, effort))),
        ),
        (
            "fig4",
            Box::new(|d: &Driver| drop(fig4_with(d, machine, effort))),
        ),
        (
            "fig5",
            Box::new(|d: &Driver| drop(fig5_with(d, machine, effort))),
        ),
        (
            "fig6_7",
            Box::new(|d: &Driver| drop(fig6_fig7_with(d, machine, effort))),
        ),
        (
            "ii_compare",
            Box::new(|d: &Driver| {
                let _ = ii_compare_with(d, machine, effort);
            }),
        ),
    ];
    let mut rows: Vec<SpeedupRow> = figures
        .iter()
        .map(|(figure, f)| {
            let t0 = Instant::now();
            f(&reference);
            SpeedupRow {
                figure,
                sequential: t0.elapsed(),
                parallel: Duration::ZERO,
                hits: 0,
                misses: 0,
            }
        })
        .collect();
    // Driver pass, most-expensive-first (see above).
    figures.sort_by_key(|(name, _)| *name != "fig5");
    for (figure, f) in &figures {
        let before = driver.cache_stats();
        let t0 = Instant::now();
        f(&driver);
        let parallel = t0.elapsed();
        let after = driver.cache_stats();
        let row = rows
            .iter_mut()
            .find(|r| r.figure == *figure)
            .expect("same figure set");
        row.parallel = parallel;
        row.hits = after.hits - before.hits;
        row.misses = after.misses - before.misses;
    }
    rows
}

/// One row of the `experiments audit` table: one suite under one
/// scheduler, with every loop compiled at [`VerifyLevel::Full`].
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// `"heuristic"` or `"ilp"`.
    pub scheduler: &'static str,
    /// Per-loop audit reports.
    pub audit: SuiteAudit,
}

impl AuditRow {
    /// Total findings across every loop, all severities.
    pub fn findings(&self) -> usize {
        self.audit
            .loops
            .iter()
            .map(|l| l.report.findings.len())
            .sum()
    }

    /// Findings at one severity across every loop.
    pub fn count(&self, severity: Severity) -> usize {
        self.audit.count(severity)
    }
}

/// The translation-validation sweep behind `experiments audit`: every
/// SPEC-like suite × both schedulers, each loop compiled at
/// [`VerifyLevel::Full`] so all four analyzers plus the IR lints run.
/// Suite rows come back grouped by suite, heuristic before ILP.
pub fn audit_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<AuditRow> {
    let schedulers: [(&'static str, SchedulerChoice); 2] = [
        ("heuristic", SchedulerChoice::Heuristic),
        ("ilp", SchedulerChoice::IlpWith(effort.most_options())),
    ];
    let suites = spec_suites();
    driver.run_indexed(suites.len() * schedulers.len(), |j| {
        let suite = &suites[j / schedulers.len()];
        let (name, choice) = &schedulers[j % schedulers.len()];
        let inner = driver.sequential_view();
        let options = CompileOptions {
            choice: choice.clone(),
            verify: VerifyLevel::Full,
            ..CompileOptions::default()
        };
        let audit =
            audit_suite_with(&inner, suite, machine, &options).expect("every suite loop compiles");
        AuditRow {
            scheduler: name,
            audit,
        }
    })
}

/// One chaos-injection scenario: a named fault pattern plus the
/// containment contract it must satisfy over a suite.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Display name (also the row label in `experiments chaos`).
    pub name: &'static str,
    /// The injected faults.
    pub chaos: ChaosOptions,
    /// Whether the scenario is *supposed* to quarantine every loop.
    /// Only the in-flight panic expects that: it fires outside rung
    /// isolation, so no rung can rescue it, and the contract is instead
    /// that every loop dies to a *structured* internal error (pool and
    /// cache intact) rather than tearing the run down.
    pub expect_quarantine: bool,
}

/// The committed scenario set behind `experiments chaos`: a quiet
/// control, then every fault class injected at every upper rung. Rung 4
/// is never injected — it is the rescue anchor whose totality all other
/// scenarios lean on, and corrupting the anchor would only prove that a
/// broken compiler is broken.
pub fn chaos_scenarios() -> Vec<ChaosScenario> {
    let upper = [Rung::Ilp, Rung::Sat, Rung::Heuristic, Rung::Escalated];
    let everywhere = |fault: ChaosFault| {
        upper
            .iter()
            .fold(ChaosOptions::default(), |c, &r| c.with_fault(r, fault))
    };
    vec![
        ChaosScenario {
            name: "control",
            chaos: ChaosOptions::default(),
            expect_quarantine: false,
        },
        ChaosScenario {
            name: "panic@0-3",
            chaos: everywhere(ChaosFault::Panic),
            expect_quarantine: false,
        },
        ChaosScenario {
            name: "exhaust@0-3",
            chaos: everywhere(ChaosFault::Exhaust),
            expect_quarantine: false,
        },
        ChaosScenario {
            name: "corrupt-time@0-3",
            chaos: everywhere(ChaosFault::Corrupt(Corruption::NegativeTime)),
            expect_quarantine: false,
        },
        ChaosScenario {
            name: "corrupt-mix@0-2",
            chaos: ChaosOptions::default()
                .with_fault(
                    Rung::Ilp,
                    ChaosFault::Corrupt(Corruption::ClobberedRegister),
                )
                .with_fault(Rung::Sat, ChaosFault::Corrupt(Corruption::NegativeTime))
                .with_fault(
                    Rung::Heuristic,
                    ChaosFault::Corrupt(Corruption::TamperedExpansion),
                ),
            expect_quarantine: false,
        },
        ChaosScenario {
            name: "panic-in-flight",
            chaos: ChaosOptions {
                panic_in_flight: true,
                ..ChaosOptions::default()
            },
            expect_quarantine: true,
        },
    ]
}

/// One row of the `experiments chaos` table: one suite under one
/// scenario, every loop sent down the degradation ladder.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// The scenario's containment contract (see [`ChaosScenario`]).
    pub expect_quarantine: bool,
    /// The suite's quarantine report.
    pub suite: SuiteLadder,
}

impl ChaosRow {
    /// Injected faults that escaped containment on this suite.
    pub fn escapes(&self) -> usize {
        self.suite.escapes()
    }

    /// Containment-contract violations: an escaped fault, a loop the
    /// ladder failed to rescue (or rescued with an unclean audit), or —
    /// for the in-flight-panic scenario — a loop that produced anything
    /// other than a structured internal error.
    pub fn violations(&self) -> usize {
        let broken = if self.expect_quarantine {
            self.suite
                .loops
                .iter()
                .filter(|l| !matches!(&l.outcome, Err(CompileError::Internal { rung: None, .. })))
                .count()
        } else {
            self.suite
                .loops
                .iter()
                .filter(|l| !matches!(&l.outcome, Ok(s) if s.clean))
                .count()
        };
        broken + self.escapes()
    }
}

/// The fault-injection sweep behind `experiments chaos`: every SPEC-like
/// suite × every committed scenario, fanned across the driver pool.
/// `ChaosOptions` is part of the schedule-cache key, so chaotic compiles
/// never pollute (or borrow from) quiet memoized results. Rows come
/// back grouped by suite, in [`chaos_scenarios`] order.
pub fn chaos_with(driver: &Driver, machine: &Machine, effort: Effort) -> Vec<ChaosRow> {
    let scenarios = chaos_scenarios();
    let suites = spec_suites();
    driver.run_indexed(suites.len() * scenarios.len(), |j| {
        let suite = &suites[j / scenarios.len()];
        let scenario = &scenarios[j % scenarios.len()];
        let inner = driver.sequential_view();
        let opts = LadderOptions {
            most: effort.most_options(),
            sat: effort.sat_options(),
            chaos: scenario.chaos.clone(),
            ..LadderOptions::default()
        };
        ChaosRow {
            scenario: scenario.name,
            expect_quarantine: scenario.expect_quarantine,
            suite: ladder_suite_with(&inner, suite, machine, &opts),
        }
    })
}

/// Rung usage summed over the control (fault-free) rows — the
/// EXPERIMENTS.md rung-usage table, indexed by [`Rung::index`].
pub fn chaos_rung_usage(rows: &[ChaosRow]) -> [usize; 5] {
    let mut usage = [0usize; 5];
    for r in rows.iter().filter(|r| r.scenario == "control") {
        for (u, n) in usage.iter_mut().zip(r.suite.rung_usage()) {
            *u += n;
        }
    }
    usage
}

/// One row of the `experiments portfolio` table: one suite (or the
/// Livermore kernel set) raced loop-by-loop, with every backend also
/// timed standalone under the same deterministic quick budgets.
#[derive(Debug, Clone)]
pub struct PortfolioRow {
    /// Suite name (`livermore` is the kernel set).
    pub name: String,
    /// Loops raced.
    pub loops: usize,
    /// Races the ILP backend won (highest priority).
    pub ilp_wins: usize,
    /// Races the SAT backend won (ILP failed within budget).
    pub sat_wins: usize,
    /// Races the heuristic won (both optimal backends failed).
    pub heur_wins: usize,
    /// Races every backend lost (portfolio error).
    pub no_winner: usize,
    /// Loops where both optimal backends succeeded standalone *and* SAT
    /// achieved ILP's II — the optimality-parity tally.
    pub sat_ii_matches: usize,
    /// Loops where both optimal backends succeeded standalone.
    pub both_optimal: usize,
    /// Races whose shipped code differed from the standalone result of
    /// the backend that should win by fixed priority. Must be zero: the
    /// race is deterministic by construction.
    pub determinism_violations: usize,
    /// Wall time of the races.
    pub portfolio_wall: Duration,
    /// Standalone wall time, ILP backend (no fallback).
    pub ilp_wall: Duration,
    /// Standalone wall time, SAT backend (no fallback).
    pub sat_wall: Duration,
    /// Standalone wall time, heuristic backend.
    pub heur_wall: Duration,
}

/// The `experiments portfolio` sweep: every SPEC-like figure suite plus
/// the Livermore kernels, each loop compiled four ways under the quick
/// deterministic budgets — each backend standalone (fallbacks off, so a
/// backend's failure is its own), then the three-way race. Standalone
/// compiles run sequentially and uncached so the wall clocks mean
/// something; the race's parallelism is internal to [`showdown::compile_portfolio`].
pub fn portfolio_sweep(machine: &Machine) -> Vec<PortfolioRow> {
    let driver = Driver::uncached(1);
    let mut sweeps: Vec<(String, Vec<swp_ir::Loop>)> = vec![(
        "livermore".into(),
        livermore().into_iter().map(|k| k.body).collect(),
    )];
    sweeps.extend(spec_suites().into_iter().map(|s| {
        (
            s.name.to_string(),
            s.loops.into_iter().map(|l| l.body).collect(),
        )
    }));

    let options = |choice: SchedulerChoice| CompileOptions {
        choice,
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: Telemetry::disabled(),
    };
    let race = SchedulerChoice::PortfolioWith(Box::new(showdown::PortfolioOptions {
        most: Effort::Quick.most_options(),
        sat: Effort::Quick.sat_options(),
        ..showdown::PortfolioOptions::default()
    }));

    sweeps
        .into_iter()
        .map(|(name, loops)| {
            let mut row = PortfolioRow {
                name,
                loops: loops.len(),
                ilp_wins: 0,
                sat_wins: 0,
                heur_wins: 0,
                no_winner: 0,
                sat_ii_matches: 0,
                both_optimal: 0,
                determinism_violations: 0,
                portfolio_wall: Duration::ZERO,
                ilp_wall: Duration::ZERO,
                sat_wall: Duration::ZERO,
                heur_wall: Duration::ZERO,
            };
            for lp in &loops {
                let mut timed =
                    |choice: SchedulerChoice, wall: fn(&mut PortfolioRow) -> &mut Duration| {
                        let t0 = Instant::now();
                        let r = driver.compile_with(lp, machine, &options(choice));
                        *wall(&mut row) += t0.elapsed();
                        r
                    };
                let ilp = timed(
                    SchedulerChoice::IlpWith(Effort::Quick.most_options().without_fallback()),
                    |r| &mut r.ilp_wall,
                );
                let sat = timed(
                    SchedulerChoice::SatWith(Effort::Quick.sat_options().without_fallback()),
                    |r| &mut r.sat_wall,
                );
                let heur = timed(SchedulerChoice::Heuristic, |r| &mut r.heur_wall);
                let raced = timed(race.clone(), |r| &mut r.portfolio_wall);

                if let (Ok(i), Ok(s)) = (&ilp, &sat) {
                    row.both_optimal += 1;
                    row.sat_ii_matches += usize::from(s.stats.ii == i.stats.ii);
                }
                // The backend that must win: highest fixed priority whose
                // standalone run succeeded. The race must ship its code.
                let expected = [
                    (&ilp, showdown::Rung::Ilp),
                    (&sat, showdown::Rung::Sat),
                    (&heur, showdown::Rung::Heuristic),
                ]
                .into_iter()
                .find_map(|(r, rung)| r.as_ref().ok().map(|c| (c, rung)));
                match (&raced, expected) {
                    (Ok(p), Some((standalone, rung))) => {
                        match rung {
                            showdown::Rung::Ilp => row.ilp_wins += 1,
                            showdown::Rung::Sat => row.sat_wins += 1,
                            _ => row.heur_wins += 1,
                        }
                        if p.rung != Some(rung) || p.code != standalone.code {
                            row.determinism_violations += 1;
                        }
                    }
                    (Err(_), None) => row.no_winner += 1,
                    // A race that disagrees with the standalone runs about
                    // whether the loop compiles at all is also a violation.
                    _ => row.determinism_violations += 1,
                }
            }
            row
        })
        .collect()
}

/// The `experiments portfolio -D` wall gate: racing three backends in
/// parallel must cost about as much wall time as the slowest backend
/// alone — never the sum of all three. The 50% + 500ms allowance
/// absorbs racer spawn/join and scheduler jitter on loaded CI hosts.
pub fn portfolio_wall_gate(rows: &[PortfolioRow]) -> bool {
    let raced: Duration = rows.iter().map(|r| r.portfolio_wall).sum();
    let slowest: Duration = rows
        .iter()
        .map(|r| r.ilp_wall.max(r.sat_wall).max(r.heur_wall))
        .sum();
    raced <= slowest.mul_f64(1.5) + Duration::from_millis(500)
}

/// One row of the `experiments solver` table: one Livermore kernel solved
/// by MOST (no fallback) under the deterministic quick budgets, with the
/// solver's work counters.
#[derive(Debug, Clone)]
pub struct SolverRow {
    /// Kernel number (1-24).
    pub number: u32,
    /// Kernel name.
    pub name: &'static str,
    /// Operations in the loop body.
    pub ops: usize,
    /// Achieved II, when MOST scheduled the loop within budget.
    pub ii: Option<u32>,
    /// Branch-and-bound nodes across all solves for this kernel.
    pub nodes: u64,
    /// Simplex pivots across all solves for this kernel.
    pub pivots: u64,
}

/// The `experiments solver` speed table: deterministic solver-work
/// counters over the 24 Livermore kernels. Because the quick budgets are
/// pure node/pivot counts (no wall clock), every field reproduces exactly
/// on any machine — which is what lets CI gate on them.
#[derive(Debug, Clone)]
pub struct SolverSpeed {
    /// Per-kernel rows, kernel order.
    pub rows: Vec<SolverRow>,
}

/// Committed floors for the CI solver-speed gate (see
/// [`SolverSpeed::gate`]). These are deliberately loose — roughly 2× the
/// measured values — so they only trip on a real efficiency regression,
/// not on a legitimate formulation change; update them alongside any
/// intentional solver change.
pub mod solver_gate {
    /// Every Livermore kernel must schedule without fallback under the
    /// deterministic quick budgets.
    pub const MIN_SOLVED: usize = 24;
    /// Ceiling on total branch-and-bound nodes across all 24 kernels
    /// (measured: 36,343).
    pub const MAX_TOTAL_NODES: u64 = 75_000;
    /// Ceiling on total simplex pivots across all 24 kernels
    /// (measured: 175,623).
    pub const MAX_TOTAL_PIVOTS: u64 = 350_000;
    /// Ceiling on average pivots per node — the warm-start payoff. A
    /// cold-solving branch-and-bound pays on the order of the basis
    /// dimension in pivots at every node (hundreds, for these models);
    /// the warm dual path measures 4.83 across the suite and must stay
    /// far below cold cost.
    pub const MAX_PIVOTS_PER_NODE: f64 = 10.0;
}

impl SolverSpeed {
    /// Kernels MOST scheduled within budget.
    pub fn solved(&self) -> usize {
        self.rows.iter().filter(|r| r.ii.is_some()).count()
    }

    /// Total branch-and-bound nodes.
    pub fn total_nodes(&self) -> u64 {
        self.rows.iter().map(|r| r.nodes).sum()
    }

    /// Total simplex pivots.
    pub fn total_pivots(&self) -> u64 {
        self.rows.iter().map(|r| r.pivots).sum()
    }

    /// Average simplex pivots per branch-and-bound node (the
    /// warm-start efficiency measure).
    pub fn pivots_per_node(&self) -> f64 {
        self.total_pivots() as f64 / self.total_nodes().max(1) as f64
    }

    /// Check the committed [`solver_gate`] floors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated floor.
    pub fn gate(&self) -> Result<(), String> {
        if self.solved() < solver_gate::MIN_SOLVED {
            return Err(format!(
                "only {}/{} kernels solved (floor {})",
                self.solved(),
                self.rows.len(),
                solver_gate::MIN_SOLVED
            ));
        }
        if self.total_nodes() > solver_gate::MAX_TOTAL_NODES {
            return Err(format!(
                "total nodes {} exceeds ceiling {}",
                self.total_nodes(),
                solver_gate::MAX_TOTAL_NODES
            ));
        }
        if self.total_pivots() > solver_gate::MAX_TOTAL_PIVOTS {
            return Err(format!(
                "total pivots {} exceeds ceiling {}",
                self.total_pivots(),
                solver_gate::MAX_TOTAL_PIVOTS
            ));
        }
        if self.pivots_per_node() > solver_gate::MAX_PIVOTS_PER_NODE {
            return Err(format!(
                "{:.2} pivots/node exceeds ceiling {}",
                self.pivots_per_node(),
                solver_gate::MAX_PIVOTS_PER_NODE
            ));
        }
        Ok(())
    }
}

/// The `experiments solver` table: run MOST (fallback disabled) over the
/// 24 Livermore kernels under smoke-test-sized deterministic budgets and
/// record node/pivot work per kernel. The budgets are deliberately
/// tighter than [`Effort::Quick`]'s: a gate must be cheap enough to run
/// on every CI push, and a solver-efficiency regression shows up at any
/// budget size.
///
/// Node and pivot totals are read from the [`swp_obs`] counter registry
/// ([`Counter::IlpNodes`] / [`Counter::IlpPivots`] deltas around each
/// kernel) rather than from private solver fields, so the gate exercises
/// the same telemetry path every other consumer sees. With fallback off,
/// only `solve_ilp` runs between the snapshots, so the deltas equal the
/// old per-result stats exactly.
pub fn solver_speed(machine: &Machine) -> SolverSpeed {
    let opts = MostOptions {
        fallback: false,
        node_limit: 2_000,
        pivot_limit: 20_000,
        time_limit: None,
        loop_time_limit: None,
        ..MostOptions::default()
    };
    let telemetry = Telemetry::new();
    let _ambient = telemetry.install();
    let rows = livermore()
        .into_iter()
        .map(|k| {
            let before = telemetry.counters();
            let outcome = swp_most::pipeline_most(&k.body, machine, &opts);
            let work = telemetry.counters().minus(&before);
            SolverRow {
                number: k.number,
                name: k.name,
                ops: k.body.len(),
                ii: outcome.ok().map(|r| r.ii()),
                nodes: work.get(Counter::IlpNodes),
                pivots: work.get(Counter::IlpPivots),
            }
        })
        .collect();
    SolverSpeed { rows }
}

/// One suite row of the `experiments opt` impact table: what the mid-end
/// pass pipeline does to the suite's loops (op counts, RecMII, achieved
/// II) and what that costs or saves the ILP scheduler (simplex pivots).
#[derive(Debug, Clone)]
pub struct OptRow {
    /// Suite name (`"livermore"` for the kernel pseudo-suite).
    pub suite: String,
    /// Whether this suite is part of the figure set whose pivot totals
    /// are compared against the committed `BENCH_pr5.json` baseline
    /// (Livermore is tracked in the table but not in that baseline).
    pub figure: bool,
    /// Loops in the suite.
    pub loops: usize,
    /// Total ops before the pipeline.
    pub ops_before: usize,
    /// Total ops after the pipeline.
    pub ops_after: usize,
    /// Total validated pass applications.
    pub applications: u32,
    /// Loops whose RecMII dropped (recurrence re-association).
    pub recmii_drops: usize,
    /// Summed achieved II at [`showdown::OptLevel::Off`].
    pub ii_off: u64,
    /// Summed achieved II at [`showdown::OptLevel::Full`].
    pub ii_full: u64,
    /// Loops whose achieved II improved at `Full`.
    pub ii_improved: usize,
    /// `SWP-P0xx` validation findings (reverted or suspect applications).
    pub findings: usize,
    /// Error-severity audit findings on the optimized compiles.
    pub audit_errors: usize,
    /// Summed ILP simplex pivots at `Off`.
    pub pivots_off: u64,
    /// Summed ILP simplex pivots at `Full`.
    pub pivots_full: u64,
}

impl OptRow {
    /// Ops the pipeline deleted across the suite.
    pub fn ops_removed(&self) -> usize {
        self.ops_before.saturating_sub(self.ops_after)
    }
}

/// The full `experiments opt` sweep result.
#[derive(Debug, Clone)]
pub struct OptImpact {
    /// Per-suite rows, figure suites first, then Livermore.
    pub rows: Vec<OptRow>,
}

/// Committed floors for the CI opt-impact gate (see [`OptImpact::gate`]).
/// Like [`solver_gate`], ceilings are deliberately loose (~2× measured)
/// and floors conservative (~half measured), so the gate trips on real
/// regressions, not on noise from a legitimate pass change; update them
/// alongside any intentional pipeline change.
pub mod opt_gate {
    /// `total_pivots` committed in `BENCH_pr5.json`: the figure suites
    /// under the quick deterministic ILP budgets *without* the mid-end.
    /// The optimized sweep must beat it.
    pub const BASELINE_TOTAL_PIVOTS: u64 = 3_099_181;
    /// Ceiling on figure-suite pivots with the pipeline on
    /// (measured: 3,018,128 — doduc's GVN load merge is the big win;
    /// the fusion profitability guard keeps swm256 off the regression
    /// list). Deliberately below [`BASELINE_TOTAL_PIVOTS`] with ~1%
    /// headroom for benign model drift.
    pub const MAX_FIGURE_PIVOTS_FULL: u64 = 3_050_000;
    /// Floor on total ops removed across the figure suites
    /// (measured: 4 — the II-profitability guard deliberately leaves
    /// neutral rewrites alone, so this is small by design).
    pub const MIN_FIGURE_OPS_REMOVED: usize = 2;
    /// At least this many Livermore kernels must see RecMII drop via
    /// recurrence re-association (measured: 5).
    pub const MIN_LIVERMORE_RECMII_DROPS: usize = 3;
    /// At least this many Livermore kernels must see their *achieved* II
    /// improve at `Full` (measured: 6; aggregate II 201 → 185).
    pub const MIN_LIVERMORE_II_IMPROVED: usize = 3;
}

impl OptImpact {
    /// Rows belonging to the figure set (everything but Livermore).
    fn figure_rows(&self) -> impl Iterator<Item = &OptRow> {
        self.rows.iter().filter(|r| r.figure)
    }

    /// The Livermore pseudo-suite row.
    fn livermore(&self) -> Option<&OptRow> {
        self.rows.iter().find(|r| !r.figure)
    }

    /// Figure-suite pivots at `Off` — comparable to `BENCH_pr5.json`.
    pub fn figure_pivots_off(&self) -> u64 {
        self.figure_rows().map(|r| r.pivots_off).sum()
    }

    /// Figure-suite pivots at `Full`.
    pub fn figure_pivots_full(&self) -> u64 {
        self.figure_rows().map(|r| r.pivots_full).sum()
    }

    /// Ops removed across the figure suites.
    pub fn figure_ops_removed(&self) -> usize {
        self.figure_rows().map(OptRow::ops_removed).sum()
    }

    /// `SWP-P0xx` validation findings across every suite.
    pub fn total_findings(&self) -> usize {
        self.rows.iter().map(|r| r.findings).sum()
    }

    /// Error-severity audit findings across every suite.
    pub fn total_audit_errors(&self) -> usize {
        self.rows.iter().map(|r| r.audit_errors).sum()
    }

    /// Check the committed [`opt_gate`] floors.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated floor.
    pub fn gate(&self) -> Result<(), String> {
        if self.total_findings() > 0 {
            return Err(format!(
                "{} SWP-P validation findings (floor: 0)",
                self.total_findings()
            ));
        }
        if self.total_audit_errors() > 0 {
            return Err(format!(
                "{} error-severity audit findings on optimized compiles (floor: 0)",
                self.total_audit_errors()
            ));
        }
        let full = self.figure_pivots_full();
        let off = self.figure_pivots_off();
        if full >= off {
            return Err(format!(
                "figure-suite pivots did not decrease: {full} at Full vs {off} at Off"
            ));
        }
        if full >= opt_gate::BASELINE_TOTAL_PIVOTS {
            return Err(format!(
                "figure-suite pivots {full} at Full not below the BENCH_pr5.json baseline {}",
                opt_gate::BASELINE_TOTAL_PIVOTS
            ));
        }
        if full > opt_gate::MAX_FIGURE_PIVOTS_FULL {
            return Err(format!(
                "figure-suite pivots {full} exceed ceiling {}",
                opt_gate::MAX_FIGURE_PIVOTS_FULL
            ));
        }
        if self.figure_ops_removed() < opt_gate::MIN_FIGURE_OPS_REMOVED {
            return Err(format!(
                "only {} ops removed across figure suites (floor {})",
                self.figure_ops_removed(),
                opt_gate::MIN_FIGURE_OPS_REMOVED
            ));
        }
        let lk = self
            .livermore()
            .ok_or_else(|| "no livermore row in the sweep".to_owned())?;
        if lk.recmii_drops < opt_gate::MIN_LIVERMORE_RECMII_DROPS {
            return Err(format!(
                "only {} Livermore kernels saw RecMII drop (floor {})",
                lk.recmii_drops,
                opt_gate::MIN_LIVERMORE_RECMII_DROPS
            ));
        }
        if lk.ii_improved < opt_gate::MIN_LIVERMORE_II_IMPROVED {
            return Err(format!(
                "only {} Livermore kernels improved achieved II (floor {})",
                lk.ii_improved,
                opt_gate::MIN_LIVERMORE_II_IMPROVED
            ));
        }
        Ok(())
    }
}

/// The `experiments opt` sweep: every figure suite plus the Livermore
/// kernels, each loop (a) run through the full pass pipeline directly —
/// translation-validated by differential simulation — for the table's
/// op-count/RecMII columns, and (b) compiled with the ILP scheduler at
/// [`showdown::OptLevel::Off`] and `Full` for the achieved-II and
/// simplex-pivot columns. Quick-effort budgets are deterministic, so
/// every number here reproduces exactly — which is what lets CI gate on
/// the committed [`opt_gate`] floors.
pub fn opt_with(driver: &Driver, machine: &Machine, effort: Effort) -> OptImpact {
    let mut suites = scaled_suites(effort);
    suites.push(Suite {
        name: "livermore",
        loops: livermore()
            .into_iter()
            .map(|k| WeightedLoop {
                name: format!("lk{}", k.number),
                body: k.body,
                weight: 1.0,
                trip: k.short_trip,
            })
            .collect(),
    });
    let jobs: Vec<(usize, usize)> = suites
        .iter()
        .enumerate()
        .flat_map(|(s, suite)| (0..suite.loops.len()).map(move |l| (s, l)))
        .collect();
    struct LoopImpact {
        suite: usize,
        ops_before: usize,
        ops_after: usize,
        applications: u32,
        recmii_drop: bool,
        ii_off: u32,
        ii_full: u32,
        findings: usize,
        audit_errors: usize,
        pivots_off: u64,
        pivots_full: u64,
    }
    let per_loop: Vec<LoopImpact> = driver.run_indexed(jobs.len(), |j| {
        let (s, l) = jobs[j];
        let body = &suites[s].loops[l].body;
        // (a) Direct pipeline run, sim-validated at zero tolerance.
        let validate =
            |a: &swp_ir::Loop, b: &swp_ir::Loop| swp_sim::check_loops_equivalent(a, b, 12, 0.0);
        let mut optimized = body.clone();
        let outcome = showdown::PassManager::new(OptLevel::Full)
            .with_validator(&validate)
            .run(&mut optimized, machine);
        // (b) Scheduler impact through the shared driver cache.
        let inner = driver.sequential_view();
        let choice = SchedulerChoice::IlpWith(effort.most_options());
        let off = inner
            .compile_with(body, machine, &CompileOptions::from(choice.clone()))
            .expect("every suite loop compiles at quick budgets");
        let full_opts = CompileOptions {
            choice,
            verify: VerifyLevel::Full,
            opt: OptLevel::Full,
            ..CompileOptions::default()
        };
        let full = inner
            .compile_with(body, machine, &full_opts)
            .expect("every optimized suite loop compiles at quick budgets");
        LoopImpact {
            suite: s,
            ops_before: outcome.ops_before,
            ops_after: outcome.ops_after,
            applications: outcome.total_applications(),
            recmii_drop: outcome.rec_mii_after < outcome.rec_mii_before,
            ii_off: off.stats.ii,
            ii_full: full.stats.ii,
            findings: outcome.findings.len(),
            audit_errors: full
                .audit
                .as_ref()
                .map_or(0, |r| r.count(showdown::Severity::Error)),
            pivots_off: off.stats.pivots,
            pivots_full: full.stats.pivots,
        }
    });
    let rows = suites
        .iter()
        .enumerate()
        .map(|(s, suite)| {
            let loops: Vec<&LoopImpact> = per_loop.iter().filter(|li| li.suite == s).collect();
            OptRow {
                suite: suite.name.to_owned(),
                figure: suite.name != "livermore",
                loops: loops.len(),
                ops_before: loops.iter().map(|li| li.ops_before).sum(),
                ops_after: loops.iter().map(|li| li.ops_after).sum(),
                applications: loops.iter().map(|li| li.applications).sum(),
                recmii_drops: loops.iter().filter(|li| li.recmii_drop).count(),
                ii_off: loops.iter().map(|li| u64::from(li.ii_off)).sum(),
                ii_full: loops.iter().map(|li| u64::from(li.ii_full)).sum(),
                ii_improved: loops.iter().filter(|li| li.ii_full < li.ii_off).count(),
                findings: loops.iter().map(|li| li.findings).sum(),
                audit_errors: loops.iter().map(|li| li.audit_errors).sum(),
                pivots_off: loops.iter().map(|li| li.pivots_off).sum(),
                pivots_full: loops.iter().map(|li| li.pivots_full).sum(),
            }
        })
        .collect();
    OptImpact { rows }
}

/// Ablation (§3.3 adj. 3): MOST with and without priority-order branching.
#[derive(Debug, Clone, Copy)]
pub struct OrderAblation {
    /// Loops solved (no fallback) with priority orders.
    pub solved_with: u32,
    /// Loops solved without.
    pub solved_without: u32,
    /// Total nodes with priority orders.
    pub nodes_with: u64,
    /// Total nodes without.
    pub nodes_without: u64,
}

/// Ablation: the effect of branch priority orders on MOST.
pub fn ablation_order(machine: &Machine, effort: Effort) -> OrderAblation {
    let base = MostOptions {
        fallback: false,
        ..effort.most_options()
    };
    let with = MostOptions {
        use_priority_orders: true,
        ..base.clone()
    };
    let without = MostOptions {
        use_priority_orders: false,
        ..base
    };
    let mut out = OrderAblation {
        solved_with: 0,
        solved_without: 0,
        nodes_with: 0,
        nodes_without: 0,
    };
    for k in livermore() {
        if let Ok(r) = swp_most::pipeline_most(&k.body, machine, &with) {
            out.solved_with += 1;
            out.nodes_with += r.stats.nodes;
        }
        if let Ok(r) = swp_most::pipeline_most(&k.body, machine, &without) {
            out.solved_without += 1;
            out.nodes_without += r.stats.nodes;
        }
    }
    out
}

/// Ablation (§2.3): two-phase II search vs plain binary search.
#[derive(Debug, Clone, Copy)]
pub struct IiSearchAblation {
    /// Total scheduling attempts with the two-phase search.
    pub attempts_two_phase: u32,
    /// Total scheduling attempts with plain binary search.
    pub attempts_binary: u32,
    /// Whether every loop achieved the same II under both.
    pub same_quality: bool,
}

/// Ablation: II-search strategy (§2.3 claims identical quality, better
/// compile speed for the two-phase search).
pub fn ablation_ii_search(machine: &Machine) -> IiSearchAblation {
    let two = HeurOptions::default();
    let bin = HeurOptions {
        two_phase_search: false,
        ..HeurOptions::default()
    };
    let mut a2 = 0;
    let mut ab = 0;
    let mut same = true;
    for k in livermore() {
        let r2 = swp_heur::pipeline(&k.body, machine, &two);
        let rb = swp_heur::pipeline(&k.body, machine, &bin);
        if let (Ok(r2), Ok(rb)) = (r2, rb) {
            a2 += r2.stats.attempts;
            ab += rb.stats.attempts;
            same &= r2.ii() == rb.ii();
        }
    }
    IiSearchAblation {
        attempts_two_phase: a2,
        attempts_binary: ab,
        same_quality: same,
    }
}

/// Ablation (§2.8): spilling on vs off on high-pressure loops.
#[derive(Debug, Clone, Copy)]
pub struct SpillAblation {
    /// High-pressure loops pipelined with spilling enabled.
    pub with_spilling: u32,
    /// …and with spilling disabled.
    pub without_spilling: u32,
    /// Loops attempted.
    pub total: u32,
}

/// Ablation: exponential spilling rescues register-pressure failures.
pub fn ablation_spill(machine: &Machine) -> SpillAblation {
    // A small register file makes pressure bite.
    let tiny = swp_machine::MachineBuilder::new("tiny-regs")
        .allocatable(swp_machine::RegClass::Float, 8)
        .build();
    let _ = machine;
    let on = HeurOptions::default();
    let off = HeurOptions {
        enable_spilling: false,
        ..HeurOptions::default()
    };
    let mut out = SpillAblation {
        with_spilling: 0,
        without_spilling: 0,
        total: 0,
    };
    for seed in 0..8u64 {
        let lp = swp_kernels::random_loop(
            &GenParams {
                ops: 24,
                mem_fraction: 0.25,
                recurrences: 0,
                div_fraction: 0.0,
            },
            seed,
        );
        out.total += 1;
        if swp_heur::pipeline(&lp, &tiny, &on).is_ok() {
            out.with_spilling += 1;
        }
        if swp_heur::pipeline(&lp, &tiny, &off).is_ok() {
            out.without_spilling += 1;
        }
    }
    out
}

/// What one traced run of the [`profile_workload`] produced: the
/// telemetry handle (spans, counters, histograms — render or export it),
/// how many compiles were issued, and the driver-side cache tallies.
#[derive(Debug)]
pub struct ProfileReport {
    /// The traced handle every compile in the workload reported into.
    pub telemetry: Telemetry,
    /// Compiles issued (including deliberate cache re-queries).
    pub loops: usize,
    /// Hit/miss tallies from the workload driver's schedule cache.
    pub cache: showdown::CacheStats,
}

/// The `experiments profile` workload: a deliberately varied compile mix
/// chosen so that **every** [`swp_obs::Class::Exact`] metric in the
/// registry increments at least once — which is what lets the CI profile
/// job lint for dead metrics. The pieces:
///
/// - the 24 Livermore kernels under both schedulers (heuristic at
///   [`VerifyLevel::Full`] for audit counters, ILP at quick budgets for
///   solver counters and buffer histograms), then a re-query of the
///   heuristic set for cache hits;
/// - four degradation-ladder scenarios over small kernels: a quiet
///   control, an injected rung-0 panic, an injected rung-0 corruption
///   (gate rejections and verify findings), and the gate-off escape that
///   proves [`Counter::LadderChaosEscapes`] can fire;
/// - the tiny-register-file spill loops from [`ablation_spill`], driven
///   through `swp_heur::pipeline` for spill/backtrack counters;
/// - one `max_ops: 1` MOST compile to force the heuristic fallback.
pub fn profile_workload(machine: &Machine, threads: usize) -> ProfileReport {
    showdown::hush_injected_panics();
    let telemetry = Telemetry::with_tracing();
    // Direct swp_heur/swp_most calls below report through the ambient
    // collector; driver compiles carry the handle in their options.
    let _ambient = telemetry.install();
    let driver = Driver::new(threads);
    let mut loops = 0usize;

    // Livermore under both schedulers, then a cache re-query.
    let heur = CompileOptions {
        choice: SchedulerChoice::Heuristic,
        verify: VerifyLevel::Full,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    let ilp = CompileOptions {
        choice: SchedulerChoice::IlpWith(Effort::Quick.most_options()),
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    let kernels = livermore();
    for k in &kernels {
        let _ = driver.compile_with(&k.body, machine, &heur);
        let _ = driver.compile_with(&k.body, machine, &ilp);
        loops += 2;
    }
    for k in &kernels {
        let _ = driver.compile_with(&k.body, machine, &heur);
        loops += 1;
    }

    // Ladder scenarios. `max_ops: 0` in the escape recipe demotes rung 0
    // instantly so the corrupted heuristic schedule ships past the
    // disabled gate — the one configuration where an injected fault is
    // *supposed* to escape.
    let quick_most = |max_ops: usize| MostOptions {
        node_limit: 2_000,
        pivot_limit: 20_000,
        time_limit: None,
        loop_time_limit: None,
        loop_pivot_limit: Some(60_000),
        max_ops,
        ..MostOptions::default()
    };
    // `max_ops` handicaps ILP *and* SAT together: the escape recipe
    // needs both optimal rungs out of the way so the corrupted
    // heuristic schedule is what ships past the disabled gate.
    let ladder = |chaos: ChaosOptions, gate: VerifyLevel, max_ops: usize| CompileOptions {
        choice: SchedulerChoice::LadderWith(Box::new(LadderOptions {
            most: quick_most(max_ops),
            sat: SatOptions {
                max_ops,
                ..Effort::Quick.sat_options()
            },
            gate,
            chaos,
            escalation_rounds: 2,
            ..LadderOptions::default()
        })),
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    let scenarios = [
        ladder(ChaosOptions::default(), VerifyLevel::Full, 12),
        ladder(
            ChaosOptions::default().with_fault(Rung::Ilp, ChaosFault::Panic),
            VerifyLevel::Full,
            12,
        ),
        ladder(
            ChaosOptions::default()
                .with_fault(Rung::Ilp, ChaosFault::Corrupt(Corruption::NegativeTime)),
            VerifyLevel::Full,
            12,
        ),
        ladder(
            ChaosOptions::default().with_fault(
                Rung::Heuristic,
                ChaosFault::Corrupt(Corruption::NegativeTime),
            ),
            VerifyLevel::Off,
            0,
        ),
    ];
    for options in &scenarios {
        for k in kernels.iter().take(3) {
            let _ = driver.compile_with(&k.body, machine, options);
            loops += 1;
        }
    }

    // Register-pressure loops on a tiny register file: spill rounds,
    // spilled values, and scheduling backtracks.
    let tiny = swp_machine::MachineBuilder::new("tiny-regs")
        .allocatable(swp_machine::RegClass::Float, 8)
        .build();
    for seed in 0..8u64 {
        let lp = swp_kernels::random_loop(
            &GenParams {
                ops: 24,
                mem_fraction: 0.25,
                recurrences: 0,
                div_fraction: 0.0,
            },
            seed,
        );
        let _ = swp_heur::pipeline(&lp, &tiny, &HeurOptions::default());
        loops += 1;
    }

    // A 1-op ceiling turns every MOST compile into a heuristic fallback.
    let _ = swp_most::pipeline_most(&kernels[0].body, machine, &quick_most(1));
    loops += 1;

    // The SAT backend over the Livermore kernels: II steps, decisions,
    // propagations; the resource-starved restart loop drives enough
    // conflicts (and learned clauses) through one solve to cross the
    // Luby restart threshold.
    let sat = CompileOptions {
        choice: SchedulerChoice::SatWith(Effort::Quick.sat_options()),
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    for k in &kernels {
        let _ = driver.compile_with(&k.body, machine, &sat);
        loops += 1;
    }
    let _ = driver.compile_with(&sat_restart_loop(), machine, &sat);
    loops += 1;

    // A zero work budget turns the SAT compile into its fallback.
    let _ = swp_sat::pipeline_sat(
        &kernels[0].body,
        machine,
        &SatOptions {
            conflict_limit: 0,
            propagation_limit: 0,
            ..Effort::Quick.sat_options()
        },
    );
    loops += 1;

    // Portfolio races with backend subsets, so every winner counter
    // fires: the full race (ILP outranks everyone), an `max_ops: 0`
    // handicap that disqualifies ILP (SAT wins), and a heuristic-only
    // field. Racer threads are collector-free by design; the race
    // counters land here because the calling thread keeps the handle.
    let race = |use_ilp: bool, use_sat: bool, most_max_ops: usize| CompileOptions {
        choice: SchedulerChoice::PortfolioWith(Box::new(showdown::PortfolioOptions {
            use_ilp,
            use_sat,
            use_heur: true,
            most: MostOptions {
                max_ops: most_max_ops,
                ..Effort::Quick.most_options()
            },
            sat: Effort::Quick.sat_options(),
            ..showdown::PortfolioOptions::default()
        })),
        verify: VerifyLevel::Off,
        opt: OptLevel::Off,
        telemetry: telemetry.clone(),
    };
    for options in [
        race(true, true, 64),
        race(true, true, 0),
        race(false, false, 64),
    ] {
        let _ = driver.compile_with(&kernels[0].body, machine, &options);
        loops += 1;
    }

    // The mid-end pass pipeline: purpose-built loops that make every
    // `opt.*` Exact counter fire (one loop exercising fold, simplify,
    // strength, GVN, and DCE; one pure reduction for re-association).
    let opt_full = CompileOptions {
        choice: SchedulerChoice::Heuristic,
        verify: VerifyLevel::Full,
        opt: OptLevel::Full,
        telemetry: telemetry.clone(),
    };
    for lp in opt_workload_loops() {
        let _ = driver.compile_with(&lp, machine, &opt_full);
        loops += 1;
    }

    // One round trip through the compile service so the `serve.*`
    // registry rows are exercised: handler threads install this same
    // collector, so `serve.admitted` (Exact) lands here and the
    // dead-metric lint covers the service layer too.
    {
        let socket = std::env::temp_dir().join(format!("swp-profile-{}.sock", std::process::id()));
        let mut opts = swp_serve::ServerOptions::at(socket);
        opts.telemetry = telemetry.clone();
        let server =
            swp_serve::Server::start(machine.clone(), opts).expect("profile serve roundtrip");
        let mut client = swp_serve::Client::connect(server.socket()).expect("profile serve client");
        let batch = swp_serve::RequestBatch {
            batch_id: 1,
            client: "profile".into(),
            deadline_ms: 0,
            choice: swp_serve::WireChoice::Heuristic,
            opt: OptLevel::Off,
            verify: VerifyLevel::Off,
            loops: kernels.iter().take(2).map(|k| k.body.clone()).collect(),
        };
        let resp = client
            .compile_batch(&batch)
            .expect("profile serve response");
        loops += resp.results.len();
    }

    ProfileReport {
        telemetry,
        loops,
        cache: driver.cache_stats(),
    }
}

/// A loop whose MinII is scheduling-infeasible under heavy resource
/// contention, so the SAT solver must grind through UNSAT proofs — and
/// enough conflicts in one solve to cross the Luby restart threshold
/// (64 conflicts) — before landing on the achieved II. Deterministic:
/// `random_loop` is seeded, so [`Counter::SatRestarts`] always fires.
pub fn sat_restart_loop() -> swp_ir::Loop {
    swp_kernels::random_loop(
        &GenParams {
            ops: 32,
            mem_fraction: 0.45,
            recurrences: 2,
            div_fraction: 0.15,
        },
        8,
    )
}

/// Loops that jointly exercise every mid-end pass: constant folding
/// (`2·3`), algebraic simplification (`v·1` and an unfused multiply-add),
/// strength reduction (`÷4`), GVN (a duplicated add), DCE (an unused
/// chain), and recurrence re-association (a pure multiply-add reduction).
fn opt_workload_loops() -> Vec<swp_ir::Loop> {
    let mut mix = swp_ir::LoopBuilder::new("opt-mix");
    let k2 = mix.const_f("k2", 2.0);
    let k3 = mix.const_f("k3", 3.0);
    let one = mix.const_f("one", 1.0);
    let four = mix.const_f("four", 4.0);
    let x = mix.array("x", 8);
    let v = mix.load(x, 0, 8);
    let c = mix.fmul(k2, k3); // fold
    let m1 = mix.fmul(v, one); // simplify: ·1
    let q = mix.fdiv(m1, four); // strength: ÷2^k
    let d1 = mix.fadd(v, v); // gvn: congruent with d2
    let d2 = mix.fadd(v, v);
    let dead = mix.fmul(d2, d2); // dce: transitively dead chain
    let _dead2 = mix.fadd(dead, dead);
    let r = mix.fmul(c, q); // simplify: fuses into the fadd below
    let r2 = mix.fadd(r, d1);
    mix.store(x, 0, 8, r2);

    let mut red = swp_ir::LoopBuilder::new("opt-reduction");
    let z = red.array("z", 8);
    let w = red.array("w", 8);
    let s = red.carried_f("s");
    let zv = red.load(z, 0, 8);
    let wv = red.load(w, 0, 8);
    let acc = red.fmadd(zv, wv, s.value());
    red.close(s, acc, 1);

    vec![mix.finish(), red.finish()]
}

/// Build the machine-readable bench snapshot behind `experiments bench
/// --json` (committed as `BENCH_pr5.json`, uploaded as a CI artifact).
///
/// Every SPEC-like suite is compiled under both schedulers twice — a
/// cold pass and a warm pass through the same driver cache — recording
/// per-suite wall time for each pass and summed in-compiler nanoseconds
/// ([`showdown::CompileStats`]) per scheduler. Counter totals come from
/// the [`swp_obs`] registry, so the reported pivot/node work is the same
/// number every other telemetry consumer sees.
pub fn perf_snapshot(machine: &Machine, threads: usize, pr: u64) -> String {
    let telemetry = Telemetry::new();
    let driver = Driver::new(threads);
    let schedulers: [(&'static str, SchedulerChoice); 2] = [
        ("heuristic", SchedulerChoice::Heuristic),
        (
            "ilp",
            SchedulerChoice::IlpWith(Effort::Quick.most_options()),
        ),
    ];
    struct SuiteRow {
        name: String,
        scheduler: &'static str,
        loops: usize,
        wall_us: u64,
        warm_wall_us: u64,
        compile_ns: u64,
    }
    let suites = scaled_suites(Effort::Quick);
    let mut rows: Vec<SuiteRow> = Vec::new();
    let mut sched_ns = [0u64; 2];
    let mut sched_loops = [0usize; 2];
    for suite in &suites {
        for (s, (name, choice)) in schedulers.iter().enumerate() {
            let options = CompileOptions {
                choice: choice.clone(),
                verify: VerifyLevel::Off,
                opt: OptLevel::Off,
                telemetry: telemetry.clone(),
            };
            let pass = || {
                let start = Instant::now();
                let ns: Vec<u64> = driver.run_indexed(suite.loops.len(), |i| {
                    let c = driver
                        .compile_with(&suite.loops[i].body, machine, &options)
                        .expect("every suite loop compiles at quick budgets");
                    c.stats
                        .sched_ns
                        .saturating_add(c.stats.alloc_ns)
                        .saturating_add(c.stats.expand_ns)
                });
                let wall = start.elapsed();
                (wall.as_micros() as u64, ns.iter().sum::<u64>())
            };
            let (cold_us, cold_ns) = pass();
            let (warm_us, _) = pass();
            sched_ns[s] = sched_ns[s].saturating_add(cold_ns);
            sched_loops[s] += suite.loops.len();
            rows.push(SuiteRow {
                name: suite.name.to_owned(),
                scheduler: name,
                loops: suite.loops.len(),
                wall_us: cold_us,
                warm_wall_us: warm_us,
                compile_ns: cold_ns,
            });
        }
    }
    let cache = driver.cache_stats();
    let counters = telemetry.counters();

    let mut w = swp_obs::JsonWriter::new();
    w.begin_object();
    w.key("schema").string("swp-bench-snapshot/1");
    w.key("pr").uint(pr);
    w.key("threads").uint(threads as u64);
    w.key("effort").string("quick");
    w.key("suites").begin_array();
    for r in &rows {
        w.begin_object();
        w.key("name").string(&r.name);
        w.key("scheduler").string(r.scheduler);
        w.key("loops").uint(r.loops as u64);
        w.key("wall_us").uint(r.wall_us);
        w.key("warm_wall_us").uint(r.warm_wall_us);
        w.key("compile_ns").uint(r.compile_ns);
        w.end_object();
    }
    w.end_array();
    w.key("schedulers").begin_array();
    for (s, (name, _)) in schedulers.iter().enumerate() {
        w.begin_object();
        w.key("name").string(name);
        w.key("loops").uint(sched_loops[s] as u64);
        w.key("compile_ns").uint(sched_ns[s]);
        w.end_object();
    }
    w.end_array();
    w.key("cache").begin_object();
    w.key("hits").uint(cache.hits);
    w.key("misses").uint(cache.misses);
    let total = cache.hits + cache.misses;
    w.key("hit_rate")
        .float(cache.hits as f64 / total.max(1) as f64);
    w.end_object();
    w.key("total_pivots").uint(counters.get(Counter::IlpPivots));
    w.key("total_nodes").uint(counters.get(Counter::IlpNodes));
    w.key("counters").begin_object();
    for (c, v) in counters.iter() {
        w.key(c.name()).uint(v);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn fig2_shape_pipelining_wins_big() {
        let m = Machine::r8000();
        let rows = fig2(&m, Effort::Quick);
        assert_eq!(rows.len(), 14);
        let g = fig2_geomean(&rows);
        // Paper: >35% overall improvement. Shape check: well above 1.3.
        assert!(g > 1.35, "geomean speedup {g}");
        for r in &rows {
            assert!(
                r.speedup() >= 1.0,
                "{}: pipelining never loses ({})",
                r.name,
                r.speedup()
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn fig4_shape_alvinn_benefits_most() {
        let m = Machine::r8000();
        let rows = fig4(&m, Effort::Quick);
        let alvinn = rows.iter().find(|r| r.name == "alvinn").expect("present");
        assert!(
            alvinn.improvement > 1.05,
            "alvinn should gain from bank pairing: {}",
            alvinn.improvement
        );
        for r in &rows {
            assert!(
                r.improvement > 0.85,
                "{} not catastrophically hurt: {}",
                r.name,
                r.improvement
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn solver_gate_holds_and_reproduces_exactly() {
        let m = Machine::r8000();
        let a = solver_speed(&m);
        a.gate().unwrap_or_else(|e| panic!("solver gate: {e}"));
        // Deterministic budgets: a second run must produce bit-identical
        // work counters, not merely pass the gate.
        let b = solver_speed(&m);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                (x.ii, x.nodes, x.pivots),
                (y.ii, y.nodes, y.pivots),
                "{}",
                x.name
            );
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn chaos_sweep_contains_every_scenario() {
        showdown::hush_injected_panics();
        let m = Machine::r8000();
        let driver = Driver::new(4);
        let rows = chaos_with(&driver, &m, Effort::Quick);
        assert_eq!(rows.len(), 14 * chaos_scenarios().len());
        for r in &rows {
            assert_eq!(r.escapes(), 0, "{}/{}", r.suite.name, r.scenario);
            assert_eq!(r.violations(), 0, "{}/{}", r.suite.name, r.scenario);
            if r.expect_quarantine {
                assert_eq!(r.suite.quarantined(), r.suite.loops.len());
            } else {
                assert!(r.suite.all_clean(), "{}/{}", r.suite.name, r.scenario);
            }
        }
        // Fault-free control: everything lands on a real pipeliner rung,
        // and the sequential anchor is never needed.
        let usage = chaos_rung_usage(&rows);
        let total: usize = usage.iter().sum();
        assert_eq!(
            total,
            rows.iter()
                .filter(|r| r.scenario == "control")
                .map(|r| r.suite.loops.len())
                .sum()
        );
        assert_eq!(usage[4], 0, "no quiet loop should need the sequential rung");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn ablation_ii_search_same_quality() {
        let m = Machine::r8000();
        let a = ablation_ii_search(&m);
        assert!(
            a.same_quality,
            "II quality must not depend on the search strategy"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn ablation_spill_rescues() {
        let m = Machine::r8000();
        let a = ablation_spill(&m);
        assert!(a.with_spilling >= a.without_spilling);
    }
}
