//! Experiment implementations for every figure and table of the paper.
//!
//! Each `fig*`/`tab*` function returns structured data; the `experiments`
//! binary renders them as the paper's rows, and the Criterion benches wrap
//! the hot paths. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes.

use showdown::{
    compare, compile_loop, geometric_mean, run_suite, run_suite_baseline, SchedulerChoice,
};
use std::time::{Duration, Instant};
use swp_heur::{HeurOptions, PriorityHeuristic};
use swp_kernels::{livermore, spec_suites, GenParams};
use swp_machine::Machine;
use swp_most::MostOptions;

/// Experiment sizing: `quick` shrinks ILP budgets and trip counts so the
/// whole harness runs in CI time; `full` uses paper-scale settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small budgets (tests, Criterion).
    Quick,
    /// Paper-scale budgets (the experiments binary).
    Full,
}

impl Effort {
    /// MOST options for this effort level.
    pub fn most_options(self) -> MostOptions {
        match self {
            Effort::Quick => MostOptions {
                node_limit: 20_000,
                time_limit: Some(Duration::from_millis(500)),
                loop_time_limit: Some(Duration::from_secs(4)),
                max_ops: 64,
                ..MostOptions::default()
            },
            Effort::Full => MostOptions {
                node_limit: 2_000_000,
                time_limit: Some(Duration::from_secs(10)),
                loop_time_limit: Some(Duration::from_secs(120)),
                ..MostOptions::default()
            },
        }
    }

    fn trip_scale(self) -> u64 {
        match self {
            Effort::Quick => 4,
            Effort::Full => 1,
        }
    }
}

/// One row of Figure 2: SPECmark-style ratio of baseline to pipelined
/// time (pipelining speedup; > 1 means pipelining wins).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// Simulated time with pipelining disabled.
    pub baseline_time: f64,
    /// Simulated time with the heuristic pipeliner.
    pub pipelined_time: f64,
}

impl Fig2Row {
    /// Speedup from enabling software pipelining.
    pub fn speedup(&self) -> f64 {
        self.baseline_time / self.pipelined_time.max(1e-12)
    }
}

/// Figure 2: SPEC-like suites with pipelining enabled vs disabled.
pub fn fig2(machine: &Machine, effort: Effort) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for mut suite in spec_suites() {
        for l in &mut suite.loops {
            l.trip = (l.trip / effort.trip_scale()).max(8);
        }
        let base = run_suite_baseline(&suite, machine);
        let pipe = run_suite(&suite, machine, &SchedulerChoice::Heuristic)
            .expect("every suite loop pipelines");
        rows.push(Fig2Row {
            name: suite.name.to_owned(),
            baseline_time: base.time,
            pipelined_time: pipe.time,
        });
    }
    rows
}

/// Geometric-mean speedup over Figure 2 rows.
pub fn fig2_geomean(rows: &[Fig2Row]) -> f64 {
    geometric_mean(&rows.iter().map(Fig2Row::speedup).collect::<Vec<_>>())
}

/// One row of Figure 3: per-suite time ratio of each single heuristic
/// against all four (1.0 = as good as the full set; < 1 = slower).
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Benchmark name.
    pub name: String,
    /// Ratio (all-four time / single-heuristic time) per heuristic, in
    /// [`PriorityHeuristic::ALL`] order.
    pub ratios: [f64; 4],
}

/// Figure 3: the effect of restricting to one scheduling heuristic.
/// Loops the restricted pipeliner cannot handle fall back to the
/// list-scheduled baseline, exactly as the production compiler would.
pub fn fig3(machine: &Machine, effort: Effort) -> Vec<Fig3Row> {
    use swp_sim::{simulate, simulate_baseline};
    let mut rows = Vec::new();
    for mut suite in spec_suites() {
        for l in &mut suite.loops {
            l.trip = (l.trip / effort.trip_scale()).max(8);
        }
        let suite_time = |choice: &SchedulerChoice| -> f64 {
            let cycles: Vec<f64> = suite
                .loops
                .iter()
                .map(|wl| match compile_loop(&wl.body, machine, choice) {
                    Ok(c) => simulate(&c.code, wl.trip, machine).cycles as f64,
                    Err(_) => {
                        let base = showdown::compile_baseline(&wl.body, machine);
                        simulate_baseline(&base, wl.trip, machine).cycles as f64
                    }
                })
                .collect();
            suite.aggregate_time(&cycles)
        };
        let all = suite_time(&SchedulerChoice::Heuristic);
        let mut ratios = [0.0f64; 4];
        for (i, h) in PriorityHeuristic::ALL.iter().enumerate() {
            let opts = HeurOptions { heuristics: vec![*h], ..HeurOptions::default() };
            ratios[i] = all / suite_time(&SchedulerChoice::HeuristicWith(opts));
        }
        rows.push(Fig3Row { name: suite.name.to_owned(), ratios });
    }
    rows
}

/// One row of Figure 4: performance improvement from the memory-bank
/// pairing heuristics (> 1 = banks heuristic helps).
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: String,
    /// Time with the heuristic disabled / time with it enabled.
    pub improvement: f64,
}

/// Figure 4: memory-bank heuristic on vs off.
pub fn fig4(machine: &Machine, effort: Effort) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for mut suite in spec_suites() {
        for l in &mut suite.loops {
            l.trip = (l.trip / effort.trip_scale()).max(8);
        }
        let on = run_suite(&suite, machine, &SchedulerChoice::Heuristic)
            .expect("pipelines")
            .time;
        let off_opts = HeurOptions {
            bank_pairing: false,
            explore_stalls: false,
            ..HeurOptions::default()
        };
        let off = run_suite(&suite, machine, &SchedulerChoice::HeuristicWith(off_opts))
            .expect("pipelines")
            .time;
        rows.push(Fig4Row { name: suite.name.to_owned(), improvement: off / on });
    }
    rows
}

/// One row of Figure 5: ILP-scheduled code relative to MIPSpro, with the
/// SGI bank pairing enabled (solid bars) and disabled (striped bars).
/// Values > 1 mean the ILP code is faster.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: String,
    /// heuristic-time / ILP-time, SGI bank pairing on.
    pub vs_pairing: f64,
    /// heuristic-time / ILP-time, SGI bank pairing off.
    pub vs_no_pairing: f64,
    /// Fraction of suite loops where MOST fell back to the heuristic.
    pub fallback_fraction: f64,
}

/// Figure 5: the showdown — ILP vs heuristic on the SPEC-like suites.
pub fn fig5(machine: &Machine, effort: Effort) -> Vec<Fig5Row> {
    let most = SchedulerChoice::IlpWith(effort.most_options());
    let mut rows = Vec::new();
    for mut suite in spec_suites() {
        for l in &mut suite.loops {
            l.trip = (l.trip / effort.trip_scale()).max(8);
        }
        let ilp = run_suite(&suite, machine, &most).expect("most with fallback");
        let heur_on = run_suite(&suite, machine, &SchedulerChoice::Heuristic)
            .expect("pipelines")
            .time;
        let off_opts = HeurOptions {
            bank_pairing: false,
            explore_stalls: false,
            ..HeurOptions::default()
        };
        let heur_off = run_suite(&suite, machine, &SchedulerChoice::HeuristicWith(off_opts))
            .expect("pipelines")
            .time;
        // Count fallbacks by recompiling each loop individually.
        let mut fallbacks = 0usize;
        for wl in &suite.loops {
            if let Ok(c) = compile_loop(&wl.body, machine, &most) {
                fallbacks += usize::from(c.stats.fell_back);
            }
        }
        rows.push(Fig5Row {
            name: suite.name.to_owned(),
            vs_pairing: heur_on / ilp.time,
            vs_no_pairing: heur_off / ilp.time,
            fallback_fraction: fallbacks as f64 / suite.loops.len() as f64,
        });
    }
    rows
}

/// One row of Figure 6 / Figure 7: a Livermore kernel compared across
/// schedulers.
#[derive(Debug, Clone)]
pub struct LivermoreRow {
    /// Kernel number (1-24).
    pub number: u32,
    /// Kernel name.
    pub name: &'static str,
    /// heuristic/ILP cycle ratio at the short trip count (Fig. 6).
    pub relative_short: f64,
    /// heuristic/ILP cycle ratio at the long trip count (Fig. 6).
    pub relative_long: f64,
    /// MIPSpro − ILP total registers (Fig. 7).
    pub reg_delta: i64,
    /// MIPSpro − ILP overhead cycles (Fig. 7).
    pub overhead_delta: i64,
    /// Whether both schedulers reached the same II.
    pub same_ii: bool,
    /// Whether MOST fell back.
    pub ilp_fell_back: bool,
}

/// Figures 6 and 7: per-Livermore-kernel comparison.
pub fn fig6_fig7(machine: &Machine, effort: Effort) -> Vec<LivermoreRow> {
    let most = SchedulerChoice::IlpWith(effort.most_options());
    let mut rows = Vec::new();
    for k in livermore() {
        let c = compare(
            &k.body,
            machine,
            &SchedulerChoice::Heuristic,
            &most,
            k.short_trip,
            k.long_trip / effort.trip_scale().min(2),
        )
        .expect("both schedulers handle Livermore");
        rows.push(LivermoreRow {
            number: k.number,
            name: k.name,
            relative_short: c.relative_short(),
            relative_long: c.relative_long(),
            reg_delta: c.reg_delta(),
            overhead_delta: c.overhead_delta(),
            same_ii: c.heuristic.ii == c.ilp.ii,
            ilp_fell_back: c.ilp.fell_back,
        });
    }
    rows
}

/// §4.7's compile-speed comparison over a set of loops.
#[derive(Debug, Clone, Copy)]
pub struct CompileSpeed {
    /// Wall-clock in the heuristic scheduler.
    pub heuristic: Duration,
    /// Wall-clock in the ILP scheduler (no fallback, so failures burn
    /// their full budget as in the paper's 3-minute limit).
    pub ilp: Duration,
    /// Loops measured.
    pub loops: usize,
}

impl CompileSpeed {
    /// The paper's ratio (67,634 s / 261 s ≈ 260×).
    pub fn ratio(&self) -> f64 {
        self.ilp.as_secs_f64() / self.heuristic.as_secs_f64().max(1e-9)
    }
}

/// Table (§4.7): total scheduling time, heuristic vs ILP.
pub fn compile_speed(machine: &Machine, effort: Effort) -> CompileSpeed {
    let loops: Vec<_> = spec_suites()
        .into_iter()
        .flat_map(|s| s.loops.into_iter().map(|l| l.body))
        .collect();
    let h0 = Instant::now();
    for lp in &loops {
        let _ = swp_heur::pipeline(lp, machine, &HeurOptions::default());
    }
    let heuristic = h0.elapsed();
    let most_opts = MostOptions { fallback: false, ..effort.most_options() };
    let i0 = Instant::now();
    for lp in &loops {
        let _ = swp_most::pipeline_most(lp, machine, &most_opts);
    }
    let ilp = i0.elapsed();
    CompileSpeed { heuristic, ilp, loops: loops.len() }
}

/// §5.0's loop-size scalability: largest random loop each scheduler
/// handles within a fixed per-loop budget.
#[derive(Debug, Clone, Copy)]
pub struct LoopSize {
    /// Largest op count the heuristic scheduled.
    pub heuristic_max: usize,
    /// Largest op count MOST (no fallback) scheduled.
    pub most_max: usize,
}

/// Sweep loop sizes; per-loop budget fixed (the paper's 3-minute analogue).
pub fn loop_size(machine: &Machine, effort: Effort) -> LoopSize {
    let sizes: &[usize] = match effort {
        Effort::Quick => &[10, 20, 30, 45, 60, 80, 100, 116],
        Effort::Full => &[10, 20, 30, 45, 61, 80, 100, 116, 130],
    };
    let most_opts = MostOptions { fallback: false, ..effort.most_options() };
    let mut heuristic_max = 0;
    let mut most_max = 0;
    for &ops in sizes {
        let lp = swp_kernels::random_loop(&GenParams { ops, ..GenParams::default() }, 42);
        if swp_heur::pipeline(&lp, machine, &HeurOptions::default()).is_ok() {
            heuristic_max = heuristic_max.max(lp.len());
        }
        if swp_most::pipeline_most(&lp, machine, &most_opts).is_ok() {
            most_max = most_max.max(lp.len());
        }
    }
    LoopSize { heuristic_max, most_max }
}

/// §5.0's II comparison: on how many loops does each scheduler achieve a
/// strictly lower II?
#[derive(Debug, Clone, Copy, Default)]
pub struct IiCompare {
    /// Loops where the ILP II is strictly lower.
    pub ilp_wins: u32,
    /// Loops where the heuristic II is strictly lower (MOST timed out to a
    /// worse II or fell back at a higher one).
    pub heur_wins: u32,
    /// Equal IIs.
    pub ties: u32,
    /// ILP wins remaining after raising the heuristic backtrack budget
    /// (§5.0: "a very modest increase in the backtracking limits …
    /// equalized the situation").
    pub ilp_wins_after_budget_increase: u32,
}

/// Table (§5.0): II comparison over Livermore + suite loops.
pub fn ii_compare(machine: &Machine, effort: Effort) -> IiCompare {
    let most_opts = MostOptions { fallback: false, ..effort.most_options() };
    let mut out = IiCompare::default();
    let mut loops: Vec<swp_ir::Loop> = livermore().into_iter().map(|k| k.body).collect();
    loops.extend(spec_suites().into_iter().flat_map(|s| s.loops.into_iter().map(|l| l.body)));
    for lp in &loops {
        let Ok(h) = swp_heur::pipeline(lp, machine, &HeurOptions::default()) else { continue };
        let Ok(i) = swp_most::pipeline_most(lp, machine, &most_opts) else { continue };
        match i.ii().cmp(&h.ii()) {
            std::cmp::Ordering::Less => {
                out.ilp_wins += 1;
                // Retry with 16× backtrack budget.
                let big = HeurOptions { backtrack_budget: 6400, ..HeurOptions::default() };
                if let Ok(h2) = swp_heur::pipeline(lp, machine, &big) {
                    if h2.ii() > i.ii() {
                        out.ilp_wins_after_budget_increase += 1;
                    }
                } else {
                    out.ilp_wins_after_budget_increase += 1;
                }
            }
            std::cmp::Ordering::Greater => out.heur_wins += 1,
            std::cmp::Ordering::Equal => out.ties += 1,
        }
    }
    out
}

/// Ablation (§3.3 adj. 3): MOST with and without priority-order branching.
#[derive(Debug, Clone, Copy)]
pub struct OrderAblation {
    /// Loops solved (no fallback) with priority orders.
    pub solved_with: u32,
    /// Loops solved without.
    pub solved_without: u32,
    /// Total nodes with priority orders.
    pub nodes_with: u64,
    /// Total nodes without.
    pub nodes_without: u64,
}

/// Ablation: the effect of branch priority orders on MOST.
pub fn ablation_order(machine: &Machine, effort: Effort) -> OrderAblation {
    let base = MostOptions { fallback: false, ..effort.most_options() };
    let with = MostOptions { use_priority_orders: true, ..base.clone() };
    let without = MostOptions { use_priority_orders: false, ..base };
    let mut out = OrderAblation { solved_with: 0, solved_without: 0, nodes_with: 0, nodes_without: 0 };
    for k in livermore() {
        if let Ok(r) = swp_most::pipeline_most(&k.body, machine, &with) {
            out.solved_with += 1;
            out.nodes_with += r.stats.nodes;
        }
        if let Ok(r) = swp_most::pipeline_most(&k.body, machine, &without) {
            out.solved_without += 1;
            out.nodes_without += r.stats.nodes;
        }
    }
    out
}

/// Ablation (§2.3): two-phase II search vs plain binary search.
#[derive(Debug, Clone, Copy)]
pub struct IiSearchAblation {
    /// Total scheduling attempts with the two-phase search.
    pub attempts_two_phase: u32,
    /// Total scheduling attempts with plain binary search.
    pub attempts_binary: u32,
    /// Whether every loop achieved the same II under both.
    pub same_quality: bool,
}

/// Ablation: II-search strategy (§2.3 claims identical quality, better
/// compile speed for the two-phase search).
pub fn ablation_ii_search(machine: &Machine) -> IiSearchAblation {
    let two = HeurOptions::default();
    let bin = HeurOptions { two_phase_search: false, ..HeurOptions::default() };
    let mut a2 = 0;
    let mut ab = 0;
    let mut same = true;
    for k in livermore() {
        let r2 = swp_heur::pipeline(&k.body, machine, &two);
        let rb = swp_heur::pipeline(&k.body, machine, &bin);
        if let (Ok(r2), Ok(rb)) = (r2, rb) {
            a2 += r2.stats.attempts;
            ab += rb.stats.attempts;
            same &= r2.ii() == rb.ii();
        }
    }
    IiSearchAblation { attempts_two_phase: a2, attempts_binary: ab, same_quality: same }
}

/// Ablation (§2.8): spilling on vs off on high-pressure loops.
#[derive(Debug, Clone, Copy)]
pub struct SpillAblation {
    /// High-pressure loops pipelined with spilling enabled.
    pub with_spilling: u32,
    /// …and with spilling disabled.
    pub without_spilling: u32,
    /// Loops attempted.
    pub total: u32,
}

/// Ablation: exponential spilling rescues register-pressure failures.
pub fn ablation_spill(machine: &Machine) -> SpillAblation {
    // A small register file makes pressure bite.
    let tiny = swp_machine::MachineBuilder::new("tiny-regs")
        .allocatable(swp_machine::RegClass::Float, 8)
        .build();
    let _ = machine;
    let on = HeurOptions::default();
    let off = HeurOptions { enable_spilling: false, ..HeurOptions::default() };
    let mut out = SpillAblation { with_spilling: 0, without_spilling: 0, total: 0 };
    for seed in 0..8u64 {
        let lp = swp_kernels::random_loop(
            &GenParams { ops: 24, mem_fraction: 0.25, recurrences: 0, div_fraction: 0.0 },
            seed,
        );
        out.total += 1;
        if swp_heur::pipeline(&lp, &tiny, &on).is_ok() {
            out.with_spilling += 1;
        }
        if swp_heur::pipeline(&lp, &tiny, &off).is_ok() {
            out.without_spilling += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn fig2_shape_pipelining_wins_big() {
        let m = Machine::r8000();
        let rows = fig2(&m, Effort::Quick);
        assert_eq!(rows.len(), 14);
        let g = fig2_geomean(&rows);
        // Paper: >35% overall improvement. Shape check: well above 1.3.
        assert!(g > 1.35, "geomean speedup {g}");
        for r in &rows {
            assert!(r.speedup() >= 1.0, "{}: pipelining never loses ({})", r.name, r.speedup());
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn fig4_shape_alvinn_benefits_most() {
        let m = Machine::r8000();
        let rows = fig4(&m, Effort::Quick);
        let alvinn = rows.iter().find(|r| r.name == "alvinn").expect("present");
        assert!(
            alvinn.improvement > 1.05,
            "alvinn should gain from bank pairing: {}",
            alvinn.improvement
        );
        for r in &rows {
            assert!(r.improvement > 0.85, "{} not catastrophically hurt: {}", r.name, r.improvement);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn ablation_ii_search_same_quality() {
        let m = Machine::r8000();
        let a = ablation_ii_search(&m);
        assert!(a.same_quality, "II quality must not depend on the search strategy");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "integration-scale; run with --release")]
    fn ablation_spill_rescues() {
        let m = Machine::r8000();
        let a = ablation_spill(&m);
        assert!(a.with_spilling >= a.without_spilling);
    }
}
